//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace's sources annotate plain data types with
//! `#[derive(Serialize, Deserialize)]`. Nothing in the tree actually
//! serializes through serde (trace persistence uses a self-contained
//! binary format in `sca-power`), so the vendored `serde` defines the two
//! traits as markers and this macro emits the corresponding empty impls.
//! It parses just enough of the item — outer attributes, visibility,
//! `struct`/`enum`/`union`, name, and an optional generic parameter list —
//! to name the type being derived for.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generic_params)` from a type definition token stream.
///
/// Returns the type name and the raw tokens of the generic parameter list
/// (without the angle brackets), e.g. `("Foo", "T: Clone, const N: usize")`.
fn parse_item(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and doc comments, visibility, and
    // any other modifiers until the item keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id)
                if id.to_string() == "struct"
                    || id.to_string() == "enum"
                    || id.to_string() == "union" =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => {
                        name = Some(n.to_string());
                        break;
                    }
                    other => panic!("expected type name after item keyword, got {other:?}"),
                }
            }
            _ => continue,
        }
    }
    let name = name.expect("derive input must be a struct, enum, or union");

    // Collect generic parameters if a `<...>` list follows the name.
    let mut generics = String::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !generics.is_empty() {
                generics.push(' ');
            }
            generics.push_str(&tt.to_string());
        }
    }
    (name, generics)
}

/// Strips bounds and defaults from a generic parameter list, leaving the
/// bare parameter names for the `Type<...>` position of an impl.
fn generic_args(params: &str) -> String {
    params
        .split(',')
        .map(|p| {
            let p = p.trim();
            let p = p.split(':').next().unwrap_or(p).trim();
            let p = p.split('=').next().unwrap_or(p).trim();
            p.trim_start_matches("const").trim()
        })
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join(", ")
}

fn emit(input: TokenStream, trait_path: &str, extra_lifetime: &str) -> TokenStream {
    let (name, params) = parse_item(input);
    let code = if params.is_empty() {
        format!("impl{extra_lifetime} {trait_path} for {name} {{}}")
    } else {
        let args = generic_args(&params);
        let lifetime = extra_lifetime.trim_start_matches('<').trim_end_matches('>');
        format!(
            "impl<{lifetime}{sep}{params}> {trait_path} for {name}<{args}> {{}}",
            sep = if lifetime.is_empty() { "" } else { ", " }
        )
    };
    code.parse().expect("generated impl parses")
}

/// Derives the vendored marker `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Serialize", "")
}

/// Derives the vendored marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Deserialize<'de>", "<'de>")
}
