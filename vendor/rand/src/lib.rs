//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *subset* of the rand 0.8 API its
//! sources actually use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool` and
//! `fill`. The generator is xoshiro256++ seeded through splitmix64 —
//! deterministic, fast, and of far higher quality than the experiments
//! here need. It is **not** the upstream implementation and makes no
//! cryptographic claims; it exists so `cargo build` works hermetically.
//!
//! The streams differ from upstream `StdRng` (which is ChaCha12), so any
//! constants derived from specific seeds are local to this workspace.

#![warn(missing_docs)]

/// A source of random 32/64-bit words. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from a uniform bit stream.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Slice and array types fillable in bulk by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with uniform random values.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

macro_rules! fill_slice {
    ($($t:ty),*) => {$(
        impl Fill for [$t] {
            fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = Standard::sample(rng);
                }
            }
        }
        impl<const N: usize> Fill for [$t; N] {
            fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                self.as_mut_slice().fill_from(rng);
            }
        }
    )*};
}
fill_slice!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] — mirrors the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Fills `dest` (a supported slice or array) with random values.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream rand's ChaCha12-based `StdRng` this is not a CSPRNG;
    /// it is a statistical-quality generator for simulations.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, the recommended xoshiro seeding.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_touches_every_element() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bytes = [0u8; 64];
        rng.fill(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
        let mut floats = [0.0f32; 16];
        rng.fill(&mut floats[..]);
        assert!(floats.iter().any(|&f| f != 0.0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
