//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with a simple wall-clock
//! measurement loop (warm-up, then `sample_size` timed samples, reporting
//! median/min/max per iteration). No statistics engine, no plots; it
//! exists so `cargo bench` runs hermetically without a crates registry.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Drives the timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapse to estimate a per-iteration cost,
        // then pick an iteration count that makes each sample measurable.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let target = Duration::from_millis(10);
        self.iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints a per-iteration summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<48} (no samples)");
            return self;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<48} median {median:>12?}   min {min:>12?}   max {max:>12?}   ({} iters/sample)",
            bencher.iters_per_sample
        );
        self
    }

    /// Upstream-compat no-op: final reporting happens per bench here.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group, in either upstream form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
