//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! This workspace derives `Serialize`/`Deserialize` on its plain data
//! types as a forward-compatibility affordance, but nothing in the tree
//! serializes through serde yet — trace persistence uses the
//! self-contained binary format in `sca-power::io`. Since the build
//! environment has no crates registry, the traits are vendored as
//! *markers*: deriving them compiles and records intent, and swapping in
//! real serde later is a one-line `Cargo.toml` change per crate.

#![warn(missing_docs)]

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
