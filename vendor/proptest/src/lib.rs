//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates registry, so this vendors the
//! subset of the proptest API the workspace's tests use: [`Strategy`] with
//! `prop_map`, numeric-range and tuple strategies, [`Just`], [`any`],
//! [`sample::select`], [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Each property runs a
//! fixed number of randomly sampled cases (default 256, override with
//! `PROPTEST_CASES`) seeded deterministically from the test name. There
//! is **no shrinking**: a failing case reports the assertion message and
//! the case index, not a minimized input.

#![warn(missing_docs)]

use std::marker::PhantomData;

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns a strategy producing `map(value)` for each sampled value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: Copy> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy sampling `T` uniformly from its full value range.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        <T as rand::Standard>::sample(rng)
    }
}

/// The strategy behind [`prop_oneof!`]: samples one of its arms, each
/// weighted (uniform arms all carry weight 1).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a uniform union over the given type-erased arms.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Builds a union whose arms are drawn proportionally to their weights.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut ticket = rng.gen_range(0..self.total_weight);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if ticket < weight {
                return option.sample(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket within total weight")
    }
}

/// Strategies over explicit value collections.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy yielding a uniformly chosen element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs a non-empty collection");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Strategies over containers.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A strategy yielding `Vec`s of `element` samples with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec() needs a non-empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// A failed property case: the assertion message that rejected it.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Compatibility alias for upstream's `test_runner` module.
pub mod test_runner {
    pub use super::TestCaseError;
}

/// Per-run configuration, settable with `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many sampled cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Resolves the case count for a run (`PROPTEST_CASES` overrides).
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Deterministic per-test RNG, seeded from the test's name (FNV-1a).
pub fn fresh_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// The most commonly used items, importable in one line.
pub mod prelude {
    /// Upstream-style alias so `prop::sample::select` paths resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, sample,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Chooses uniformly between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![$(($weight, $crate::Strategy::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Declares `#[test]` functions whose arguments are sampled from
/// strategies, mirroring upstream `proptest!` syntax. An optional leading
/// `#![proptest_config(expr)]` sets the per-property case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let full_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::fresh_rng(full_name);
            let strategies = ($($strategy,)+);
            let cases = $crate::effective_cases(&$config);
            for case in 0..cases {
                let ($($pat,)+) = $crate::Strategy::sample(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("{full_name}: case {case} failed\n{err}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Animal {
        Cat,
        Dog,
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in -4i32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![
            (0u32..10).prop_map(|n| n * 2),
            Just(1u32),
        ]) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn select_picks_members(a in prop::sample::select(vec![Animal::Cat, Animal::Dog])) {
            prop_assert!(a == Animal::Cat || a == Animal::Dog);
        }

        #[test]
        fn tuples_and_any(flag in any::<bool>(), word in any::<u32>()) {
            if flag && word == 1 {
                // Exercise the early-return path upstream tests rely on.
                return Ok(());
            }
            prop_assert_eq!(word, word);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
