//! Merge commutativity for partial trace stores: split a corpus into
//! `k ∈ {2, 3, 7}` partial stores, merge them back in shuffled orders,
//! and assert the merged store is indistinguishable from the unsplit
//! one — identical trace bytes, identical re-analysis accumulator
//! state, identical verdict.
//!
//! This works because a slot's encoding is a pure function of
//! `(index, input, trace)`: any store holding trace `i` holds the same
//! bytes for it, so merging is a union of idempotent writes and the
//! result cannot depend on merge order or overlap.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use superscalar_sca::analysis::{hw8, FnSelection};
use superscalar_sca::campaign::{reanalyze_store, Checkpointable, CpaSink};
use superscalar_sca::store::{CorpusKey, StoreMeta, TraceStore};

const TOTAL: u64 = 53;
const INPUT_LEN: usize = 4;
const SAMPLES: usize = 6;

fn scratch(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sca_merge_{}_{name}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta() -> StoreMeta {
    StoreMeta {
        key: CorpusKey {
            label: "merge-fixture".to_owned(),
            seed: 99,
            noise_sd_bits: 0.25f64.to_bits(),
            noise_baseline_bits: 0.0f64.to_bits(),
            executions_per_trace: 2,
        },
        window_start: 3,
        samples: SAMPLES as u64,
        window_cycles: SAMPLES as u64,
        total_traces: TOTAL,
        input_len: INPUT_LEN as u64,
        page_capacity: 0, // filled in by `create`
    }
}

/// Trace `i`'s synthetic input: a recognizable index-derived pattern.
fn input(i: u64) -> Vec<u8> {
    (0..INPUT_LEN as u64)
        .map(|b| (i.wrapping_mul(0x9e37) >> (8 * (b % 4))) as u8)
        .collect()
}

/// Trace `i`'s synthetic samples: one leaking sample (HW of input byte
/// 0) plus index-dependent wobble, so CPA over the corpus is
/// non-degenerate.
fn trace(i: u64) -> Vec<f32> {
    let leak = hw8(input(i)[0]) as f32;
    (0..SAMPLES)
        .map(|s| {
            let wobble = ((i as f32) * 0.37 + (s as f32) * 1.13).sin();
            if s == 2 {
                leak + 0.1 * wobble
            } else {
                wobble
            }
        })
        .collect()
}

/// Creates a store holding exactly the traces `indices`.
fn partial_store(name: &str, indices: impl Iterator<Item = u64>) -> TraceStore {
    let store = TraceStore::create(&scratch(name), meta()).expect("creates");
    for i in indices {
        store.append(i, &input(i), &trace(i)).expect("appends");
    }
    store
}

fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
    FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
        f64::from(hw8(input[0] ^ k))
    })
}

/// The re-analysis accumulator state of a complete store, serialized.
fn analysis_state(store: &TraceStore) -> Vec<u8> {
    let sink = reanalyze_store(store, 16, CpaSink::new(model(), 256, SAMPLES))
        .expect("complete store re-analyzes");
    let mut state = Vec::new();
    sink.save_state(&mut state);
    state
}

/// Asserts `merged` equals the unsplit store trace-for-trace and
/// analysis-for-analysis.
fn assert_equivalent(merged: &TraceStore, unsplit: &TraceStore) {
    assert!(merged.is_complete().expect("coverage reads"));
    assert_eq!(merged.valid_count().expect("counts"), TOTAL);
    for i in 0..TOTAL {
        let got = merged.read_trace(i).expect("reads").expect("present");
        let want = unsplit.read_trace(i).expect("reads").expect("present");
        assert_eq!(got.0, want.0, "input {i}");
        // Samples compare exactly: identical f32 bit patterns.
        let got_bits: Vec<u32> = got.1.iter().map(|s| s.to_bits()).collect();
        let want_bits: Vec<u32> = want.1.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "trace {i}");
    }
    assert_eq!(
        analysis_state(merged),
        analysis_state(unsplit),
        "re-analysis accumulator state diverged"
    );
}

/// Every permutation of `k` items (k! is small for k <= 3; larger k
/// uses rotations and a reversal instead — see the k = 7 test).
fn permutations(k: usize) -> Vec<Vec<usize>> {
    if k == 1 {
        return vec![vec![0]];
    }
    let mut all = Vec::new();
    for sub in permutations(k - 1) {
        for at in 0..=sub.len() {
            let mut perm = sub.clone();
            perm.insert(at, k - 1);
            all.push(perm);
        }
    }
    all
}

fn merged_in_order(parts: &[TraceStore], order: &[usize]) -> TraceStore {
    let merged = TraceStore::create(&scratch("merged"), meta()).expect("creates");
    for &at in order {
        merged.merge_from(&parts[at]).expect("merges");
    }
    merged
}

#[test]
fn two_and_three_way_splits_merge_identically_in_every_order() {
    let unsplit = partial_store("unsplit", 0..TOTAL);
    for k in [2usize, 3] {
        // Interleaved split: every partial store spans every page, so
        // merges overlap at page granularity without overlapping slots.
        let parts: Vec<TraceStore> = (0..k)
            .map(|j| {
                partial_store(
                    &format!("part{k}_{j}"),
                    (0..TOTAL).filter(move |i| (*i as usize) % k == j),
                )
            })
            .collect();
        for order in permutations(k) {
            let merged = merged_in_order(&parts, &order);
            assert_equivalent(&merged, &unsplit);
        }
    }
}

#[test]
fn seven_way_split_merges_identically_in_shuffled_orders() {
    const K: usize = 7;
    let unsplit = partial_store("unsplit7", 0..TOTAL);
    // Contiguous split this time: partial j holds its own index range,
    // the shape a sharded collection campaign would produce.
    let bounds: Vec<u64> = (0..=K as u64).map(|j| j * TOTAL / K as u64).collect();
    let parts: Vec<TraceStore> = (0..K)
        .map(|j| partial_store(&format!("part7_{j}"), bounds[j]..bounds[j + 1]))
        .collect();
    // All K rotations plus the reversal: 8 distinct orders.
    let mut orders: Vec<Vec<usize>> = (0..K)
        .map(|r| (0..K).map(|i| (i + r) % K).collect())
        .collect();
    orders.push((0..K).rev().collect());
    for order in orders {
        let merged = merged_in_order(&parts, &order);
        assert_equivalent(&merged, &unsplit);
    }
}

#[test]
fn overlapping_partials_merge_idempotently() {
    let unsplit = partial_store("unsplit_ov", 0..TOTAL);
    // Three overlapping windows covering the corpus twice over.
    let parts = [
        partial_store("ov_a", 0..40),
        partial_store("ov_b", 20..TOTAL),
        partial_store("ov_c", 10..30),
    ];
    let merged = merged_in_order(&parts, &[0, 1, 2]);
    // Re-merging everything again must change nothing.
    for part in &parts {
        merged.merge_from(part).expect("re-merge");
    }
    merged.merge_from(&unsplit).expect("self-equivalent merge");
    assert_equivalent(&merged, &unsplit);
}

#[test]
fn incomplete_merges_are_detected() {
    // Leave a hole: the union misses trace 17.
    let parts = [
        partial_store("hole_a", (0..TOTAL).filter(|&i| i < 17)),
        partial_store("hole_b", (0..TOTAL).filter(|&i| i > 17)),
    ];
    let merged = merged_in_order(&parts, &[1, 0]);
    assert!(!merged.is_complete().expect("coverage reads"));
    assert_eq!(merged.valid_count().expect("counts"), TOTAL - 1);
    assert!(
        reanalyze_store(&merged, 16, CpaSink::new(model(), 256, SAMPLES)).is_err(),
        "re-analysis of a holey corpus must fail loudly, not skip traces"
    );
}
