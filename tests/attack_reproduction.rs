//! Integration reproduction of the Section 5 attacks (Figures 3 and 4)
//! at test scale: low-noise campaigns small enough for debug builds,
//! asserting the qualitative results — key recovery, leakage
//! localization, and the microarchitecture-aware model's survival under
//! OS noise. Full-noise campaigns run through the `sca-bench` binaries.

use rand::Rng;

use superscalar_sca::aes::{AesSim, SubBytesHw, SubBytesStoreHd};
use superscalar_sca::analysis::{cpa_attack, CpaConfig};
use superscalar_sca::osnoise::LinuxEnvironment;
use superscalar_sca::power::{
    AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
};
use superscalar_sca::prelude::TraceSet;
use superscalar_sca::uarch::UarchConfig;

const KEY: [u8; 16] = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";

fn acquire(traces: usize, noisy_os: bool, seed: u64) -> TraceSet {
    let sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &KEY).expect("builds");
    let sampling = SamplingConfig::per_cycle();
    let acquisition = AcquisitionConfig {
        traces,
        executions_per_trace: 1,
        sampling: sampling.clone(),
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 10.0,
        },
        seed,
        threads: 4,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
    let generate = |rng: &mut rand::rngs::StdRng, _| {
        let mut pt = vec![0u8; 16];
        rng.fill(&mut pt[..]);
        pt
    };
    let set = if noisy_os {
        let environment = LinuxEnvironment::idle_linux(&sampling).expect("environment");
        synth
            .acquire_with(
                sim.cpu(),
                sim.entry(),
                generate,
                AesSim::stage_plaintext,
                |rng, s| environment.apply(rng, s),
            )
            .expect("acquires")
    } else {
        synth
            .acquire(sim.cpu(), sim.entry(), generate, AesSim::stage_plaintext)
            .expect("acquires")
    };
    // Round 1 only (per-cycle sampling: ~350 cycles).
    set.truncated(380)
}

#[test]
fn figure3_style_attack_recovers_key_byte() {
    let traces = acquire(250, false, 11);
    let model = SubBytesHw { byte: 0 };
    let result = cpa_attack(
        &traces,
        &model,
        &CpaConfig {
            guesses: 256,
            threads: 4,
        },
    );
    assert_eq!(
        result.best_guess() as u8,
        KEY[0],
        "rank: {}",
        result.rank_of(usize::from(KEY[0]))
    );
    // Leakage must be present well inside the round, not only at t=0.
    let (sample, corr) = result.peak(usize::from(KEY[0]));
    assert!(sample > 20, "leak localized at sample {sample}");
    assert!(corr.abs() > 0.2, "peak corr {corr}");
}

#[test]
fn figure4_style_attack_with_hd_store_model() {
    // OS jitter smears the single-sample leak instants, so this campaign
    // needs more traces than the bare-metal one.
    let traces = acquire(1000, true, 13);
    let model = SubBytesStoreHd {
        byte: 1,
        prev_key: KEY[0],
    };
    let result = cpa_attack(
        &traces,
        &model,
        &CpaConfig {
            guesses: 256,
            threads: 4,
        },
    );
    assert_eq!(
        result.best_guess() as u8,
        KEY[1],
        "rank: {}",
        result.rank_of(usize::from(KEY[1]))
    );
    // Rank-1 recovery is the core claim at this scale; the paper's >99%
    // distinguishing confidence is demonstrated by the full-scale
    // `figure4` bench binary.
    assert!(
        result.success_confidence(usize::from(KEY[1])) > 0.7,
        "confidence {}",
        result.success_confidence(usize::from(KEY[1]))
    );
}

#[test]
fn os_noise_reduces_correlation_amplitude() {
    // The paper's Figure 3 -> Figure 4 observation: same victim, noisy
    // environment, smaller correlation.
    let quiet = acquire(200, false, 17);
    let noisy = acquire(200, true, 17);
    let model = SubBytesStoreHd {
        byte: 1,
        prev_key: KEY[0],
    };
    let config = CpaConfig {
        guesses: 256,
        threads: 4,
    };
    let quiet_peak = cpa_attack(&quiet, &model, &config)
        .peak(usize::from(KEY[1]))
        .1
        .abs();
    let noisy_peak = cpa_attack(&noisy, &model, &config)
        .peak(usize::from(KEY[1]))
        .1
        .abs();
    assert!(
        noisy_peak < quiet_peak,
        "OS noise must reduce the amplitude: quiet {quiet_peak} vs noisy {noisy_peak}"
    );
}

#[test]
fn wrong_fixed_model_fails_where_right_model_succeeds() {
    // Sanity: a selection function built on the wrong intermediate (raw
    // plaintext byte instead of the SubBytes output) must not beat the
    // proper model's correct key.
    let traces = acquire(250, false, 19);
    let good = cpa_attack(
        &traces,
        &SubBytesHw { byte: 0 },
        &CpaConfig {
            guesses: 256,
            threads: 4,
        },
    );
    let good_peak = good.peak(usize::from(KEY[0])).1.abs();
    let bad_model =
        superscalar_sca::analysis::FnSelection::new("hw(pt^k)", |input: &[u8], k: u8| {
            f64::from((input[0] ^ k).count_ones())
        });
    let bad = cpa_attack(
        &traces,
        &bad_model,
        &CpaConfig {
            guesses: 256,
            threads: 4,
        },
    );
    let bad_peak = bad.peak(usize::from(KEY[0])).1.abs();
    assert!(
        good_peak > bad_peak,
        "nonlinear SubBytes model should dominate: {good_peak} vs {bad_peak}"
    );
}
