//! Cross-crate integration: the assembly AES-128 running on the
//! simulated pipeline must be architecturally correct under every
//! microarchitecture configuration — dual-issue, scalar, degraded
//! feature sets — because side-channel countermeasure evaluation is
//! meaningless on a broken target.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superscalar_sca::aes::{encrypt_block, AesSim};
use superscalar_sca::uarch::{DualIssuePolicy, UarchConfig};

fn random_vectors(n: usize, seed: u64) -> Vec<([u8; 16], [u8; 16])> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            rng.fill(&mut key);
            rng.fill(&mut pt);
            (key, pt)
        })
        .collect()
}

#[test]
fn aes_matches_golden_on_cortex_a7() {
    for (key, pt) in random_vectors(6, 1) {
        let mut sim = AesSim::new(UarchConfig::cortex_a7(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn aes_matches_golden_on_scalar_core() {
    for (key, pt) in random_vectors(4, 2) {
        let mut sim = AesSim::new(UarchConfig::scalar(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn aes_correct_with_degraded_features() {
    // Leakage-affecting knobs must never affect architectural results.
    let mut config = UarchConfig::cortex_a7().with_ideal_memory();
    config.nop_zeroes_wb = false;
    config.align_buffer = false;
    config.forwarding = false;
    config.policy = DualIssuePolicy::structural_only();
    for (key, pt) in random_vectors(4, 3) {
        let mut sim = AesSim::new(config.clone(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn scalar_core_is_slower_but_equivalent() {
    let key = [7u8; 16];
    let pt = [9u8; 16];
    let mut fast = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key).expect("builds");
    let mut slow = AesSim::new(UarchConfig::scalar().with_ideal_memory(), &key).expect("builds");
    assert_eq!(
        fast.encrypt(&pt).expect("encrypts"),
        slow.encrypt(&pt).expect("encrypts")
    );
    let fast_cycles = fast.cpu().stats().cycles;
    let slow_cycles = slow.cpu().stats().cycles;
    assert!(
        slow_cycles > fast_cycles,
        "dual-issue should save cycles: scalar {slow_cycles} vs A7 {fast_cycles}"
    );
}
