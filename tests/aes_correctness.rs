//! Cross-crate integration: the assembly AES-128 running on the
//! simulated pipeline must be architecturally correct under every
//! microarchitecture configuration — dual-issue, scalar, degraded
//! feature sets — because side-channel countermeasure evaluation is
//! meaningless on a broken target.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use superscalar_sca::aes::{encrypt_block, AesSim, MaskedAesSim, MASK_BYTES};
use superscalar_sca::uarch::{DualIssuePolicy, UarchConfig};

fn random_vectors(n: usize, seed: u64) -> Vec<([u8; 16], [u8; 16])> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            rng.fill(&mut key);
            rng.fill(&mut pt);
            (key, pt)
        })
        .collect()
}

#[test]
fn aes_matches_golden_on_cortex_a7() {
    for (key, pt) in random_vectors(6, 1) {
        let mut sim = AesSim::new(UarchConfig::cortex_a7(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn aes_matches_golden_on_scalar_core() {
    for (key, pt) in random_vectors(4, 2) {
        let mut sim = AesSim::new(UarchConfig::scalar(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn aes_correct_with_degraded_features() {
    // Leakage-affecting knobs must never affect architectural results.
    let mut config = UarchConfig::cortex_a7().with_ideal_memory();
    config.nop_zeroes_wb = false;
    config.align_buffer = false;
    config.forwarding = false;
    config.policy = DualIssuePolicy::structural_only();
    for (key, pt) in random_vectors(4, 3) {
        let mut sim = AesSim::new(config.clone(), &key).expect("builds");
        assert_eq!(
            sim.encrypt(&pt).expect("encrypts"),
            encrypt_block(&key, &pt)
        );
    }
}

#[test]
fn masked_aes_matches_golden_under_every_uarch() {
    // The masked implementation must stay correct under the same
    // configuration matrix as the unprotected one.
    let mut degraded = UarchConfig::cortex_a7().with_ideal_memory();
    degraded.nop_zeroes_wb = false;
    degraded.align_buffer = false;
    degraded.forwarding = false;
    for (i, config) in [UarchConfig::cortex_a7(), UarchConfig::scalar(), degraded]
        .into_iter()
        .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let mut key = [0u8; 16];
        rng.fill(&mut key);
        let mut sim = MaskedAesSim::new(config, &key).expect("builds");
        for _ in 0..3 {
            let mut pt = [0u8; 16];
            let mut masks = [0u8; MASK_BYTES];
            rng.fill(&mut pt);
            rng.fill(&mut masks);
            assert_eq!(
                sim.encrypt_masked(&pt, &masks).expect("encrypts"),
                encrypt_block(&key, &pt),
                "uarch variant {i}, masks {masks:02x?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Masked-AES share-randomization invariance: for any plaintext and
    /// any two mask draws, the ciphertext equals the golden model —
    /// re-keying the mask RNG changes no ciphertext bit.
    #[test]
    fn masked_aes_ciphertext_is_mask_invariant(
        pt_bytes in prop::collection::vec(any::<u8>(), 16..17),
        masks_a_bytes in prop::collection::vec(any::<u8>(), 6..7),
        masks_b_bytes in prop::collection::vec(any::<u8>(), 6..7),
    ) {
        let mut pt = [0u8; 16];
        pt.copy_from_slice(&pt_bytes);
        let mut masks_a = [0u8; MASK_BYTES];
        masks_a.copy_from_slice(&masks_a_bytes);
        let mut masks_b = [0u8; MASK_BYTES];
        masks_b.copy_from_slice(&masks_b_bytes);
        // One shared simulator: building a CPU per case would dominate
        // the test; the key is fixed, the masks and plaintext vary.
        use std::cell::RefCell;
        thread_local! {
            static SIM: RefCell<Option<MaskedAesSim>> = const { RefCell::new(None) };
        }
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
        let reference = encrypt_block(&key, &pt);
        SIM.with(|cell| {
            let mut slot = cell.borrow_mut();
            let sim = slot.get_or_insert_with(|| {
                MaskedAesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key)
                    .expect("builds")
            });
            prop_assert_eq!(sim.encrypt_masked(&pt, &masks_a).expect("encrypts"), reference);
            prop_assert_eq!(sim.encrypt_masked(&pt, &masks_b).expect("encrypts"), reference);
            Ok(())
        })?;
    }
}

#[test]
fn scalar_core_is_slower_but_equivalent() {
    let key = [7u8; 16];
    let pt = [9u8; 16];
    let mut fast = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key).expect("builds");
    let mut slow = AesSim::new(UarchConfig::scalar().with_ideal_memory(), &key).expect("builds");
    assert_eq!(
        fast.encrypt(&pt).expect("encrypts"),
        slow.encrypt(&pt).expect("encrypts")
    );
    let fast_cycles = fast.cpu().stats().cycles;
    let slow_cycles = slow.cpu().stats().cycles;
    assert!(
        slow_cycles > fast_cycles,
        "dual-issue should save cycles: scalar {slow_cycles} vs A7 {fast_cycles}"
    );
}
