//! The masking-audit findings, enforced: the `masking_audit` example's
//! assertions promoted into tier-1 tests over the same shared code path
//! (`sca_core::masking_scenarios`), plus the scheduler's end-to-end
//! guarantee on the masked AES program.

use superscalar_sca::core::{audit_scenario, masking_scenarios, operand_path_leaks, AuditConfig};
use superscalar_sca::isa::Reg;
use superscalar_sca::prelude::*;

fn audit_config() -> AuditConfig {
    AuditConfig {
        executions: 300,
        ..AuditConfig::default()
    }
}

/// The vulnerable schedule recombines the shares on the operand path;
/// every hardened schedule — hand-written spacer, hand-written operand
/// swap, and both `sca-sched` rewriter outputs — is clean.
#[test]
fn audit_verdicts_match_on_every_scenario() {
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    for scenario in masking_scenarios() {
        let report = audit_scenario(&scenario, &uarch, &audit_config()).expect("audits");
        let leaks = operand_path_leaks(&report);
        if scenario.expect_operand_path_leak {
            assert!(
                leaks > 0,
                "'{}' must show the share recombination:\n{}",
                scenario.name,
                report.render()
            );
        } else {
            assert_eq!(
                leaks,
                0,
                "'{}' must not recombine the shares:\n{}",
                scenario.name,
                report.render()
            );
        }
    }
}

/// The recombination the audit flags rides the same nodes the paper
/// names: the shared operand buses / IS-EX operand buffers.
#[test]
fn vulnerable_finding_names_an_operand_path_node() {
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    let scenarios = masking_scenarios();
    let vulnerable = &scenarios[0];
    assert!(vulnerable.expect_operand_path_leak);
    let report = audit_scenario(vulnerable, &uarch, &audit_config()).expect("audits");
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. })),
        "expected an operand-path finding, got {:?}",
        report.findings
    );
    // The audit report carries the source attribution the paper's
    // developer-tool story depends on.
    assert!(report.findings.iter().any(|f| f.source_line.is_some()));
}

/// The sca-sched hardening passes preserve architecture on the scenario
/// programs: the audited schedules compute identical results.
#[test]
fn hardened_scenarios_compute_the_same_values() {
    use superscalar_sca::isa::Interp;
    let scenarios = masking_scenarios();
    let reference = &scenarios[0].program; // vulnerable
    for scenario in &scenarios[3..] {
        // the two sca-sched outputs
        let run = |program: &superscalar_sca::isa::Program| {
            let mut interp = Interp::new(0x1000);
            interp.load(program).unwrap();
            interp.set_reg(Reg::R0, 0xdead_beef);
            interp.set_reg(Reg::R1, 0x1234_5678);
            interp.set_reg(Reg::R4, 0x0f0f_0f0f);
            interp.set_reg(Reg::R5, 0x3c3c_3c3c);
            interp.set_reg(Reg::R10, 0x800);
            interp.run(10_000).unwrap();
            (interp.reg(Reg::R2), interp.reg(Reg::R3))
        };
        assert_eq!(
            run(reference),
            run(&scenario.program),
            "'{}' changed the computation",
            scenario.name
        );
    }
}
