//! Fault-injection tests for store-backed campaigns: kill a run at an
//! awkward point — right after a trace, midway through a page-slot
//! write, midway through a checkpoint record — and assert that resuming
//! yields a sink **byte-identical** to an uninterrupted stored run with
//! the same segmentation and thread count (the resume determinism
//! contract in `sca_campaign::run_stored`'s module docs).
//!
//! The property test sweeps kill points and checkpoint intervals; the
//! deterministic tests pin the contract's edges (torn first checkpoint,
//! fast-path resume of a complete store) and lift the whole thing to
//! portfolio scale, where a killed-and-resumed run must reproduce the
//! uninterrupted run's verdicts and correlation bit patterns.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use superscalar_sca::analysis::{hw8, FnSelection};
use superscalar_sca::campaign::{
    Campaign, CampaignConfig, CampaignError, Checkpointable, CpaSink, KillPoint, StoreOptions,
    StoredRunReport,
};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::{GaussianNoise, LeakageWeights, SamplingConfig};
use superscalar_sca::uarch::{Cpu, UarchConfig};

const TRACES: u64 = 48;

/// A fresh scratch directory; unique per call so parallel tests never
/// collide.
fn scratch(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "sca_crash_recovery_{}_{name}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The smallest attackable kernel: one staged random word loaded inside
/// the trigger window (the MDR transition leaks its Hamming weight).
fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        nop
        trig #0
        halt
    ",
    )
    .expect("fixture assembles");
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.load(&program).expect("fixture loads");
    cpu.set_reg(Reg::R10, 0x800);
    (cpu, program.entry())
}

fn generate(rng: &mut rand::rngs::StdRng, _index: usize) -> Vec<u8> {
    use rand::Rng;
    rng.gen::<u32>().to_le_bytes().to_vec()
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut()
        .write_u32(0x800, word)
        .expect("scratch mapped");
}

fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
    FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
        f64::from(hw8(input[0] ^ k))
    })
}

fn campaign() -> Campaign {
    Campaign::new(
        LeakageWeights::cortex_a7(),
        CampaignConfig {
            traces: TRACES as usize,
            executions_per_trace: 2,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise {
                sd: 0.5,
                baseline: 1.0,
            },
            seed: 0xdac_2018,
            threads: 2,
            batch: 8,
        },
    )
}

/// Runs the fixture campaign against `dir` and returns the sink's
/// exact serialized state alongside the run report.
fn run_stored(
    dir: &PathBuf,
    checkpoint_every: u64,
    resume: bool,
    kill: KillPoint,
) -> Result<(Vec<u8>, StoredRunReport), CampaignError> {
    let (cpu, entry) = fixture();
    let opts = StoreOptions {
        checkpoint_every,
        resume,
        kill,
        ..StoreOptions::new(dir, "crash-fixture", "hw-cpa")
    };
    let (sink, report) = campaign().run_stored(
        &cpu,
        entry,
        generate,
        stage,
        |samples| CpaSink::new(model(), 256, samples),
        &opts,
    )?;
    let mut state = Vec::new();
    sink.save_state(&mut state);
    Ok((state, report))
}

/// The uninterrupted stored reference for a checkpoint interval.
fn reference(checkpoint_every: u64) -> Vec<u8> {
    let dir = scratch("ref");
    let (state, report) =
        run_stored(&dir, checkpoint_every, false, KillPoint::None).expect("reference runs");
    assert_eq!(report.simulated, TRACES);
    assert_eq!(report.resumed_from, 0);
    let _ = std::fs::remove_dir_all(&dir);
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// The tentpole property: for any kill kind, kill position,
    /// torn-record length and checkpoint interval, kill-then-resume
    /// reproduces the uninterrupted stored run's sink byte-for-byte.
    #[test]
    fn any_kill_point_resumes_byte_identically(
        every in 1u64..20,
        at in 0..TRACES,
        kind in 0usize..3,
        keep in 0usize..48,
    ) {
        let kill = match kind {
            0 => KillPoint::AfterTrace(at),
            1 => KillPoint::MidPage { at, keep },
            _ => KillPoint::MidCheckpoint { at, keep },
        };
        let expected = reference(every);

        let dir = scratch("kill");
        let error = run_stored(&dir, every, false, kill)
            .expect_err("the kill point always fires before completion");
        prop_assert!(matches!(error, CampaignError::Killed { .. }), "{error}");

        let (state, report) = run_stored(&dir, every, true, KillPoint::None)
            .expect("resume completes");
        prop_assert_eq!(&state, &expected, "resumed sink diverged (kill {:?})", kill);
        // Whatever survived the crash, the resume point is a durable
        // checkpoint boundary at or before the campaign's end.
        prop_assert!(report.resumed_from <= TRACES);
        prop_assert_eq!(report.simulated, TRACES - report.resumed_from);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn tail on the *first* checkpoint record leaves no valid
/// checkpoint at all: resume must fall back to a from-scratch run and
/// still match the reference (torn-WAL-tail recovery).
#[test]
fn torn_first_checkpoint_resumes_from_scratch() {
    let every = 16;
    let expected = reference(every);
    let dir = scratch("torn_wal");
    let error = run_stored(
        &dir,
        every,
        false,
        KillPoint::MidCheckpoint { at: 0, keep: 3 },
    )
    .expect_err("torn checkpoint kills the run");
    assert!(matches!(error, CampaignError::Killed { .. }));

    let (state, report) = run_stored(&dir, every, true, KillPoint::None).expect("resumes");
    assert_eq!(
        report.resumed_from, 0,
        "a 3-byte checkpoint record must not validate"
    );
    assert_eq!(state, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn page slot (half-written trace record) is detected by the slot
/// checksum and rewritten on resume; the slot index right after a
/// checkpoint boundary is the awkward case — its checkpoint claims
/// nothing about it.
#[test]
fn half_written_page_slot_is_rewritten_on_resume() {
    let every = 12;
    let expected = reference(every);
    let dir = scratch("torn_page");
    // Trace 12 is the first of segment two; tear its record mid-write.
    let error = run_stored(&dir, every, false, KillPoint::MidPage { at: 12, keep: 5 })
        .expect_err("torn page kills the run");
    assert!(matches!(error, CampaignError::Killed { at: 12 }));

    let (state, report) = run_stored(&dir, every, true, KillPoint::None).expect("resumes");
    assert_eq!(report.resumed_from, 12, "segment one's checkpoint survives");
    assert_eq!(state, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming a store that already holds the whole campaign restores the
/// sink from its final checkpoint without simulating anything.
#[test]
fn fast_path_resume_of_a_complete_store_simulates_nothing() {
    let dir = scratch("fast_path");
    let (expected, first) = run_stored(&dir, 16, false, KillPoint::None).expect("first run");
    assert_eq!(first.simulated, TRACES);

    let (state, report) = run_stored(&dir, 16, true, KillPoint::None).expect("fast resume");
    assert_eq!(report.simulated, 0);
    assert_eq!(report.resumed_from, TRACES);
    assert_eq!(report.checkpoints, 0);
    assert_eq!(state, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Different checkpoint intervals re-associate the floating-point
/// folds, so sinks need not match bitwise across intervals — but the
/// discrete verdict (key ranking) must not move.
#[test]
fn checkpoint_interval_never_changes_the_verdict() {
    let run = |every: u64| {
        let dir = scratch("interval");
        let (cpu, entry) = fixture();
        let opts = StoreOptions {
            checkpoint_every: every,
            ..StoreOptions::new(&dir, "crash-fixture", "hw-cpa")
        };
        let (sink, _) = campaign()
            .run_stored(
                &cpu,
                entry,
                generate,
                stage,
                |samples| CpaSink::new(model(), 256, samples),
                &opts,
            )
            .expect("stored run completes");
        let _ = std::fs::remove_dir_all(&dir);
        sink.finish()
    };
    let reference = run(TRACES);
    for every in [1, 7, 13] {
        let other = run(every);
        assert_eq!(reference.best_guess(), other.best_guess(), "every {every}");
        assert_eq!(reference.ranking(), other.ranking(), "every {every}");
    }
}
