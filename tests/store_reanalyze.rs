//! Re-analysis of a stored corpus must not touch the simulator.
//!
//! `sca_power::simulator_runs` counts every pipeline execution in the
//! process. This file holds exactly ONE test: the counter is process
//! global, so a second test running concurrently in the same binary
//! would race it. One test per integration binary = one process = exact
//! counts. (The counter's unit-level behavior is pinned the same way in
//! `sca-power`'s own `sim_counter` test.)
//!
//! The single test walks the whole lifecycle in order: collect a stored
//! corpus (simulates), re-analyze it with the original model (zero
//! simulation), re-analyze it with a model the corpus was never
//! collected for (still zero — the inputs are stored, any input-keyed
//! model works), and fast-path-resume the complete store (zero again:
//! not even the window probe runs).

use std::time::Instant;

use superscalar_sca::analysis::{hw8, FnSelection};
use superscalar_sca::campaign::{reanalyze_store, Campaign, CampaignConfig, CpaSink, StoreOptions};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::{simulator_runs, GaussianNoise, LeakageWeights, SamplingConfig};
use superscalar_sca::store::TraceStore;
use superscalar_sca::uarch::{Cpu, UarchConfig};

const TRACES: usize = 48;
const EXECUTIONS: usize = 2;

fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        nop
        trig #0
        halt
    ",
    )
    .expect("fixture assembles");
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.load(&program).expect("fixture loads");
    cpu.set_reg(Reg::R10, 0x800);
    (cpu, program.entry())
}

fn generate(rng: &mut rand::rngs::StdRng, _index: usize) -> Vec<u8> {
    use rand::Rng;
    rng.gen::<u32>().to_le_bytes().to_vec()
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut()
        .write_u32(0x800, word)
        .expect("scratch mapped");
}

fn byte_model(byte: usize) -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
    FnSelection::new("hw(b ^ k)", move |input: &[u8], k: u8| {
        f64::from(hw8(input[byte] ^ k))
    })
}

#[test]
fn reanalysis_streams_with_zero_simulator_invocations() {
    assert_eq!(simulator_runs(), 0, "fresh process");
    let dir = std::env::temp_dir().join(format!("sca_reanalyze_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (cpu, entry) = fixture();
    let campaign = Campaign::new(
        LeakageWeights::cortex_a7(),
        CampaignConfig {
            traces: TRACES,
            executions_per_trace: EXECUTIONS,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise {
                sd: 0.5,
                baseline: 1.0,
            },
            seed: 0xdac_2018,
            threads: 2,
            batch: 8,
        },
    );
    let opts = StoreOptions {
        checkpoint_every: 16,
        ..StoreOptions::new(&dir, "reanalyze-fixture", "hw-cpa")
    };

    // Phase 1 — collection simulates: one probe run plus
    // `executions_per_trace` runs per trace.
    let collect_started = Instant::now();
    let (sink, report) = campaign
        .run_stored(
            &cpu,
            entry,
            generate,
            stage,
            |samples| CpaSink::new(byte_model(0), 256, samples),
            &opts,
        )
        .expect("collection runs");
    let collect_elapsed = collect_started.elapsed();
    let stored = sink.finish();
    assert_eq!(report.simulated, TRACES as u64);
    let after_collection = simulator_runs();
    assert_eq!(
        after_collection,
        1 + (TRACES * EXECUTIONS) as u64,
        "collection cost: probe + per-execution runs"
    );

    // Phase 2 — re-analysis with the original model: same verdict,
    // zero additional simulator work, and measurably faster than the
    // collection that produced the corpus (streaming pages vs
    // simulating a pipeline; the gap is an order of magnitude, so the
    // comparison is safe even on noisy CI hosts).
    let store = TraceStore::open_any(&dir).expect("store opens");
    let reanalyze_started = Instant::now();
    let reanalyzed = reanalyze_store(&store, 8, CpaSink::new(byte_model(0), 256, report.samples))
        .expect("re-analysis streams")
        .finish();
    let reanalyze_elapsed = reanalyze_started.elapsed();
    assert_eq!(simulator_runs(), after_collection, "re-analysis simulated");
    assert_eq!(reanalyzed.best_guess(), stored.best_guess());
    assert_eq!(reanalyzed.ranking(), stored.ranking());
    assert!(
        reanalyze_elapsed < collect_elapsed,
        "re-analysis ({reanalyze_elapsed:?}) should beat resimulation ({collect_elapsed:?})"
    );

    // Phase 3 — model swap: attack input byte 2, which the corpus was
    // never collected for. Stored inputs make any input-keyed model
    // fair game, still without simulating.
    let swapped = reanalyze_store(&store, 8, CpaSink::new(byte_model(2), 256, report.samples))
        .expect("swapped-model re-analysis streams")
        .finish();
    assert_eq!(simulator_runs(), after_collection, "model swap simulated");
    assert_eq!(swapped.traces_used(), TRACES as u64);

    // Phase 4 — fast-path resume of the complete store: the sink comes
    // back from the final checkpoint; not even the window probe runs.
    let resume_opts = StoreOptions {
        checkpoint_every: 16,
        resume: true,
        ..StoreOptions::new(&dir, "reanalyze-fixture", "hw-cpa")
    };
    let (restored, fast) = campaign
        .run_stored(
            &cpu,
            entry,
            generate,
            stage,
            |samples| CpaSink::new(byte_model(0), 256, samples),
            &resume_opts,
        )
        .expect("fast-path resume");
    assert_eq!(fast.simulated, 0);
    assert_eq!(
        simulator_runs(),
        after_collection,
        "fast-path resume must not even probe"
    );
    assert_eq!(restored.finish().best_guess(), stored.best_guess());

    let _ = std::fs::remove_dir_all(&dir);
}
