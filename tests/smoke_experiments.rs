//! Smoke coverage for the experiment surface: runs the `table1` and
//! `table2` binaries' underlying logic in-process, at reduced scale, so
//! tier-1 (`cargo test -q`) guards the paper-artifact pipelines without
//! paying for full campaigns. The full-scale runs live in the `sca-bench`
//! binaries (see `EXPERIMENTS.md`).

use superscalar_sca::analysis::input_word;
use superscalar_sca::core::{
    audit_program, run_benchmark, table2_benchmarks, AuditConfig, CharacterizationConfig,
    DualIssueMap, SecretModel,
};
use superscalar_sca::isa::{assemble, InsnClass, Reg};
use superscalar_sca::uarch::{Cpu, DualIssuePolicy, UarchConfig};

/// Table 1 logic: the measured dual-issue matrix is complete, CPI values
/// are sane, and the matrix reproduces the modeled pairing policy.
#[test]
fn table1_logic_produces_the_papers_matrix() {
    let config = UarchConfig::cortex_a7();
    let map = DualIssueMap::measure(&config).expect("measures");
    let policy = DualIssuePolicy::cortex_a7();
    for (i, older) in InsnClass::TABLE1.into_iter().enumerate() {
        for (j, younger) in InsnClass::TABLE1.into_iter().enumerate() {
            let cpi = map.cpi[i][j];
            assert!(cpi.is_finite(), "CPI({older}, {younger}) = {cpi}");
            assert!(
                (0.4..=8.0).contains(&cpi),
                "CPI({older}, {younger}) = {cpi} outside plausible range"
            );
            assert_eq!(
                map.dual_issued(older, younger),
                policy.allows(older, younger),
                "measured pairing disagrees with policy at ({older}, {younger})"
            );
        }
    }
    // The rendered table is what the binary prints; it must mention every
    // class label.
    let rendered = map.render();
    for class in InsnClass::TABLE1 {
        assert!(
            rendered.contains(&class.to_string()),
            "render missing {class}"
        );
    }
}

/// Table 2 logic: each characterization row produces finite, bounded
/// correlations with peaks inside the sampled window, for every modeled
/// component cell.
#[test]
fn table2_logic_is_finite_and_shaped() {
    let benchmarks = table2_benchmarks();
    assert_eq!(benchmarks.len(), 7, "the paper's Table 2 has seven rows");

    // Reduced-scale campaign: enough to exercise the full pipeline
    // (synthesis, per-component models, significance tests) in debug
    // builds, not enough to resolve the weakest leaks — so this test
    // checks shape, not verdicts.
    let config = CharacterizationConfig {
        traces: 250,
        executions_per_trace: 2,
        ..CharacterizationConfig::default()
    };
    let uarch = UarchConfig::cortex_a7();
    for benchmark in &benchmarks[..2] {
        let row = run_benchmark(benchmark, &uarch, &config).expect("runs");
        assert_eq!(row.row, benchmark.row);
        assert_eq!(row.traces, config.traces);
        assert!(!row.cells.is_empty(), "row {} has no cells", row.row);
        for cell in &row.cells {
            assert!(
                cell.peak_corr.is_finite() && cell.peak_corr.abs() <= 1.0,
                "row {} {} peak corr {} out of range",
                row.row,
                cell.expr,
                cell.peak_corr
            );
        }
    }
}

/// The audit API behind `table2`/`ablation`: flags a straight-line
/// recombination of two secret shares and stays clean on a version that
/// keeps them apart, with finite correlations throughout.
#[test]
fn audit_api_flags_share_recombination() {
    // The paper's row-1 kernel: the nop between the two movs keeps them
    // from dual-issuing, so both shares cross the same pipe-0 buffers.
    let leaky = assemble(
        "
        nop
        mov r2, r0
        nop
        mov r3, r1
        nop
        halt
    ",
    )
    .expect("assembles");
    let models = [SecretModel::new("HD(share0, share1)", |input: &[u8]| {
        f64::from((input_word(input, 0) ^ input_word(input, 1)).count_ones())
    })];
    let stage = |cpu: &mut Cpu, input: &[u8]| {
        cpu.set_reg(Reg::R0, input_word(input, 0));
        cpu.set_reg(Reg::R1, input_word(input, 1));
    };
    let config = AuditConfig {
        executions: 300,
        ..AuditConfig::default()
    };
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    let report = audit_program(&uarch, &leaky, 8, stage, &models, &config).expect("audits");
    assert_eq!(report.executions, config.executions);
    assert!(
        !report.is_clean(),
        "back-to-back shares must recombine somewhere"
    );
    for finding in &report.findings {
        assert!(finding.corr.is_finite(), "finding corr {}", finding.corr);
        assert!(
            finding.corr.abs() <= 1.0,
            "corr {} out of range",
            finding.corr
        );
    }
}
