//! The campaign engine's determinism contract, enforced at test scale:
//!
//! * a streaming campaign equals the materialize-then-correlate flow
//!   bit-for-bit when run on one shard;
//! * the batch size never changes results at all;
//! * the thread count only re-associates floating-point sums — verdicts
//!   are identical and correlations agree to 1e-12;
//! * merged shard accumulators reproduce the batch CPA attack (property
//!   test over random campaigns).

use proptest::prelude::*;

use superscalar_sca::analysis::{
    cpa_attack, hw8, CpaAccumulator, CpaConfig, CpaResult, FnSelection, SelectionFunction,
};
use superscalar_sca::campaign::{Campaign, CampaignConfig, CpaSink};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::{
    AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
};
use superscalar_sca::prelude::TraceSet;
use superscalar_sca::uarch::{Cpu, UarchConfig};

/// A kernel that loads one staged random word inside a trigger window —
/// the smallest program whose traces carry an attackable leak (the MDR
/// transition to the loaded value).
fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        nop
        nop
        trig #0
        halt
    ",
    )
    .expect("fixture assembles");
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.load(&program).expect("fixture loads");
    cpu.set_reg(Reg::R10, 0x800);
    (cpu, program.entry())
}

fn generate(rng: &mut rand::rngs::StdRng, _index: usize) -> Vec<u8> {
    use rand::Rng;
    rng.gen::<u32>().to_le_bytes().to_vec()
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut()
        .write_u32(0x800, word)
        .expect("scratch mapped");
}

fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
    FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
        f64::from(hw8(input[0] ^ k))
    })
}

fn campaign_config(threads: usize, batch: usize) -> CampaignConfig {
    CampaignConfig {
        traces: 60,
        executions_per_trace: 2,
        sampling: SamplingConfig::per_cycle(),
        noise: GaussianNoise {
            sd: 0.5,
            baseline: 1.0,
        },
        seed: 0xdac_2018,
        threads,
        batch,
    }
}

fn run_campaign(threads: usize, batch: usize) -> CpaResult {
    let (cpu, entry) = fixture();
    let config = campaign_config(threads, batch);
    let sink = Campaign::new(LeakageWeights::cortex_a7(), config)
        .run(&cpu, entry, generate, stage, |samples| {
            CpaSink::new(model(), 256, samples)
        })
        .expect("campaign runs");
    sink.finish()
}

#[test]
fn single_shard_streaming_is_bit_identical_to_materialized_attack() {
    let streamed = run_campaign(1, 64);
    let (cpu, entry) = fixture();
    let config = campaign_config(1, 64);
    let synth = TraceSynthesizer::new(
        LeakageWeights::cortex_a7(),
        AcquisitionConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling: config.sampling,
            noise: config.noise,
            seed: config.seed,
            threads: 1,
        },
    );
    let set = synth
        .acquire(&cpu, entry, generate, stage)
        .expect("acquires");
    let batch = cpa_attack(
        &set,
        &model(),
        &CpaConfig {
            guesses: 256,
            threads: 1,
        },
    );
    assert_eq!(streamed.traces_used(), batch.traces_used());
    for g in 0..256 {
        assert_eq!(streamed.series(g), batch.series(g), "guess {g}");
    }
}

#[test]
fn batch_size_never_changes_results() {
    let reference = run_campaign(3, 64);
    for batch in [1usize, 7, 1024] {
        let other = run_campaign(3, batch);
        for g in 0..256 {
            assert_eq!(
                reference.series(g),
                other.series(g),
                "batch {batch} guess {g}"
            );
        }
    }
}

/// Non-divisor batches — including a batch larger than the campaign
/// (`items + 1`) — must be bit-identical to the canonical batch size:
/// batches only bound how much transient trace data a worker buffers,
/// and shard boundaries are deliberately independent of them. The
/// property holds at every thread count, not just serially.
#[test]
fn non_divisor_batches_are_bit_identical() {
    let items = 60; // campaign_config's trace count
    for threads in [1usize, 3, 4] {
        let reference = run_campaign(threads, 64);
        for batch in [1usize, 7, 64, items + 1] {
            let other = run_campaign(threads, batch);
            assert_eq!(reference.best_guess(), other.best_guess());
            for g in 0..256 {
                assert_eq!(
                    reference.series(g),
                    other.series(g),
                    "threads {threads} batch {batch} guess {g}"
                );
            }
        }
    }
}

/// The arena fast path (one reused CPU, recorder and scratch buffer per
/// worker) must produce byte-identical traces to a fresh simulator
/// state per trace: a trace is a pure function of `(seed, index)`, no
/// matter how many traces the arena's buffers have already been
/// through — and no matter in which order the indices are visited.
#[test]
fn arena_reuse_is_byte_identical_to_fresh_simulators() {
    use superscalar_sca::campaign::SimArena;

    let (cpu, entry) = fixture();
    let config = campaign_config(1, 64);
    let synth = TraceSynthesizer::new(
        LeakageWeights::cortex_a7(),
        AcquisitionConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling: config.sampling,
            noise: config.noise,
            seed: config.seed,
            threads: 1,
        },
    );
    let post = |_: &mut rand::rngs::StdRng, _: &mut Vec<f64>| {};

    // One arena, reused across every trace — including a revisit of
    // index 0 after the buffers are thoroughly warm.
    let mut arena = SimArena::new(&synth, &cpu);
    let indices: Vec<usize> = (0..24).chain([0, 7, 23]).collect();
    for &index in &indices {
        let (arena_trace, arena_input) = {
            let (trace, input) = arena
                .synthesize(&synth, entry, index, &generate, &stage, &post)
                .expect("arena synthesizes");
            (trace.to_vec(), input)
        };
        // Fresh per-trace state, exactly like the pre-arena engine.
        let mut fresh_cpu = cpu.clone();
        let (fresh_trace, fresh_input) = synth
            .synthesize_trace(&mut fresh_cpu, entry, index, &generate, &stage, &post)
            .expect("fresh synthesizes");
        assert_eq!(arena_input, fresh_input, "index {index}");
        assert_eq!(arena_trace, fresh_trace, "index {index}");
    }
}

/// An empty campaign (zero traces) returns the identity-merged sink —
/// no worker runs, nothing panics — at any thread count.
#[test]
fn empty_campaign_returns_the_empty_sink() {
    let (cpu, entry) = fixture();
    for threads in [1usize, 4] {
        let mut config = campaign_config(threads, 64);
        config.traces = 0;
        let sink = Campaign::new(LeakageWeights::cortex_a7(), config)
            .run(&cpu, entry, generate, stage, |samples| {
                CpaSink::new(model(), 256, samples)
            })
            .expect("empty campaign runs");
        assert!(sink.is_empty(), "threads {threads}");
        assert_eq!(sink.len(), 0);
    }
}

#[test]
fn thread_count_preserves_verdicts_and_correlations() {
    let serial = run_campaign(1, 16);
    for threads in [2usize, 4, 8] {
        let sharded = run_campaign(threads, 16);
        assert_eq!(
            serial.best_guess(),
            sharded.best_guess(),
            "threads {threads}"
        );
        assert_eq!(serial.ranking(), sharded.ranking(), "threads {threads}");
        let mut worst: f64 = 0.0;
        for g in 0..256 {
            for (a, b) in serial.series(g).iter().zip(sharded.series(g)) {
                worst = worst.max((a - b).abs());
            }
        }
        assert!(
            worst < 1e-12,
            "threads {threads}: worst correlation divergence {worst}"
        );
    }
}

/// Synthetic trace sets for the pure-statistics property: power at one
/// sample is HW(pt ^ key) plus deterministic wobble.
fn synthetic_set(seed: u64, traces: usize) -> TraceSet {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let key: u8 = rng.gen();
    let mut set = TraceSet::new(5);
    for _ in 0..traces {
        let pt: u8 = rng.gen();
        let leak = f64::from(hw8(pt ^ key));
        let mut trace = vec![0.0f32; 5];
        for (i, t) in trace.iter_mut().enumerate() {
            let noise: f64 = rng.gen_range(-1.0..1.0);
            *t = (noise + if i == 2 { leak } else { 0.0 }) as f32;
        }
        set.push(trace, vec![pt]);
    }
    set
}

proptest! {
    /// Merged streaming CPA equals the existing batch CPA within 1e-12,
    /// for any campaign size and any shard split.
    #[test]
    fn merged_streaming_cpa_matches_batch_cpa(
        seed in 0u64..1_000_000,
        traces in 8usize..120,
        shards in 1usize..7,
    ) {
        let set = synthetic_set(seed, traces);
        let model = model();
        let mut accs: Vec<CpaAccumulator> = (0..shards)
            .map(|_| CpaAccumulator::new(256, set.samples_per_trace()))
            .collect();
        let mut predictions = vec![0.0f64; 256];
        for (i, (input, trace)) in set.iter().enumerate() {
            for (g, p) in predictions.iter_mut().enumerate() {
                *p = model.predict(input, g as u8);
            }
            accs[i % shards].absorb(&predictions, trace);
        }
        let mut merged = accs.remove(0);
        for acc in &accs {
            merged.merge(acc);
        }
        let streamed = merged.finish();
        let batch = cpa_attack(&set, &model, &CpaConfig { guesses: 256, threads: 2 });
        prop_assert_eq!(streamed.traces_used(), batch.traces_used());
        prop_assert_eq!(streamed.best_guess(), batch.best_guess());
        for g in 0..256 {
            for (s, b) in streamed.series(g).iter().zip(batch.series(g)) {
                prop_assert!((s - b).abs() < 1e-12, "guess {}: {} vs {}", g, s, b);
            }
        }
    }
}
