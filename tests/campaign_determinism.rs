//! The campaign engine's determinism contract, enforced at test scale:
//!
//! * a streaming campaign equals the materialize-then-correlate flow
//!   bit-for-bit when run on one shard;
//! * the batch size never changes results at all;
//! * the thread count only re-associates floating-point sums — verdicts
//!   are identical and correlations agree to 1e-12;
//! * merged shard accumulators reproduce the batch CPA attack (property
//!   test over random campaigns).

use proptest::prelude::*;

use superscalar_sca::analysis::{
    cpa_attack, hw8, CpaAccumulator, CpaConfig, CpaResult, FnSelection, SelectionFunction,
};
use superscalar_sca::campaign::{Campaign, CampaignConfig, CpaSink};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::{
    AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
};
use superscalar_sca::prelude::TraceSet;
use superscalar_sca::uarch::{Cpu, UarchConfig};

/// A kernel that loads one staged random word inside a trigger window —
/// the smallest program whose traces carry an attackable leak (the MDR
/// transition to the loaded value).
fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        nop
        nop
        trig #0
        halt
    ",
    )
    .expect("fixture assembles");
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.load(&program).expect("fixture loads");
    cpu.set_reg(Reg::R10, 0x800);
    (cpu, program.entry())
}

fn generate(rng: &mut rand::rngs::StdRng, _index: usize) -> Vec<u8> {
    use rand::Rng;
    rng.gen::<u32>().to_le_bytes().to_vec()
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut()
        .write_u32(0x800, word)
        .expect("scratch mapped");
}

fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
    FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
        f64::from(hw8(input[0] ^ k))
    })
}

fn campaign_config(threads: usize, batch: usize) -> CampaignConfig {
    CampaignConfig {
        traces: 60,
        executions_per_trace: 2,
        sampling: SamplingConfig::per_cycle(),
        noise: GaussianNoise {
            sd: 0.5,
            baseline: 1.0,
        },
        seed: 0xdac_2018,
        threads,
        batch,
    }
}

fn run_campaign(threads: usize, batch: usize) -> CpaResult {
    let (cpu, entry) = fixture();
    let config = campaign_config(threads, batch);
    let sink = Campaign::new(LeakageWeights::cortex_a7(), config)
        .run(&cpu, entry, generate, stage, |samples| {
            CpaSink::new(model(), 256, samples)
        })
        .expect("campaign runs");
    sink.finish()
}

#[test]
fn single_shard_streaming_is_bit_identical_to_materialized_attack() {
    let streamed = run_campaign(1, 64);
    let (cpu, entry) = fixture();
    let config = campaign_config(1, 64);
    let synth = TraceSynthesizer::new(
        LeakageWeights::cortex_a7(),
        AcquisitionConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling: config.sampling,
            noise: config.noise,
            seed: config.seed,
            threads: 1,
        },
    );
    let set = synth
        .acquire(&cpu, entry, generate, stage)
        .expect("acquires");
    let batch = cpa_attack(
        &set,
        &model(),
        &CpaConfig {
            guesses: 256,
            threads: 1,
        },
    );
    assert_eq!(streamed.traces_used(), batch.traces_used());
    for g in 0..256 {
        assert_eq!(streamed.series(g), batch.series(g), "guess {g}");
    }
}

#[test]
fn batch_size_never_changes_results() {
    let reference = run_campaign(3, 64);
    for batch in [1usize, 7, 1024] {
        let other = run_campaign(3, batch);
        for g in 0..256 {
            assert_eq!(
                reference.series(g),
                other.series(g),
                "batch {batch} guess {g}"
            );
        }
    }
}

#[test]
fn thread_count_preserves_verdicts_and_correlations() {
    let serial = run_campaign(1, 16);
    for threads in [2usize, 4, 8] {
        let sharded = run_campaign(threads, 16);
        assert_eq!(
            serial.best_guess(),
            sharded.best_guess(),
            "threads {threads}"
        );
        assert_eq!(serial.ranking(), sharded.ranking(), "threads {threads}");
        let mut worst: f64 = 0.0;
        for g in 0..256 {
            for (a, b) in serial.series(g).iter().zip(sharded.series(g)) {
                worst = worst.max((a - b).abs());
            }
        }
        assert!(
            worst < 1e-12,
            "threads {threads}: worst correlation divergence {worst}"
        );
    }
}

/// Synthetic trace sets for the pure-statistics property: power at one
/// sample is HW(pt ^ key) plus deterministic wobble.
fn synthetic_set(seed: u64, traces: usize) -> TraceSet {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let key: u8 = rng.gen();
    let mut set = TraceSet::new(5);
    for _ in 0..traces {
        let pt: u8 = rng.gen();
        let leak = f64::from(hw8(pt ^ key));
        let mut trace = vec![0.0f32; 5];
        for (i, t) in trace.iter_mut().enumerate() {
            let noise: f64 = rng.gen_range(-1.0..1.0);
            *t = (noise + if i == 2 { leak } else { 0.0 }) as f32;
        }
        set.push(trace, vec![pt]);
    }
    set
}

proptest! {
    /// Merged streaming CPA equals the existing batch CPA within 1e-12,
    /// for any campaign size and any shard split.
    #[test]
    fn merged_streaming_cpa_matches_batch_cpa(
        seed in 0u64..1_000_000,
        traces in 8usize..120,
        shards in 1usize..7,
    ) {
        let set = synthetic_set(seed, traces);
        let model = model();
        let mut accs: Vec<CpaAccumulator> = (0..shards)
            .map(|_| CpaAccumulator::new(256, set.samples_per_trace()))
            .collect();
        let mut predictions = vec![0.0f64; 256];
        for (i, (input, trace)) in set.iter().enumerate() {
            for (g, p) in predictions.iter_mut().enumerate() {
                *p = model.predict(input, g as u8);
            }
            accs[i % shards].absorb(&predictions, trace);
        }
        let mut merged = accs.remove(0);
        for acc in &accs {
            merged.merge(acc);
        }
        let streamed = merged.finish();
        let batch = cpa_attack(&set, &model, &CpaConfig { guesses: 256, threads: 2 });
        prop_assert_eq!(streamed.traces_used(), batch.traces_used());
        prop_assert_eq!(streamed.best_guess(), batch.best_guess());
        for g in 0..256 {
            for (s, b) in streamed.series(g).iter().zip(batch.series(g)) {
                prop_assert!((s - b).abs() < 1e-12, "guess {}: {} vs {}", g, s, b);
            }
        }
    }
}
