//! Integration reproduction of Table 1 and Figure 2: the CPI
//! characterization run against the simulated Cortex-A7 must rediscover
//! the paper's dual-issue matrix cell by cell, and the structure
//! deduction must arrive at the paper's pipeline.

use superscalar_sca::core::{measure_cpi, CpiBenchmark, DualIssueMap, PipelineHypothesis};
use superscalar_sca::isa::InsnClass;
use superscalar_sca::uarch::{DualIssuePolicy, UarchConfig};

#[test]
fn full_dual_issue_matrix_matches_paper() {
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    let map = DualIssueMap::measure(&config).expect("measures");
    let policy = DualIssuePolicy::cortex_a7();
    for older in InsnClass::TABLE1 {
        for younger in InsnClass::TABLE1 {
            assert_eq!(
                map.dual_issued(older, younger),
                policy.allows(older, younger),
                "cell ({older}, {younger})"
            );
        }
    }
}

#[test]
fn matrix_rendering_contains_every_class() {
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    let map = DualIssueMap::measure(&config).expect("measures");
    let rendered = map.render();
    for class in InsnClass::TABLE1 {
        assert!(rendered.contains(class.label()), "missing {class}");
    }
}

#[test]
fn pipeline_inference_matches_paper_figure2() {
    let hypothesis =
        PipelineHypothesis::infer(&UarchConfig::cortex_a7().with_ideal_memory()).expect("infers");
    assert_eq!(hypothesis, PipelineHypothesis::cortex_a7_expected());
}

#[test]
fn hazard_control_experiment() {
    // The paper's methodology: the same pair with an artificial RAW
    // hazard must not dual-issue.
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    for (older, younger) in [
        (InsnClass::Mov, InsnClass::Mov),
        (InsnClass::Alu, InsnClass::AluImm),
        (InsnClass::AluImm, InsnClass::LdSt),
    ] {
        let free =
            measure_cpi(&CpiBenchmark::hazard_free(older, younger), &config).expect("measures");
        let hazard =
            measure_cpi(&CpiBenchmark::with_raw_hazard(older, younger), &config).expect("measures");
        assert!(
            free.dual_issued(),
            "({older},{younger}) hazard-free CPI {}",
            free.cpi
        );
        assert!(
            !hazard.dual_issued(),
            "({older},{younger}) hazard CPI {}",
            hazard.cpi
        );
    }
}

#[test]
fn custom_policy_is_rediscovered() {
    // Characterization is not hard-wired to the A7: flip one cell of the
    // policy and the measurement sees it.
    let mut config = UarchConfig::cortex_a7().with_ideal_memory();
    config.policy.set(InsnClass::Mov, InsnClass::Shift, false);
    let map = DualIssueMap::measure(&config).expect("measures");
    assert!(!map.dual_issued(InsnClass::Mov, InsnClass::Shift));
    assert!(
        map.dual_issued(InsnClass::Mov, InsnClass::Mov),
        "other cells unaffected"
    );
}
