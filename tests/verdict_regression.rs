//! Verdict non-regression snapshots.
//!
//! Each experiment driver runs here at a reduced, fixed-seed scale and
//! its *verdict* — recovered key bytes, success flags, ranks, audit
//! counts — is pinned exactly. A pipeline, power-model or uarch change
//! that silently flips an attack outcome now fails `cargo test` instead
//! of only showing up in a full campaign; an intentional model change
//! must update these snapshots (and say so in review).
//!
//! The campaigns are deterministic by the engine's contract (seed →
//! per-trace RNG streams, thread-count invariant verdicts), so these
//! snapshots hold on any machine and at any `--threads`; the configs
//! below use 4 workers to keep tier-1 fast.

use sca_bench::{
    run_figure3, run_figure4, run_masked, run_portfolio, Figure3Config, Figure4Config,
    MaskedConfig, PortfolioConfig,
};
use superscalar_sca::power::GaussianNoise;
use superscalar_sca::target::ModelKind;

/// A quiet probe chain: the test-scale campaigns keep the full sampling
/// and OS models but lower the probe noise so a few hundred traces
/// resolve the verdicts in debug builds. The full-noise quick/paper
/// scales run through the binaries (and CI regenerates them).
fn quiet_probe() -> GaussianNoise {
    GaussianNoise {
        sd: 2.0,
        baseline: 30.0,
    }
}

/// Figure 3 at 200 traces: the HW model recovers key byte 0 on bare
/// metal, with the leakage localized in round-1 primitives.
#[test]
fn figure3_quick_verdict_is_stable() {
    let result = run_figure3(&Figure3Config {
        traces: 250,
        executions_per_trace: 2,
        threads: 4,
        noise: quiet_probe(),
        ..Figure3Config::default()
    })
    .expect("figure3 runs");
    assert_eq!(
        (result.recovered, result.correct, result.success()),
        (0x2b, 0x2b, true),
        "figure3 verdict changed: peak {:.4}",
        result.peak()
    );
    assert!(!result.regions.is_empty(), "round-1 regions disappeared");
}

/// Figure 4 at 200 traces under the loaded-Linux environment: at this
/// scale the OS-noise attack has not converged (key recovery at scale
/// is asserted by `tests/attack_reproduction.rs` and the `figure4`
/// binary), so the snapshot pins the exact deterministic outcome — any
/// silent pipeline or environment-model change still flips it.
#[test]
fn figure4_quick_verdict_is_stable() {
    let result = run_figure4(&Figure4Config {
        traces: 200,
        executions_per_trace: 4,
        threads: 4,
        noise: quiet_probe(),
        ..Figure4Config::default()
    })
    .expect("figure4 runs");
    assert_eq!(
        (result.recovered, result.correct, result.success()),
        (0xf6, 0x7e, false),
        "figure4 verdict changed: peak {:.4}, confidence {:.3}",
        result.peak(),
        result.success_confidence
    );
    assert!(
        result.bare_metal_peak > result.peak(),
        "the OS environment must cost amplitude: bare {:.4} vs loaded {:.4}",
        result.bare_metal_peak,
        result.peak()
    );
}

/// The countermeasure suite at 120 traces: every verdict line — all
/// three targets × (HW CPA, HD CPA, TVLA) plus the two audit summaries
/// — pinned byte for byte.
#[test]
fn masked_quick_verdict_lines_are_stable() {
    let result = run_masked(&MaskedConfig {
        traces: 120,
        executions_per_trace: 2,
        threads: 4,
        audit_executions: 250,
        ablations: false,
        ..MaskedConfig::default()
    })
    .expect("masked suite runs");
    let expected = [
        "[unprotected] HW(SubBytes(pt[1] ^ k)): FAILURE (recovered 0xa7, true 0x7e, rank 64)",
        "[unprotected] HD(SubBytes stores 0 -> 1): FAILURE (recovered 0x41, true 0x7e, rank 131)",
        "[unprotected] TVLA fixed-vs-random: LEAKS",
        "[masked] HW(SubBytes(pt[1] ^ k)): FAILURE (recovered 0x19, true 0x7e, rank 136)",
        "[masked] HD(SubBytes stores 0 -> 1): FAILURE (recovered 0x3c, true 0x7e, rank 40)",
        "[masked] TVLA fixed-vs-random: clean",
        // The two masked+sched byte values moved when the scheduler
        // stopped counting control flow as share separation (it now
        // scrubs call boundaries too — the residual align-buffer hazard
        // `sca-lint` flagged); the verdicts themselves are unchanged.
        "[masked+sched] HW(SubBytes(pt[1] ^ k)): FAILURE (recovered 0x52, true 0x7e, rank 233)",
        "[masked+sched] HD(SubBytes stores 0 -> 1): FAILURE (recovered 0xcf, true 0x7e, rank 119)",
        "[masked+sched] TVLA fixed-vs-random: clean",
        "[masked] audit: 2 operand-path leak(s), 0 HW-model leak(s)",
        "[masked+sched] audit: 0 operand-path leak(s), 0 HW-model leak(s)",
    ];
    let lines = result.verdict_lines();
    assert_eq!(
        lines,
        expected,
        "masked verdict lines changed:\n{}",
        lines.join("\n")
    );

    // The acceptance-critical structure holds even at this scale (the
    // CPA ranks need the binary's larger campaigns, but the noise-free
    // audit does not): the masked-but-unscheduled target recombines the
    // shares on operand-bus/IS-EX nodes, the value-level HW model is
    // blind to the masked implementation, and the scheduler's scrubs
    // silence the recombination entirely.
    assert!(result.audit_masked.operand_path > 0);
    assert_eq!(result.audit_masked.hw_findings, 0);
    assert_eq!(
        (
            result.audit_scheduled.operand_path,
            result.audit_scheduled.memory_path,
            result.audit_scheduled.hw_findings
        ),
        (0, 0, 0)
    );
    assert!(result.harden.mem_scrubs > 0);
    // The closed TVLA caveat: the extended scrub scope (store+reload
    // pairs over SubBytes *and* ShiftRows, ALU scrub pairs for the mov
    // shuttle) leaves the scheduled target clean under fixed-vs-random
    // assessment.
    let sched = result.target("masked+sched");
    assert!(
        !sched.tvla_leaks,
        "masked+sched must assess TVLA-clean (max |t| {:.2})",
        sched.tvla_max_t
    );
}

/// The cipher portfolio at reduced scale: every verdict line — four
/// targets × (HW CPA, HD CPA, TVLA, two Table-2-style characterization
/// rows, audit) — pinned byte for byte, plus the acceptance-critical
/// structure: the microarchitecture-aware HD model recovers the key
/// byte (rank 0) for the two new, unprotected cipher families.
#[test]
fn portfolio_quick_verdict_lines_are_stable() {
    let result = run_portfolio(&PortfolioConfig {
        traces: 150,
        executions_per_trace: 2,
        threads: 4,
        charz_traces: 150,
        audit_executions: 200,
        noise: quiet_probe(),
        ..PortfolioConfig::default()
    })
    .expect("portfolio runs");
    let expected = [
        "[aes128] HW(SubBytes(pt[1] ^ k)): SUCCESS (recovered 0x7e, true 0x7e, rank 0)",
        "[aes128] HD(SubBytes stores 0 -> 1): SUCCESS (recovered 0x7e, true 0x7e, rank 0)",
        "[aes128] TVLA fixed-vs-random: LEAKS",
        "[aes128] charz HW(SubBytes(pt[1] ^ k)): RF=black ISEX=black SHIFT=black ALU=black \
         EXWB=black MDR=black ALIGN=black",
        "[aes128] charz HD(SubBytes stores 0 -> 1): RF=black ISEX=RED SHIFT=black ALU=black \
         EXWB=black MDR=black ALIGN=RED",
        "[aes128] audit: 2 operand-path leak(s), 1 memory-path leak(s)",
        "[aes128-masked] HW(SubBytes(pt[1] ^ k)): FAILURE (recovered 0x79, true 0x7e, rank 89)",
        "[aes128-masked] HD(SubBytes stores 0 -> 1): SUCCESS (recovered 0x7e, true 0x7e, rank 0)",
        "[aes128-masked] TVLA fixed-vs-random: LEAKS",
        "[aes128-masked] charz HW(SubBytes(pt[1] ^ k)): RF=black ISEX=black SHIFT=black \
         ALU=black EXWB=black MDR=black ALIGN=black",
        "[aes128-masked] charz HD(SubBytes stores 0 -> 1): RF=black ISEX=RED SHIFT=black \
         ALU=black EXWB=black MDR=black ALIGN=RED",
        "[aes128-masked] audit: 2 operand-path leak(s), 1 memory-path leak(s)",
        "[speck64128] HW(x26 commit byte 1): SUCCESS (recovered 0x3a, true 0x3a, rank 0)",
        "[speck64128] HD(x26 commit bytes 1 -> 2): SUCCESS (recovered 0x52, true 0x52, rank 0)",
        "[speck64128] TVLA fixed-vs-random: LEAKS",
        "[speck64128] charz HW(x26 commit byte 1): RF=black ISEX=RED SHIFT=black ALU=RED \
         EXWB=RED MDR=black ALIGN=black",
        "[speck64128] charz HD(x26 commit bytes 1 -> 2): RF=black ISEX=RED SHIFT=black \
         ALU=black EXWB=RED MDR=black ALIGN=RED",
        "[speck64128] audit: 17 operand-path leak(s), 1 memory-path leak(s)",
        "[present80] HW(sBoxLayer(pt[1] ^ k)): FAILURE (recovered 0x1c, true 0x7e, rank 42)",
        "[present80] HD(sBoxLayer stores 0 -> 1): SUCCESS (recovered 0x7e, true 0x7e, rank 0)",
        "[present80] TVLA fixed-vs-random: LEAKS",
        "[present80] charz HW(sBoxLayer(pt[1] ^ k)): RF=black ISEX=black SHIFT=black ALU=black \
         EXWB=black MDR=RED ALIGN=black",
        "[present80] charz HD(sBoxLayer stores 0 -> 1): RF=black ISEX=RED SHIFT=black \
         ALU=black EXWB=RED MDR=RED ALIGN=RED",
        "[present80] audit: 2 operand-path leak(s), 6 memory-path leak(s)",
    ];
    let lines = result.verdict_lines();
    assert_eq!(
        lines,
        expected,
        "portfolio verdict lines changed:\n{}",
        lines.join("\n")
    );

    for name in ["speck64128", "present80"] {
        let hd = result.target(name).cpa_for(ModelKind::TransitionHd);
        assert!(
            hd.success(),
            "[{name}] the HD model must recover the key byte: {}",
            hd.verdict()
        );
    }
}
