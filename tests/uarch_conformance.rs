//! Differential conformance: the pipeline simulator against the ISA's
//! architectural golden model.
//!
//! `tests/differential.rs` checks that microarchitectural configurations
//! agree with *each other*; this suite pins them all to an independent
//! oracle — the one-instruction-at-a-time [`Interp`] in `sca-isa`, which
//! shares only the pure semantics functions (`eval_dp`, `apply_shift`,
//! `eval_mul`) with the pipeline. Randomized straight-line programs (with
//! conditional execution, shifter operands, long multiplies and
//! load/store-multiple in the mix) must leave identical architectural
//! state on the `Cpu` under a matrix of `UarchConfig` ablations and on
//! the interpreter.

use proptest::prelude::*;

use superscalar_sca::isa::{
    AddrMode, Cond, DpOp, Insn, InsnKind, Interp, Operand2, Program, Reg, RegSet, ShiftAmount,
    ShiftKind,
};
use superscalar_sca::uarch::{Cpu, DualIssuePolicy, NullObserver, UarchConfig};

/// Scratch RAM used by generated memory instructions.
const SCRATCH: u32 = 0x4000;
/// Bytes of scratch compared after the run.
const SCRATCH_LEN: u32 = 64;
/// RAM size for both executors.
const MEM_SIZE: u32 = 1 << 16;

fn arb_reg() -> impl Strategy<Value = Reg> {
    // r0..r7 for data; r10 reserved as the memory base, r13-r15 excluded
    // so generated programs cannot branch or smash a stack.
    (0u8..8).prop_map(|i| Reg::from_index(i).expect("index < 8"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(vec![
        Cond::Al,
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Ge,
        Cond::Lt,
    ])
}

fn arb_dp_op() -> impl Strategy<Value = DpOp> {
    prop::sample::select(vec![
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Bic,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Mvn,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Tst,
        DpOp::Teq,
    ])
}

fn arb_operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (0u32..256).prop_map(Operand2::Imm),
        arb_reg().prop_map(Operand2::Reg),
        (
            arb_reg(),
            prop::sample::select(ShiftKind::ALL.to_vec()),
            0u8..32
        )
            .prop_map(|(rm, kind, amount)| Operand2::ShiftedReg {
                rm,
                kind,
                amount: ShiftAmount::Imm(amount)
            }),
        // Register-specified shift amounts exercise the third read port.
        (
            arb_reg(),
            prop::sample::select(ShiftKind::ALL.to_vec()),
            arb_reg()
        )
            .prop_map(|(rm, kind, rs)| Operand2::ShiftedReg {
                rm,
                kind,
                amount: ShiftAmount::Reg(rs)
            }),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let dp = (
        arb_dp_op(),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_operand2(),
        arb_cond(),
    )
        .prop_map(|(op, set_flags, rd, rn, op2, cond)| {
            Insn::new(InsnKind::Dp {
                op,
                set_flags: set_flags || op.is_compare(),
                rd: if op.is_compare() { None } else { Some(rd) },
                rn: if op.is_move() { None } else { Some(rn) },
                op2,
            })
            .with_cond(cond)
        });
    let mul = (arb_reg(), arb_reg(), arb_reg(), arb_cond())
        .prop_map(|(rd, rm, rs, cond)| Insn::mul(rd, rm, rs).with_cond(cond));
    let mla = (arb_reg(), arb_reg(), arb_reg(), arb_reg())
        .prop_map(|(rd, rm, rs, ra)| Insn::mla(rd, rm, rs, ra));
    let mull = (arb_reg(), arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_map(
        |(lo, hi, rm, rs, signed)| {
            // umull/smull require distinct destination registers.
            let hi = if hi == lo {
                Reg::from_index((hi.index() as u8 + 1) % 8).expect("index < 8")
            } else {
                hi
            };
            if signed {
                Insn::smull(lo, hi, rm, rs)
            } else {
                Insn::umull(lo, hi, rm, rs)
            }
        },
    );
    // Loads/stores inside the scratch window via r10 + small immediate.
    let mem = (any::<bool>(), 0u8..3, arb_reg(), 0i32..60, arb_cond()).prop_map(
        |(load, size, rd, off, cond)| {
            let addr = AddrMode::imm_offset(Reg::R10, off).expect("small offset");
            let insn = match (load, size) {
                (true, 0) => Insn::ldr(rd, addr),
                (true, 1) => Insn::ldrb(rd, addr),
                (true, _) => Insn::ldrh(rd, addr),
                (false, 0) => Insn::str(rd, addr),
                (false, 1) => Insn::strb(rd, addr),
                (false, _) => Insn::strh(rd, addr),
            };
            insn.with_cond(cond)
        },
    );
    // Multi-transfers over the scratch window (no writeback: r10 stays
    // the shared base).
    let multi = (any::<bool>(), prop::collection::vec(arb_reg(), 1..4)).prop_map(|(load, regs)| {
        let set: RegSet = regs.into_iter().collect();
        if load {
            Insn::ldmia(Reg::R10, false, set)
        } else {
            Insn::new(InsnKind::MemMulti {
                dir: superscalar_sca::isa::MemDir::Store,
                base: Reg::R10,
                writeback: false,
                regs: set,
                mode: superscalar_sca::isa::MemMultiMode::Ia,
            })
        }
    });
    let misc = prop_oneof![Just(Insn::nop())];
    prop_oneof![6 => dp, 1 => mul, 1 => mla, 1 => mull, 3 => mem, 1 => multi, 1 => misc]
}

fn arb_program() -> impl Strategy<Value = Vec<Insn>> {
    prop::collection::vec(arb_insn(), 1..60)
}

#[derive(Debug, PartialEq)]
struct ArchState {
    regs: Vec<u32>,
    flags: superscalar_sca::isa::Flags,
    scratch: Vec<u8>,
}

fn seed_reg(seed: u64, i: u8) -> u32 {
    (seed as u32)
        .wrapping_mul(2654435761)
        .wrapping_add(u32::from(i) * 97)
}

fn build(insns: &[Insn]) -> Program {
    let mut body = insns.to_vec();
    body.push(Insn::halt());
    Program::from_insns(0, &body).expect("encodes")
}

fn run_on_cpu(program: &Program, mut config: UarchConfig, seed: u64) -> ArchState {
    config.mem_size = MEM_SIZE;
    let mut cpu = Cpu::new(config);
    cpu.load(program).expect("loads");
    for i in 0..8u8 {
        cpu.set_reg(Reg::from_index(i).expect("reg"), seed_reg(seed, i));
    }
    cpu.set_reg(Reg::R10, SCRATCH);
    cpu.run(&mut NullObserver).expect("runs");
    ArchState {
        regs: (0..13u8)
            .map(|i| cpu.reg(Reg::from_index(i).expect("reg")))
            .collect(),
        flags: cpu.flags(),
        scratch: cpu
            .mem()
            .read_bytes(SCRATCH, SCRATCH_LEN)
            .expect("scratch")
            .to_vec(),
    }
}

fn run_on_interp(program: &Program, seed: u64) -> ArchState {
    let mut interp = Interp::new(MEM_SIZE);
    interp.load(program).expect("loads");
    for i in 0..8u8 {
        interp.set_reg(Reg::from_index(i).expect("reg"), seed_reg(seed, i));
    }
    interp.set_reg(Reg::R10, SCRATCH);
    interp.run(1_000_000).expect("halts");
    ArchState {
        regs: (0..13u8)
            .map(|i| interp.reg(Reg::from_index(i).expect("reg")))
            .collect(),
        flags: interp.flags(),
        scratch: interp
            .read_bytes(SCRATCH, SCRATCH_LEN)
            .expect("scratch")
            .to_vec(),
    }
}

/// The ablation matrix: every microarchitectural variant the experiments
/// toggle must remain architecturally equivalent to the golden model.
fn ablations() -> Vec<(&'static str, UarchConfig)> {
    let a7 = UarchConfig::cortex_a7;
    let mut quiet = a7().with_ideal_memory();
    quiet.nop_zeroes_wb = false;
    quiet.nop_drives_operand_buses = false;
    quiet.align_buffer = false;
    let mut no_fwd = a7().with_ideal_memory();
    no_fwd.forwarding = false;
    let mut aggressive = a7().with_ideal_memory();
    aggressive.policy = DualIssuePolicy::structural_only();
    vec![
        ("cortex_a7 ideal", a7().with_ideal_memory()),
        ("cortex_a7 cached", a7()),
        ("scalar", UarchConfig::scalar().with_ideal_memory()),
        ("scalar cached", UarchConfig::scalar()),
        ("no forwarding", no_fwd),
        ("structural-only policy", aggressive),
        ("quiet leakage knobs", quiet),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pipeline_conforms_to_the_golden_model(insns in arb_program(), seed in any::<u64>()) {
        let program = build(&insns);
        let golden = run_on_interp(&program, seed);
        for (name, config) in ablations() {
            let state = run_on_cpu(&program, config, seed);
            prop_assert_eq!(
                &state, &golden,
                "uarch '{}' diverged from the ISA interpreter", name
            );
        }
    }
}

/// A deterministic corner-case battery (kept out of proptest so failures
/// name the kernel): flag chains through conditional execution, shifted
/// stores, multi-transfers and long multiplies.
#[test]
fn handwritten_kernels_conform() {
    use superscalar_sca::isa::assemble;
    let kernels = [
        "
            mov r0, #0
            subs r1, r0, #1     ; borrow clears C
            sbc r2, r1, #2
            adcs r3, r2, r2
            movmi r4, #0x80
            halt
        ",
        "
            mov r10, #0x4000
            mov r0, #0xff
            strb r0, [r10, #3]
            ldr r1, [r10]
            mov r2, r1, lsr #24
            strh r2, [r10, #4]
            ldmia r10, {r3, r4}
            halt
        ",
        "
            mvn r0, #0
            mov r1, #7
            smull r2, r3, r0, r1
            umull r4, r5, r0, r1
            muls r6, r0, r1
            halt
        ",
        "
            mov r10, #0x4000
            mov r0, #1
            mov r1, #2
            stmia r10, {r0, r1}
            ldrsh0: ldrh r2, [r10, #1]  ; unaligned halfword aligns down
            ldr r3, [r10, #2]           ; unaligned word aligns down
            halt
        ",
    ];
    for (k, src) in kernels.iter().enumerate() {
        let program = assemble(src).expect("assembles");
        let mut interp = Interp::new(MEM_SIZE);
        interp.load(&program).expect("loads");
        interp.run(10_000).expect("halts");
        for (name, mut config) in ablations() {
            config.mem_size = MEM_SIZE;
            let mut cpu = Cpu::new(config);
            cpu.load(&program).expect("loads");
            cpu.run(&mut NullObserver).expect("runs");
            for i in 0..13u8 {
                let reg = Reg::from_index(i).expect("reg");
                assert_eq!(
                    cpu.reg(reg),
                    interp.reg(reg),
                    "kernel {k}, uarch '{name}', {reg}"
                );
            }
            assert_eq!(cpu.flags(), interp.flags(), "kernel {k}, uarch '{name}'");
        }
    }
}
