//! The telemetry determinism contract: *work counters* — traces
//! planned/simulated, simulator runs, per-level cache accesses and
//! misses, store slots and checkpoint bytes — are a pure function of
//! the campaign, independent of how the work was scheduled. Running
//! the same campaign with 1 or 4 threads and with scalar or 8-wide
//! lockstep simulation must move every one of them by exactly the
//! same amount.
//!
//! Observability counters (batch counts, lockstep/scalar split, page
//! pool statistics) deliberately *do* depend on scheduling and are
//! excluded here.
//!
//! Both tests read deltas of the process-global registry, so they
//! serialize on [`COUNTER_LOCK`]: two campaigns running concurrently
//! would blend their counter movements.

use std::sync::Mutex;

use proptest::prelude::*;

use superscalar_sca::analysis::{hw8, FnSelection};
use superscalar_sca::campaign::{Campaign, CampaignConfig, CpaSink, StoreOptions};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::{GaussianNoise, LeakageWeights, SamplingConfig};
use superscalar_sca::telemetry::{self, Snapshot};
use superscalar_sca::uarch::{Cpu, UarchConfig};

/// Serializes global-counter delta measurements across tests.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// The work-counter allowlist: every name here must move identically
/// whatever the thread and lane counts. `campaign/batches`,
/// `campaign/lockstep_traces`, `campaign/scalar_traces`,
/// `campaign/blocks_poisoned` and the `store/page_*` family are
/// scheduling-dependent by design and absent deliberately.
const WORK_COUNTERS: &[&str] = &[
    "campaign/traces_planned",
    "campaign/traces_simulated",
    "power/simulator_runs",
    "uarch/l1i/accesses",
    "uarch/l1i/misses",
    "uarch/l1d/accesses",
    "uarch/l1d/misses",
    "uarch/l2/accesses",
    "uarch/l2/misses",
    "store/slots_written",
    "store/checkpoint_bytes",
];

/// The campaign-determinism kernel, but on the *real* memory hierarchy
/// (caches enabled) so the `uarch/*` counters move: one staged load in
/// a trigger window. The template is warmed with one execution first —
/// the paper's steady-state methodology — so every trace runs from the
/// same cache state whether it executes on the reused scalar CPU or on
/// a freshly seeded lockstep lane. (A cold template would charge the
/// compulsory misses once per scalar arena but once per lane per
/// block, which is scheduling, not work.)
fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        trig #0
        halt
    ",
    )
    .expect("fixture assembles");
    let mut cpu = Cpu::new(UarchConfig::cortex_a7());
    cpu.load(&program).expect("fixture loads");
    cpu.set_reg(Reg::R10, 0x800);
    cpu.run(&mut superscalar_sca::uarch::NullObserver)
        .expect("warm-up run");
    (cpu, program.entry())
}

fn generate(rng: &mut rand::rngs::StdRng, _index: usize) -> Vec<u8> {
    use rand::Rng;
    rng.gen::<u32>().to_le_bytes().to_vec()
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut()
        .write_u32(0x800, word)
        .expect("scratch mapped");
}

fn config(seed: u64, traces: usize, threads: usize) -> CampaignConfig {
    CampaignConfig {
        traces,
        executions_per_trace: 2,
        sampling: SamplingConfig::per_cycle(),
        noise: GaussianNoise {
            sd: 0.5,
            baseline: 1.0,
        },
        seed,
        threads,
        batch: 8,
    }
}

fn sink(samples: usize) -> CpaSink<FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync>> {
    CpaSink::new(
        FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
            f64::from(hw8(input[0] ^ k))
        }),
        256,
        samples,
    )
}

/// The allowlisted counter movements caused by `run`.
fn deltas(run: impl FnOnce()) -> Vec<(&'static str, u64)> {
    let before = telemetry::global().snapshot();
    run();
    let after: Snapshot = telemetry::global().snapshot();
    WORK_COUNTERS
        .iter()
        .map(|name| (*name, after.counter_delta(&before, name)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Property: for any seed and campaign size, the work-counter
    /// deltas of `--threads {1,4} x --lanes {1,8}` are element-wise
    /// identical, and the campaign actually did the work it planned.
    #[test]
    fn work_counters_are_thread_and_lane_invariant(
        seed in 0u64..1_000_000,
        traces in 24usize..64,
    ) {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (cpu, entry) = fixture();
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            for lanes in [1usize, 8] {
                let moved = deltas(|| {
                    Campaign::new(LeakageWeights::cortex_a7(), config(seed, traces, threads))
                        .with_lanes(lanes)
                        .run(&cpu, entry, generate, stage, sink)
                        .expect("campaign runs");
                });
                runs.push((threads, lanes, moved));
            }
        }
        let (_, _, reference) = &runs[0];
        // The campaign did what it planned: all traces simulated, the
        // probe plus two executions per trace through the simulator,
        // and the load kernel touched the data cache.
        let get = |name: &str| {
            reference.iter().find(|(n, _)| *n == name).expect("allowlisted").1
        };
        prop_assert_eq!(get("campaign/traces_planned"), traces as u64);
        prop_assert_eq!(get("campaign/traces_simulated"), traces as u64);
        prop_assert_eq!(get("power/simulator_runs"), 1 + 2 * traces as u64);
        prop_assert!(get("uarch/l1d/accesses") > 0, "load kernel must hit L1D");
        prop_assert!(get("uarch/l1i/accesses") > 0, "fetch must hit L1I");
        for (threads, lanes, moved) in &runs[1..] {
            prop_assert_eq!(
                reference, moved,
                "threads {} lanes {} moved different work counters", threads, lanes
            );
        }
    }
}

/// The same invariance through the persistent-store path: a stored
/// campaign writes the same slots and checkpoint bytes no matter how
/// it was scheduled. (Fsync and page-pool counts are scheduling- and
/// cache-pressure-dependent, so they stay off the allowlist.)
#[test]
fn stored_campaigns_write_identical_work_counters() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (cpu, entry) = fixture();
    let base = std::env::temp_dir().join(format!("sca_telemetry_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut reference: Option<Vec<(&'static str, u64)>> = None;
    for (threads, lanes) in [(1usize, 1usize), (4, 8)] {
        let dir = base.join(format!("t{threads}l{lanes}"));
        let opts = StoreOptions {
            checkpoint_every: 16,
            ..StoreOptions::new(&dir, "telemetry-fixture", "hw-cpa")
        };
        let moved = deltas(|| {
            Campaign::new(LeakageWeights::cortex_a7(), config(7, 48, threads))
                .with_lanes(lanes)
                .run_stored(&cpu, entry, generate, stage, sink, &opts)
                .expect("stored campaign runs");
        });
        let slots = moved
            .iter()
            .find(|(n, _)| *n == "store/slots_written")
            .expect("allowlisted")
            .1;
        assert_eq!(
            slots, 48,
            "threads {threads} lanes {lanes}: one slot per trace"
        );
        match &reference {
            None => reference = Some(moved),
            Some(reference) => assert_eq!(
                reference, &moved,
                "threads {threads} lanes {lanes} moved different work counters"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
