//! Lockstep conformance: a `CpuBlock` stepping N traces together must
//! be **byte-identical** to N independent scalar `Cpu` runs — per
//! target, per lane count, at the synthesis layer and through the full
//! campaign engine.
//!
//! This is the harness that makes the lockstep fast path safe to leave
//! on by default: the block shares one pipeline walk across lanes, so
//! any divergence it fails to detect (or any per-lane event it emits in
//! the wrong order) would silently corrupt every downstream statistic.
//! Here every portfolio target — AES-128, masked AES, SPECK64/128,
//! PRESENT-80 — runs at N ∈ {1, 2, 5, 8} against the scalar reference,
//! and the traces are compared bit-for-bit, not to an epsilon.

use rand::rngs::StdRng;

use sca_target::{characterize_target, portfolio, TargetCampaignConfig};
use superscalar_sca::campaign::{Campaign, CampaignConfig, Mergeable};
use superscalar_sca::power::{
    AcquisitionConfig, BlockPowerRecorder, GaussianNoise, PowerRecorder, SamplingConfig,
    SynthScratch, TraceSynthesizer,
};
use superscalar_sca::uarch::{Cpu, CpuBlock, UarchConfig};

const LANE_COUNTS: [usize; 4] = [1, 2, 5, 8];

fn synthesizer(seed: u64) -> TraceSynthesizer {
    TraceSynthesizer::new(
        superscalar_sca::power::LeakageWeights::cortex_a7(),
        AcquisitionConfig {
            traces: 16,
            executions_per_trace: 2,
            sampling: SamplingConfig::picoscope_500msps_120mhz(),
            noise: GaussianNoise::bare_metal(),
            seed,
            threads: 1,
        },
    )
}

/// The direct differential: `synth_block_into` at every lane count vs
/// one `synth_into` per index, for every portfolio target — identical
/// inputs and bit-identical f32 traces, from a nonzero base index so
/// lane→index mapping is exercised too.
#[test]
fn block_synthesis_matches_scalar_per_target_and_lane_count() {
    let uarch = UarchConfig::cortex_a7();
    for target in &portfolio() {
        let target = target.as_ref();
        let template = target.build(&uarch).expect("target builds");
        let entry = target.program().entry();
        let synth = synthesizer(0x010c_45e7 ^ target.name().len() as u64);
        let generate = |rng: &mut StdRng, index: usize| target.generate(rng, index);
        let stage = |cpu: &mut Cpu, input: &[u8]| target.stage(cpu, input);
        let post = |_: &mut StdRng, _: &mut Vec<f64>| {};

        for lanes in LANE_COUNTS {
            let base = 3; // nonzero: lane l must map to trace base + l
                          // Scalar reference: one self-contained synthesis per index.
            let mut scalar_cpu = template.clone();
            let mut recorder = PowerRecorder::new(synth.weights().clone());
            let mut scratch = SynthScratch::new();
            let mut want: Vec<(Vec<f32>, Vec<u8>)> = Vec::new();
            for index in base..base + lanes {
                let mut trace = Vec::new();
                let input = synth
                    .synth_into(
                        &mut scalar_cpu,
                        &mut recorder,
                        &mut scratch,
                        &mut trace,
                        entry,
                        index,
                        None,
                        &generate,
                        &stage,
                        &post,
                    )
                    .expect("scalar synthesis runs");
                want.push((trace, input));
            }

            // Lockstep: all lanes in one pipeline walk.
            let mut block = CpuBlock::from_template(&template, lanes);
            let mut block_recorder = BlockPowerRecorder::new(synth.weights().clone(), lanes);
            let mut scratches = vec![SynthScratch::new(); lanes];
            let mut traces = vec![Vec::new(); lanes];
            let inputs = synth
                .synth_block_into(
                    &mut block,
                    &mut block_recorder,
                    &mut scratches,
                    &mut traces,
                    entry,
                    base,
                    lanes,
                    None,
                    &generate,
                    &stage,
                    &post,
                )
                .unwrap_or_else(|| {
                    panic!("[{}] lanes {lanes}: unexpected divergence", target.name())
                });

            for l in 0..lanes {
                assert_eq!(
                    inputs[l],
                    want[l].1,
                    "[{}] lanes {lanes} lane {l}: input",
                    target.name()
                );
                assert_eq!(
                    traces[l].len(),
                    want[l].0.len(),
                    "[{}] lanes {lanes} lane {l}: trace length",
                    target.name()
                );
                for (s, (a, b)) in traces[l].iter().zip(&want[l].0).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "[{}] lanes {lanes} lane {l} sample {s}",
                        target.name()
                    );
                }
            }
        }
    }
}

/// A sink that materializes every (input, windowed trace) it absorbs,
/// in index order — the campaign-level fingerprint.
#[derive(Debug, Default)]
struct CollectSink {
    inputs: Vec<Vec<u8>>,
    flat: Vec<f32>,
}

impl Mergeable for CollectSink {
    fn merge(&mut self, other: CollectSink) {
        self.inputs.extend(other.inputs);
        self.flat.extend(other.flat);
    }
}

impl superscalar_sca::campaign::CampaignSink for CollectSink {
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], _samples: usize) {
        self.inputs.extend(inputs.iter().cloned());
        self.flat.extend_from_slice(traces);
    }
}

/// End-to-end through the campaign engine: every trace the engine
/// delivers to its sinks is bit-identical at every lane count — across
/// group-boundary remainders (traces % lanes ≠ 0), batch chunking and
/// the clipped-window path, for a representative target.
#[test]
fn campaign_results_are_lane_count_invariant() {
    let targets = portfolio();
    let target = targets
        .iter()
        .find(|t| t.name() == "speck64128")
        .expect("portfolio registers speck64128")
        .as_ref();
    let uarch = UarchConfig::cortex_a7();
    let template = target.build(&uarch).expect("target builds");
    let entry = target.program().entry();

    let run = |lanes: usize| -> CollectSink {
        let campaign = Campaign::new(
            superscalar_sca::power::LeakageWeights::cortex_a7(),
            CampaignConfig {
                traces: 21, // deliberately not a multiple of any lane count
                executions_per_trace: 2,
                sampling: SamplingConfig::picoscope_500msps_120mhz(),
                noise: GaussianNoise::bare_metal(),
                seed: 0xb10c,
                threads: 2,
                batch: 6,
            },
        )
        .with_lanes(lanes)
        .with_window(2, 40);
        campaign
            .run(
                &template,
                entry,
                |rng: &mut StdRng, index| target.generate(rng, index),
                |cpu: &mut Cpu, input: &[u8]| target.stage(cpu, input),
                |_| CollectSink::default(),
            )
            .expect("campaign runs")
    };

    let reference = run(1);
    assert_eq!(reference.inputs.len(), 21);
    for lanes in [2, 5, 8] {
        let got = run(lanes);
        assert_eq!(got.inputs, reference.inputs, "lanes {lanes}: inputs");
        assert_eq!(got.flat.len(), reference.flat.len(), "lanes {lanes}: size");
        for (i, (a, b)) in got.flat.iter().zip(&reference.flat).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "lanes {lanes} flat sample {i}");
        }
    }
}

/// The per-component characterization rides the same lockstep block
/// (`charz_block_group` + `BlockComponentPowerRecorder`): every
/// `(model, component)` peak correlation must be bit-identical at every
/// lane count, for every portfolio target — including the trailing
/// partial group (traces % lanes != 0) and the threaded shard split.
#[test]
fn characterization_is_lane_count_invariant() {
    let uarch = UarchConfig::cortex_a7();
    for target in &portfolio() {
        let target = target.as_ref();
        let template = target.build(&uarch).expect("target builds");
        let models = target.models();

        let run = |lanes: usize| {
            let config = TargetCampaignConfig {
                traces: 19, // not a multiple of any lane count
                executions_per_trace: 2,
                seed: 0xc4a7_2e11,
                threads: 2,
                batch: 6,
                lanes,
                noise: GaussianNoise::bare_metal(),
            };
            characterize_target(target, &template, &models, &config, 0.995)
                .expect("characterization runs")
        };

        let reference = run(1);
        for lanes in [2, 5, 8] {
            let got = run(lanes);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.model, r.model);
                for (gc, rc) in g.cells.iter().zip(&r.cells) {
                    assert_eq!(
                        gc.peak_corr.to_bits(),
                        rc.peak_corr.to_bits(),
                        "[{}] lanes {lanes} model {} component {:?}",
                        target.name(),
                        g.model,
                        gc.component
                    );
                    assert_eq!(gc.significant, rc.significant);
                }
            }
        }
    }
}
