//! End-to-end test of the multi-tenant campaign service.
//!
//! `sca_power::simulator_runs` counts every pipeline execution in the
//! process, and the counter is process-global — so this file holds
//! exactly ONE test (one test per integration binary = one process =
//! exact counts; same rule as `tests/store_reanalyze.rs`).
//!
//! The single test walks the service's whole contract in order:
//!
//! 1. run the one-shot portfolio to capture the ground-truth verdict
//!    lines for the specs the clients will submit;
//! 2. measure the simulator cost of one aes128 campaign and one
//!    speck64128 campaign at the same shape (solo submissions with a
//!    different seed);
//! 3. submit the same specs from N concurrent clients — three
//!    *duplicates* of the aes spec plus one *distinct* speck spec — and
//!    assert the batch's simulator delta equals exactly one aes
//!    campaign plus one speck campaign: coalescing provably ran the
//!    simulator once for the three identical submissions;
//! 4. assert every client's final verdict is byte-identical to the
//!    one-shot portfolio's line for its spec;
//! 5. restart the service on the same corpus root (twice, at different
//!    worker counts) and resubmit: zero simulator delta — the verdicts
//!    are served entirely from the store — with byte-identical
//!    transcripts across worker counts.

use sca_bench::{run_portfolio, PortfolioConfig};
use superscalar_sca::power::{simulator_runs, GaussianNoise};
use superscalar_sca::server::{ServerConfig, ServerHarness};
use superscalar_sca::target::ModelKind;

/// The same quiet probe chain as `tests/verdict_regression.rs`: low
/// noise so 150 traces resolve the verdicts in debug builds.
fn quiet_probe() -> GaussianNoise {
    GaussianNoise {
        sd: 2.0,
        baseline: 30.0,
    }
}

/// The wire line for the canonical quick spec against `target`, from
/// `tenant`, with `seed` — 150 traces, 2 executions, quiet probe; the
/// shape the portfolio ground truth below is captured at.
fn spec_line(tenant: &str, target: &str, seed: u64) -> String {
    format!(
        "submit tenant={tenant} target={target} analysis=hw traces=150 \
         executions=2 seed={seed:#x} noise-sd=2.0 noise-baseline=30.0"
    )
}

const MASTER_SEED: u64 = 0xdac_2018;
/// A seed the duplicates never use, for the cost-calibration solos.
const SOLO_SEED: u64 = 0x5eed_0001;

#[test]
fn concurrent_clients_coalesce_and_match_the_one_shot_portfolio() {
    assert_eq!(simulator_runs(), 0, "fresh process");
    let root = std::env::temp_dir().join(format!("sca-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Ground truth: the one-shot portfolio at the exact spec shape the
    // clients will submit. Its per-target campaign seed is
    // `MASTER_SEED ^ (salt << 24)` — the server applies the same salt,
    // which is what makes the lines comparable byte-for-byte.
    let portfolio = run_portfolio(&PortfolioConfig {
        traces: 150,
        executions_per_trace: 2,
        threads: 4,
        noise: quiet_probe(),
        charz_traces: 100,
        audit_executions: 100,
        ..PortfolioConfig::default()
    })
    .expect("one-shot portfolio runs");
    let expected_aes = format!(
        "[aes128] {}",
        portfolio
            .target("aes128")
            .cpa_for(ModelKind::ValueHw)
            .verdict()
    );
    let expected_speck = format!(
        "[speck64128] {}",
        portfolio
            .target("speck64128")
            .cpa_for(ModelKind::ValueHw)
            .verdict()
    );

    let mut harness = ServerHarness::new(ServerConfig::new(&root));

    // Simulator cost of one campaign per target shape, measured on solo
    // submissions with a seed the duplicates never use. The invocation
    // count is a pure function of the spec's shape (traces, executions,
    // target), not of the seed, so these calibrate the dedup assertion.
    let calib = harness.client("calibration");
    let before = simulator_runs();
    harness.submit_line(calib, &spec_line("calibration", "aes128", SOLO_SEED));
    harness.step();
    let aes_cost = simulator_runs() - before;
    assert!(aes_cost > 0, "a campaign must simulate");
    let before = simulator_runs();
    harness.submit_line(calib, &spec_line("calibration", "speck64128", SOLO_SEED));
    harness.step();
    let speck_cost = simulator_runs() - before;
    assert!(speck_cost > 0, "a campaign must simulate");

    // N concurrent clients: three tenants submit the *identical* aes
    // spec, a fourth submits a distinct speck spec. All four are queued
    // before the dispatcher runs, exactly as a busy socket would
    // deliver them.
    let (a, b, c) = (
        harness.client("ci-a"),
        harness.client("ci-b"),
        harness.client("ci-c"),
    );
    let d = harness.client("dev");
    let before = simulator_runs();
    harness.submit_line(a, &spec_line("ci-a", "aes128", MASTER_SEED));
    harness.submit_line(b, &spec_line("ci-b", "aes128", MASTER_SEED));
    harness.submit_line(c, &spec_line("ci-c", "aes128", MASTER_SEED));
    harness.submit_line(d, &spec_line("dev", "speck64128", MASTER_SEED));
    harness.step();
    let batch_cost = simulator_runs() - before;

    // THE dedup assertion: three identical submissions plus one
    // distinct one cost exactly one aes campaign plus one speck
    // campaign — the coalesced spec ran the simulator once.
    assert_eq!(
        batch_cost,
        aes_cost + speck_cost,
        "coalesced submissions re-simulated"
    );
    let stats = harness.stats();
    assert_eq!(stats.submitted, 6, "2 calibration + 4 batch");
    assert_eq!(stats.coalesced, 2, "b and c coalesced onto a's job");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.store_served, 0, "nothing restored yet");

    // Byte-identity with the one-shot portfolio, for every subscriber.
    for session in [a, b, c] {
        assert_eq!(
            harness.final_verdicts(session),
            vec![expected_aes.clone()],
            "session {}",
            harness.session_name(session)
        );
    }
    assert_eq!(harness.final_verdicts(d), vec![expected_speck.clone()]);

    // Streaming: each duplicate subscriber saw the same incremental
    // trajectory — one progress line per 64-trace checkpoint slice,
    // with rank and disclosure fields, before the final verdict.
    let transcript = harness.transcript(a).join("\n");
    for marker in ["traces=64/150", "traces=128/150", "traces=150/150"] {
        assert!(
            transcript.contains(marker),
            "missing {marker}:\n{transcript}"
        );
    }
    assert!(transcript.contains(" rank="), "{transcript}");
    assert!(transcript.contains(" disclosure="), "{transcript}");

    // Restart on the same corpus root at two different worker counts:
    // resubmissions are served entirely from the store (zero simulator
    // delta), and the transcripts are byte-identical across worker
    // counts — scheduling, slicing and verdicts are all deterministic.
    drop(harness);
    let mut replays = Vec::new();
    for workers in [1usize, 4] {
        let mut config = ServerConfig::new(&root);
        config.workers = workers;
        let mut replay = ServerHarness::new(config);
        let ra = replay.client("replay-a");
        let rb = replay.client("replay-b");
        let before = simulator_runs();
        replay.submit_line(ra, &spec_line("replay-a", "aes128", MASTER_SEED));
        replay.submit_line(rb, &spec_line("replay-b", "speck64128", MASTER_SEED));
        replay.step();
        assert_eq!(
            simulator_runs(),
            before,
            "store-served replay simulated at {workers} workers"
        );
        assert_eq!(replay.final_verdicts(ra), vec![expected_aes.clone()]);
        assert_eq!(replay.final_verdicts(rb), vec![expected_speck.clone()]);
        let stats = replay.stats();
        assert_eq!(stats.store_served, 2, "both replays restore");
        assert_eq!(stats.completed, 2);
        replays.push((
            replay.transcript(ra).to_vec(),
            replay.transcript(rb).to_vec(),
        ));
    }
    assert_eq!(
        replays[0], replays[1],
        "replay transcripts differ across worker counts"
    );

    let _ = std::fs::remove_dir_all(&root);
}
