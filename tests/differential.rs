//! Differential property tests: microarchitecture must never change
//! architecture.
//!
//! Random programs run on the dual-issue Cortex-A7 model, the scalar
//! model, and a permissive structural-only policy must produce identical
//! final register/flag/memory state — the paper's whole premise is that
//! the *semantically equivalent* execution models differ only in
//! side-channel behaviour.

use proptest::prelude::*;

use superscalar_sca::isa::{
    AddrMode, DpOp, Insn, InsnKind, Operand2, Program, Reg, ShiftAmount, ShiftKind,
};
use superscalar_sca::uarch::{Cpu, DualIssuePolicy, NullObserver, UarchConfig};

/// Scratch RAM used by generated memory instructions.
const SCRATCH: u32 = 0x4000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    // r0..r7 for data; r10 reserved as memory base, r13-15 excluded so
    // generated programs cannot branch or smash a stack.
    (0u8..8).prop_map(|i| Reg::from_index(i).expect("index < 8"))
}

fn arb_dp_op() -> impl Strategy<Value = DpOp> {
    prop::sample::select(vec![
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Bic,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Mvn,
        DpOp::Cmp,
        DpOp::Tst,
    ])
}

fn arb_operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (0u32..256).prop_map(Operand2::Imm),
        arb_reg().prop_map(Operand2::Reg),
        (
            arb_reg(),
            prop::sample::select(ShiftKind::ALL.to_vec()),
            0u8..32
        )
            .prop_map(|(rm, kind, amount)| Operand2::ShiftedReg {
                rm,
                kind,
                amount: ShiftAmount::Imm(amount)
            }),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let dp = (
        arb_dp_op(),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_operand2(),
    )
        .prop_map(|(op, set_flags, rd, rn, op2)| {
            Insn::new(InsnKind::Dp {
                op,
                set_flags: set_flags || op.is_compare(),
                rd: if op.is_compare() { None } else { Some(rd) },
                rn: if op.is_move() { None } else { Some(rn) },
                op2,
            })
        });
    let mul = (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rm, rs)| Insn::mul(rd, rm, rs));
    // Loads/stores inside a 64-byte scratch window via r10 + small imm.
    let mem = (any::<bool>(), 0u8..3, arb_reg(), 0i32..60).prop_map(|(load, size, rd, off)| {
        let addr = AddrMode::imm_offset(Reg::R10, off).expect("small offset");
        match (load, size) {
            (true, 0) => Insn::ldr(rd, addr),
            (true, 1) => Insn::ldrb(rd, addr),
            (true, _) => Insn::ldrh(rd, addr),
            (false, 0) => Insn::str(rd, addr),
            (false, 1) => Insn::strb(rd, addr),
            (false, _) => Insn::strh(rd, addr),
        }
    });
    let misc = prop_oneof![Just(Insn::nop())];
    prop_oneof![6 => dp, 1 => mul, 3 => mem, 1 => misc]
}

fn arb_program() -> impl Strategy<Value = Vec<Insn>> {
    prop::collection::vec(arb_insn(), 1..60)
}

#[derive(Debug, PartialEq)]
struct ArchState {
    regs: Vec<u32>,
    flags: sca_isa::Flags,
    scratch: Vec<u8>,
}

fn run_on(insns: &[Insn], config: UarchConfig, seed: u64) -> ArchState {
    let mut body = insns.to_vec();
    body.push(Insn::halt());
    let program = Program::from_insns(0, &body).expect("encodes");
    let mut cpu = Cpu::new(config);
    cpu.load(&program).expect("loads");
    // Deterministic pseudo-random initial register values.
    for i in 0..8u8 {
        let reg = Reg::from_index(i).expect("reg");
        cpu.set_reg(
            reg,
            (seed as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(u32::from(i) * 97),
        );
    }
    cpu.set_reg(Reg::R10, SCRATCH);
    cpu.run(&mut NullObserver).expect("runs");
    ArchState {
        regs: (0..13u8)
            .map(|i| cpu.reg(Reg::from_index(i).expect("reg")))
            .collect(),
        flags: cpu.flags(),
        scratch: cpu.mem().read_bytes(SCRATCH, 64).expect("scratch").to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dual_issue_never_changes_architecture(insns in arb_program(), seed in any::<u64>()) {
        let a7 = run_on(&insns, UarchConfig::cortex_a7().with_ideal_memory(), seed);
        let scalar = run_on(&insns, UarchConfig::scalar().with_ideal_memory(), seed);
        prop_assert_eq!(&a7, &scalar);
    }

    #[test]
    fn aggressive_policy_never_changes_architecture(insns in arb_program(), seed in any::<u64>()) {
        let a7 = run_on(&insns, UarchConfig::cortex_a7().with_ideal_memory(), seed);
        let mut aggressive = UarchConfig::cortex_a7().with_ideal_memory();
        aggressive.policy = DualIssuePolicy::structural_only();
        let permissive = run_on(&insns, aggressive, seed);
        prop_assert_eq!(&a7, &permissive);
    }

    #[test]
    fn caches_never_change_architecture(insns in arb_program(), seed in any::<u64>()) {
        let ideal = run_on(&insns, UarchConfig::cortex_a7().with_ideal_memory(), seed);
        let cached = run_on(&insns, UarchConfig::cortex_a7(), seed);
        prop_assert_eq!(&ideal, &cached);
    }

    #[test]
    fn leakage_knobs_never_change_architecture(insns in arb_program(), seed in any::<u64>()) {
        let a7 = run_on(&insns, UarchConfig::cortex_a7().with_ideal_memory(), seed);
        let mut quiet = UarchConfig::cortex_a7().with_ideal_memory();
        quiet.nop_zeroes_wb = false;
        quiet.nop_drives_operand_buses = false;
        quiet.align_buffer = false;
        let quiet_state = run_on(&insns, quiet, seed);
        prop_assert_eq!(&a7, &quiet_state);
    }

    #[test]
    fn forwarding_changes_timing_not_results(insns in arb_program(), seed in any::<u64>()) {
        let fast = run_on(&insns, UarchConfig::cortex_a7().with_ideal_memory(), seed);
        let mut no_fwd = UarchConfig::cortex_a7().with_ideal_memory();
        no_fwd.forwarding = false;
        let slow = run_on(&insns, no_fwd, seed);
        prop_assert_eq!(&fast, &slow);
    }
}
