//! The resume contract at portfolio scale: a portfolio run killed
//! mid-campaign by `--kill-after` fault injection and then resumed must
//! reproduce the uninterrupted stored run **byte-for-byte** — not just
//! the discrete verdicts but every printed correlation's f64 bit
//! pattern. This is exactly what CI's crash-resume job asserts on the
//! binary's stdout; here it is pinned at the library level so a
//! formatting change cannot mask a real divergence.
//!
//! Also pins that `run_portfolio_reanalyze` over the stored corpora
//! reproduces the CPA/TVLA verdict lines of the run that collected
//! them.

use std::path::PathBuf;

use sca_bench::{
    run_portfolio, run_portfolio_reanalyze, PortfolioConfig, PortfolioResult, PortfolioStoreConfig,
};
use superscalar_sca::power::GaussianNoise;
use superscalar_sca::target::TargetError;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sca_pf_resume_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Debug-build-sized portfolio: the real targets and models with a
/// quieter probe so a hundred traces resolve in test time.
fn config(store: PortfolioStoreConfig) -> PortfolioConfig {
    PortfolioConfig {
        traces: 100,
        executions_per_trace: 2,
        threads: 4,
        charz_traces: 100,
        audit_executions: 150,
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 30.0,
        },
        store: Some(store),
        ..PortfolioConfig::default()
    }
}

/// Bitwise comparison of everything the binary prints floats from.
fn assert_bit_identical(a: &PortfolioResult, b: &PortfolioResult) {
    assert_eq!(a.verdict_lines(), b.verdict_lines());
    assert_eq!(a.targets.len(), b.targets.len());
    for (ta, tb) in a.targets.iter().zip(&b.targets) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(ta.cpa.len(), tb.cpa.len());
        for (va, vb) in ta.cpa.iter().zip(&tb.cpa) {
            assert_eq!(
                va.peak.to_bits(),
                vb.peak.to_bits(),
                "{}/{}",
                ta.name,
                va.model
            );
            assert_eq!(
                va.best_wrong.to_bits(),
                vb.best_wrong.to_bits(),
                "{}/{}",
                ta.name,
                va.model
            );
        }
        assert_eq!(
            ta.tvla.max_t.to_bits(),
            tb.tvla.max_t.to_bits(),
            "{}",
            ta.name
        );
        assert_eq!(ta.tvla.counts, tb.tvla.counts);
        assert_eq!(ta.audit_operand, tb.audit_operand);
        assert_eq!(ta.audit_memory, tb.audit_memory);
    }
}

#[test]
fn killed_and_resumed_portfolio_is_bit_identical_to_uninterrupted() {
    // Reference: one uninterrupted stored run.
    let root_a = scratch("uninterrupted");
    let store_a = PortfolioStoreConfig {
        checkpoint_every: 64,
        ..PortfolioStoreConfig::new(&root_a)
    };
    let reference = run_portfolio(&config(store_a)).expect("uninterrupted run");

    // Kill a second run mid-way: planned stored traces are
    // (targets × 3 campaigns × 100); global trace 450 lands inside a
    // middle target's campaign, after several checkpoints.
    let root_b = scratch("killed");
    let killed = run_portfolio(&config(PortfolioStoreConfig {
        checkpoint_every: 64,
        kill_after: Some(450),
        ..PortfolioStoreConfig::new(&root_b)
    }));
    let error = killed.expect_err("the kill point fires");
    assert!(
        matches!(error.downcast_ref::<TargetError>(), Some(e) if e.is_killed()),
        "expected a fault-injection kill, got: {error}"
    );

    // Resume and compare against the reference, bit for bit.
    let resumed = run_portfolio(&config(PortfolioStoreConfig {
        checkpoint_every: 64,
        resume: true,
        ..PortfolioStoreConfig::new(&root_b)
    }))
    .expect("resumed run completes");
    assert_bit_identical(&reference, &resumed);

    // Re-analysis of either corpus reproduces the CPA/TVLA verdict
    // lines the stored runs printed.
    let reanalyzed = run_portfolio_reanalyze(&root_a).expect("re-analysis streams");
    let full_lines = reference.verdict_lines();
    for report in &reanalyzed {
        for line in report.verdict_lines() {
            assert!(
                full_lines.contains(&line),
                "re-analysis line not in the stored run's verdicts: {line}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}
