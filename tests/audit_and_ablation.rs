//! Integration tests for the Section 4.2 findings: the four causes of
//! cross-instruction value combination, exercised through the audit tool
//! and through microarchitecture ablations.

use superscalar_sca::analysis::input_word;
use superscalar_sca::core::{
    audit_program, run_benchmark, table2_benchmarks, AuditConfig, CharacterizationConfig,
    SecretModel,
};
use superscalar_sca::isa::{assemble, Reg};
use superscalar_sca::power::GaussianNoise;
use superscalar_sca::uarch::{Cpu, Node, NodeKind, UarchConfig};

fn share_models() -> [SecretModel; 1] {
    [SecretModel::new("HD(share0, share1)", |input: &[u8]| {
        f64::from((input_word(input, 0) ^ input_word(input, 1)).count_ones())
    })]
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    cpu.set_reg(Reg::R0, input_word(input, 0));
    cpu.set_reg(Reg::R1, input_word(input, 1));
    cpu.set_reg(Reg::R4, 0x0f0f_0f0f);
    cpu.set_reg(Reg::R5, 0x3c3c_3c3c);
}

fn bus_findings(report: &superscalar_sca::core::AuditReport) -> usize {
    report
        .findings
        .iter()
        .filter(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. }))
        .count()
}

fn audit(src: &str, executions: usize) -> superscalar_sca::core::AuditReport {
    let program = assemble(src).expect("assembles");
    audit_program(
        &UarchConfig::cortex_a7().with_ideal_memory(),
        &program,
        8,
        stage,
        &share_models(),
        &AuditConfig {
            executions,
            ..AuditConfig::default()
        },
    )
    .expect("audits")
}

#[test]
fn cause_i_and_ii_scheduling_order_and_operand_position() {
    // Same position, adjacent issue: leaks.
    let adjacent = audit("eor r2, r0, r4\neor r3, r1, r5\nhalt\n", 300);
    assert!(bus_findings(&adjacent) > 0);
    // Different positions: clean (cause ii).
    let swapped = audit("eor r2, r0, r4\neor r3, r5, r1\nhalt\n", 300);
    assert_eq!(bus_findings(&swapped), 0);
    // Scheduling distance: clean (cause i).
    let spaced = audit(
        "eor r2, r0, r4\nmov r6, r7\nmov r6, r7\neor r3, r1, r5\nhalt\n",
        300,
    );
    assert_eq!(bus_findings(&spaced), 0);
}

#[test]
fn cause_iii_dual_issue_changes_leakage() {
    // The dual-issue ablation: the same kernel leaks its result HD only
    // on a scalar pipeline.
    let config = CharacterizationConfig {
        traces: 400,
        executions_per_trace: 1,
        noise: GaussianNoise {
            sd: 1.5,
            baseline: 5.0,
        },
        threads: 4,
        ..CharacterizationConfig::default()
    };
    let row3 = &table2_benchmarks()[2];
    let dual =
        run_benchmark(row3, &UarchConfig::cortex_a7().with_ideal_memory(), &config).expect("runs");
    let scalar =
        run_benchmark(row3, &UarchConfig::scalar().with_ideal_memory(), &config).expect("runs");
    let cell = |row: &superscalar_sca::core::RowResult| {
        row.cells
            .iter()
            .find(|c| c.component == NodeKind::ExWbBuffer && c.expr == "rA ^ rD")
            .expect("cell present")
            .significant
    };
    assert!(!cell(&dual), "dual-issued results must not combine");
    assert!(cell(&scalar), "scalar execution must combine them");
}

#[test]
fn cause_iv_data_remanence_needs_align_buffer() {
    let config = CharacterizationConfig {
        traces: 400,
        executions_per_trace: 1,
        noise: GaussianNoise {
            sd: 1.5,
            baseline: 5.0,
        },
        threads: 4,
        ..CharacterizationConfig::default()
    };
    let row7 = &table2_benchmarks()[6];
    let with_buffer =
        run_benchmark(row7, &UarchConfig::cortex_a7().with_ideal_memory(), &config).expect("runs");
    let mut no_buffer_config = UarchConfig::cortex_a7().with_ideal_memory();
    no_buffer_config.align_buffer = false;
    let without_buffer = run_benchmark(row7, &no_buffer_config, &config).expect("runs");
    let remanence = |row: &superscalar_sca::core::RowResult| {
        row.cells
            .iter()
            .find(|c| c.component == NodeKind::AlignBuffer && c.expr == "rC ^ rG")
            .expect("cell present")
            .significant
    };
    assert!(remanence(&with_buffer));
    assert!(!remanence(&without_buffer));
}

#[test]
fn nop_is_not_security_neutral() {
    let config = CharacterizationConfig {
        traces: 400,
        executions_per_trace: 1,
        noise: GaussianNoise {
            sd: 1.5,
            baseline: 5.0,
        },
        threads: 4,
        ..CharacterizationConfig::default()
    };
    let row1 = &table2_benchmarks()[0];
    let normal =
        run_benchmark(row1, &UarchConfig::cortex_a7().with_ideal_memory(), &config).expect("runs");
    let mut neutral_nops = UarchConfig::cortex_a7().with_ideal_memory();
    neutral_nops.nop_zeroes_wb = false;
    neutral_nops.nop_drives_operand_buses = false;
    let neutered = run_benchmark(row1, &neutral_nops, &config).expect("runs");
    let hw_leaks = |row: &superscalar_sca::core::RowResult| {
        row.cells
            .iter()
            .filter(|c| c.expr == "rB" || c.expr == "rB (†)")
            .filter(|c| c.significant)
            .count()
    };
    assert!(hw_leaks(&normal) >= 2, "A7-style nops create HW leakage");
    assert_eq!(hw_leaks(&neutered), 0, "security-neutral nops would not");
}
