//! Integration tests for the extension features: full-key recovery,
//! rank-evolution metrics, and trace persistence — the acquire-once,
//! analyze-many workflow a downstream evaluator would actually run.

use rand::Rng;

use superscalar_sca::aes::{recover_full_key, AesSim, SubBytesHw};
use superscalar_sca::analysis::{rank_evolution, traces_to_rank0};
use superscalar_sca::power::{
    AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
};
use superscalar_sca::prelude::TraceSet;
use superscalar_sca::uarch::UarchConfig;

const KEY: [u8; 16] = *b"\xde\xad\xbe\xef\x01\x23\x45\x67\x89\xab\xcd\xef\x10\x32\x54\x76";

fn acquire(traces: usize) -> TraceSet {
    let sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &KEY).expect("builds");
    let acquisition = AcquisitionConfig {
        traces,
        executions_per_trace: 1,
        sampling: SamplingConfig::per_cycle(),
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 10.0,
        },
        seed: 31,
        threads: 4,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
    synth
        .acquire(
            sim.cpu(),
            sim.entry(),
            |rng, _| {
                let mut pt = vec![0u8; 16];
                rng.fill(&mut pt[..]);
                pt
            },
            AesSim::stage_plaintext,
        )
        .expect("acquires")
        .truncated(380)
}

#[test]
fn acquire_save_load_attack_pipeline() {
    let traces = acquire(300);
    // Persist and reload — the attack must not notice.
    let path = std::env::temp_dir().join("superscalar_sca_integration.traces");
    traces.save(&path).expect("saves");
    let reloaded = TraceSet::load(&path).expect("loads");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reloaded.len(), traces.len());

    let recovered = recover_full_key(&reloaded, 4);
    assert_eq!(
        recovered.key,
        KEY,
        "{}/16 bytes recovered from reloaded traces",
        recovered.correct_bytes(&KEY)
    );
}

#[test]
fn rank_evolution_converges_on_simulated_aes() {
    let traces = acquire(300);
    let curve = rank_evolution(
        &traces,
        &SubBytesHw { byte: 0 },
        KEY[0],
        &[50, 100, 200, 300],
    );
    assert_eq!(curve.len(), 4);
    let final_point = curve.last().expect("nonempty");
    assert_eq!(final_point.rank, 0, "300 clean traces must reach rank 0");
    assert!(final_point.correct_peak > final_point.best_wrong_peak);
    let needed = traces_to_rank0(&curve).expect("attack converges");
    assert!(needed <= 300);
}
