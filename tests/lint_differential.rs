//! The static-vs-dynamic differential validation — the contract that
//! keeps `sca-lint` honest.
//!
//! The linter predicts, from the program text alone, which pipeline
//! components leak; the Table-2-style dynamic characterization
//! (`characterize_target`) measures which ones actually do. This test
//! runs both over the unprotected portfolio and joins the results:
//!
//! * **soundness on RED cells** — for every `(model, component)` cell
//!   the dynamic characterization marks significant on an unprotected
//!   target, at least one static diagnostic of the matching rule class
//!   ([`Rule::for_node`]) must fire inside the model's instruction
//!   window ([`static_window`]);
//! * **no unexplainable components** — a dynamically RED component
//!   with *no* static rule (the register file, by design) fails
//!   loudly: it would mean the rule set no longer spans the measured
//!   leakage;
//! * **precision on the hardened target** — the scheduled masked AES,
//!   the one program the toolchain claims is safe, must lint clean.
//!
//! Static over-approximation in the other direction (a diagnostic
//! where the dynamic cell stays black) is expected and not asserted:
//! the linter models possible transitions, the measurement sees one
//! microarchitecture's realized ones at finite trace count.
//!
//! The dynamic side reuses the exact configuration of the pinned
//! portfolio snapshot in `tests/verdict_regression.rs` (150
//! characterization traces, quiet probe, per-target seed salts), so
//! the ground truth here is the same one pinned there.

use sca_bench::masked_sched_program;
use superscalar_sca::campaign::{DEFAULT_BATCH, DEFAULT_LANES};
use superscalar_sca::lint::{lint_program, Rule};
use superscalar_sca::power::GaussianNoise;
use superscalar_sca::target::{
    characterize_target, portfolio, static_window, CipherTarget, MaskedAesTarget, TargetCampaign,
    TargetCampaignConfig,
};
use superscalar_sca::uarch::UarchConfig;

/// The `verdict_regression` portfolio scale: quiet probe, 150 traces,
/// 2 executions per trace, the per-target seed salt of `run_portfolio`.
fn charz_config(salt: u64) -> TargetCampaignConfig {
    TargetCampaignConfig {
        traces: 150,
        executions_per_trace: 2,
        seed: 0xdac_2018 ^ (salt << 24),
        threads: 4,
        batch: DEFAULT_BATCH,
        lanes: DEFAULT_LANES,
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 30.0,
        },
    }
}

#[test]
fn every_dynamic_red_cell_has_a_matching_static_diagnostic() {
    let uarch = UarchConfig::cortex_a7();
    let targets = portfolio();
    let mut red_cells = 0usize;
    // Unprotected targets only (the masked pair is covered by the
    // clean-target test below); salts follow `run_portfolio`'s
    // enumeration of the full registry.
    for (index, target) in targets.iter().enumerate() {
        let target: &dyn CipherTarget = target.as_ref();
        if target.name().contains("masked") {
            continue;
        }
        let salt = index as u64 + 1;
        let program = target.program().clone();
        let report = lint_program(&program, &target.lint_spec()).expect("lint runs");
        assert!(
            !report.is_clean(),
            "{}: an unprotected target must not lint clean",
            target.name()
        );

        let models = target.models();
        let config = charz_config(salt);
        let campaign = TargetCampaign::new(target, &uarch, config.clone()).expect("campaign");
        let charz = characterize_target(target, campaign.cpu(), &models, &config, 0.995)
            .expect("characterization runs");

        for (model, row) in models.iter().zip(&charz) {
            let (start, end) = static_window(&program, &model.window).unwrap_or_else(|| {
                panic!("{}: {} window does not resolve", target.name(), model.name)
            });
            for cell in row.cells.iter().filter(|c| c.significant) {
                let rules = Rule::for_node(cell.component);
                assert!(
                    !rules.is_empty(),
                    "{}: {} marks {:?} RED dynamically but no static rule models \
                     that component — the rule set no longer spans the measured leakage",
                    target.name(),
                    model.name,
                    cell.component
                );
                let covered = report.diagnostics.iter().any(|d| {
                    rules.contains(&d.rule)
                        && ((start..end).contains(&d.addr_a) || (start..end).contains(&d.addr_b))
                });
                assert!(
                    covered,
                    "{}: dynamic characterization marks {:?} RED for model `{}` \
                     (peak |r| = {:.4}), but no {} diagnostic fires in the window \
                     {start:#x}..{end:#x}:\n{}",
                    target.name(),
                    cell.component,
                    model.name,
                    cell.peak_corr,
                    rules.iter().map(|r| r.id()).collect::<Vec<_>>().join("/"),
                    report.render(&program)
                );
                red_cells += 1;
            }
        }
    }
    assert!(
        red_cells >= 3,
        "the dynamic ground truth went quiet ({red_cells} RED cells) — \
         the differential validation is vacuous"
    );
}

/// The flip side of the contract: the one program the toolchain claims
/// is first-order safe — the masked AES after `sca-sched` hardening —
/// must produce zero diagnostics. (The unscheduled masked AES still
/// lints dirty: the shared output mask cancels in pair distances, which
/// is exactly what the scheduler's scrubs break.)
#[test]
fn scheduled_masked_aes_lints_clean_and_unscheduled_does_not() {
    let masked = MaskedAesTarget::default();
    let spec = masked.lint_spec();

    let unscheduled = lint_program(masked.program(), &spec).expect("lint runs");
    assert!(
        !unscheduled.is_clean(),
        "the unscheduled masked AES must still show the pair-distance leaks"
    );

    let (hardened, report) = masked_sched_program().expect("scheduler runs");
    assert!(report.mem_scrubs > 0, "the scheduler must have intervened");
    let linted = lint_program(&hardened, &spec).expect("lint runs");
    assert!(
        linted.is_clean(),
        "masked+sched AES must lint clean:\n{}",
        linted.render(&hardened)
    );
}
