//! Integration reproduction of Table 2: every cell of the leakage
//! characterization must reach the verdict the paper reports (red =
//! statistically sound leakage at the >99.5% level, black = silent).
//!
//! The campaign here is smaller than the paper's 100k traces but uses a
//! correspondingly quieter probe; the `table2` bench binary runs the
//! full-noise version.

use superscalar_sca::core::{characterize, CharacterizationConfig};
use superscalar_sca::power::GaussianNoise;
use superscalar_sca::uarch::{NodeKind, UarchConfig};

fn quick_config() -> CharacterizationConfig {
    CharacterizationConfig {
        traces: 500,
        executions_per_trace: 1,
        noise: GaussianNoise {
            sd: 1.5,
            baseline: 10.0,
        },
        threads: 4,
        ..CharacterizationConfig::default()
    }
}

#[test]
fn every_cell_matches_the_paper() {
    let report = characterize(
        &UarchConfig::cortex_a7().with_ideal_memory(),
        &quick_config(),
    )
    .expect("characterizes");
    let mut failures = Vec::new();
    for row in &report.rows {
        for cell in &row.cells {
            if !cell.matches_paper() {
                failures.push(format!(
                    "row {} {} / {}: got {} expected {} (corr {:+.4})",
                    row.row,
                    cell.component.label(),
                    cell.expr,
                    if cell.significant { "RED" } else { "black" },
                    cell.expected,
                    cell.peak_corr,
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "mismatching cells:\n{}",
        failures.join("\n")
    );
    assert_eq!(report.matching_cells(), report.total_cells());
}

#[test]
fn register_file_is_silent_everywhere() {
    let report = characterize(
        &UarchConfig::cortex_a7().with_ideal_memory(),
        &quick_config(),
    )
    .expect("characterizes");
    for row in &report.rows {
        for cell in row
            .cells
            .iter()
            .filter(|c| c.component == NodeKind::RegisterFile)
        {
            assert!(
                !cell.significant,
                "RF leaked in row {} model {} (corr {})",
                row.row, cell.expr, cell.peak_corr
            );
        }
    }
}

#[test]
fn dual_issue_detection_matches_declared_rows() {
    let report = characterize(
        &UarchConfig::cortex_a7().with_ideal_memory(),
        &quick_config(),
    )
    .expect("characterizes");
    let declared: Vec<bool> = superscalar_sca::core::table2_benchmarks()
        .iter()
        .map(|b| b.dual_issued)
        .collect();
    let observed: Vec<bool> = report.rows.iter().map(|r| r.dual_issued).collect();
    assert_eq!(declared, observed);
}

#[test]
fn shifter_leak_is_weakest() {
    // Section 4.1: the shifter buffer's correlation is about one tenth of
    // the other components'.
    let report = characterize(
        &UarchConfig::cortex_a7().with_ideal_memory(),
        &quick_config(),
    )
    .expect("characterizes");
    let row4 = &report.rows[3];
    let shift_peak = row4
        .cells
        .iter()
        .filter(|c| c.component == NodeKind::ShiftBuffer)
        .map(|c| c.peak_corr.abs())
        .fold(0.0, f64::max);
    let alu_peak = row4
        .cells
        .iter()
        .filter(|c| c.component == NodeKind::Alu)
        .map(|c| c.peak_corr.abs())
        .fold(0.0, f64::max);
    assert!(shift_peak > 0.0 && alu_peak > 0.0);
    let ratio = shift_peak / alu_peak;
    assert!(
        (0.03..0.4).contains(&ratio),
        "shifter/ALU correlation ratio {ratio} should be near the paper's ~1/10"
    );
}
