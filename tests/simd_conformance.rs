//! Cross-path differential conformance: every SIMD kernel must be
//! **bit-identical** to its scalar reference at every shape — including
//! non-multiple-of-lane tails, empty batches and degenerate geometries.
//!
//! The `simd` feature chunks hot loops to explicit widths so LLVM
//! vectorizes them; because every kernel is strictly element-wise (no
//! horizontal reduction, no re-association), IEEE-754 guarantees the
//! same bits as the scalar loop. These proptests pin that contract over
//! arbitrary `(guesses, samples, batch, tail)` shapes, so a future
//! "optimization" that silently re-associates gets caught here, not in
//! a wrong verdict three layers up. They run under both feature
//! settings: with `--no-default-features` both paths compile to the
//! scalar reference and the tests are trivially green.

use proptest::collection::vec;
use proptest::prelude::*;

use superscalar_sca::analysis::kernels;
use superscalar_sca::analysis::CpaAccumulator;
use superscalar_sca::power::vecops;

/// Finite f32s that exercise rounding without NaN/inf edge cases (a
/// power trace is always finite). The irrational multiplier keeps the
/// mantissas messy so reassociated sums would actually differ.
fn trace_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    vec(
        (-1.0e3f32..1.0e3).prop_map(|v| v * std::f32::consts::FRAC_PI_3),
        n..n + 1,
    )
}

fn sample_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(
        (-1.0e6f64..1.0e6).prop_map(|v| v * std::f64::consts::FRAC_PI_4),
        n..n + 1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `CpaAccumulator::absorb_batch` vs `absorb_batch_scalar`: stream
    /// the same random batches through both entry points and assert
    /// every raw moment (`n`, `Σx`, `Σx²`, `Σy`, `Σy²`, `Σx·y`) agrees
    /// bit-for-bit — not merely to some epsilon.
    #[test]
    fn absorb_batch_matches_scalar_reference(
        guesses in 1usize..12,
        samples in 0usize..70,
        batches in vec(0usize..5, 1..4),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut simd = CpaAccumulator::new(guesses, samples);
        let mut scalar = CpaAccumulator::new(guesses, samples);
        for batch in batches {
            let preds: Vec<f64> =
                (0..batch * guesses).map(|_| rng.gen_range(-8.0..8.0)).collect();
            let traces: Vec<f32> =
                (0..batch * samples).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
            simd.absorb_batch(&preds, &traces);
            scalar.absorb_batch_scalar(&preds, &traces);
        }
        let a = simd.raw_moments();
        let b = scalar.raw_moments();
        prop_assert_eq!(a.0, b.0);
        for (x, y) in [(a.1, b.1), (a.2, b.2), (a.3, b.3), (a.4, b.4), (a.5, b.5)] {
            prop_assert_eq!(x.len(), y.len());
            for (u, v) in x.iter().zip(y) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    /// The analysis-side kernels at raw-slice level, across lane tails:
    /// lengths straddling multiples of the chunk width must all agree.
    #[test]
    fn analysis_kernels_match_scalar_at_every_tail(
        len in 0usize..40,
        x in -8.0f64..8.0,
        trace in trace_values(40),
        init in sample_values(40),
    ) {
        let trace = &trace[..len];
        let mut sy_a: Vec<f64> = init[..len].to_vec();
        let mut syy_a: Vec<f64> = init[..len].iter().map(|v| v * 0.5).collect();
        let mut sy_b = sy_a.clone();
        let mut syy_b = syy_a.clone();
        kernels::moments(&mut sy_a, &mut syy_a, trace);
        kernels::moments_scalar(&mut sy_b, &mut syy_b, trace);
        prop_assert_eq!(bits64(&sy_a), bits64(&sy_b));
        prop_assert_eq!(bits64(&syy_a), bits64(&syy_b));

        let mut row_a: Vec<f64> = init[..len].to_vec();
        let mut row_b = row_a.clone();
        kernels::axpy(&mut row_a, x, trace);
        kernels::axpy_scalar(&mut row_b, x, trace);
        prop_assert_eq!(bits64(&row_a), bits64(&row_b));
    }

    /// The synthesis-side kernels: execution folding and the final
    /// average-and-narrow step, across lane tails and an empty input.
    #[test]
    fn power_vecops_match_scalar_at_every_tail(
        len in 0usize..40,
        inv in 0.01f64..2.0,
        accum in sample_values(40),
        samples in sample_values(40),
    ) {
        let mut a = accum[..len].to_vec();
        let mut b = a.clone();
        vecops::add_assign(&mut a, &samples[..len]);
        vecops::add_assign_scalar(&mut b, &samples[..len]);
        prop_assert_eq!(bits64(&a), bits64(&b));

        // The narrow step appends — seed both outputs with a prefix to
        // check extend semantics, not just the fresh-vector case.
        let mut out_a = vec![1.5f32, -2.5];
        let mut out_b = out_a.clone();
        vecops::scaled_narrow_extend(&mut out_a, &a, inv);
        vecops::scaled_narrow_extend_scalar(&mut out_b, &b, inv);
        prop_assert_eq!(bits32(&out_a), bits32(&out_b));
    }
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic (non-proptest) edge cases the shrinker can miss: the
/// empty batch, the zero-sample accumulator, and exact lane-multiple
/// lengths for both chunk widths.
#[test]
fn empty_and_exact_lane_shapes() {
    for (guesses, samples) in [(1, 0), (3, 8), (256, 16), (2, kernels::F32_LANES * 3)] {
        let mut simd = CpaAccumulator::new(guesses, samples);
        let mut scalar = CpaAccumulator::new(guesses, samples);
        // Empty batch: no traces at all.
        simd.absorb_batch(&[], &[]);
        scalar.absorb_batch_scalar(&[], &[]);
        // One all-zeros trace.
        simd.absorb_batch(&vec![0.25; guesses], &vec![0.0; samples]);
        scalar.absorb_batch_scalar(&vec![0.25; guesses], &vec![0.0; samples]);
        let a = simd.raw_moments();
        let b = scalar.raw_moments();
        assert_eq!(a.0, b.0);
        assert_eq!(a.5, b.5, "sum_xy at ({guesses}, {samples})");
    }

    let mut a: Vec<f64> = Vec::new();
    let mut out = Vec::new();
    vecops::add_assign(&mut a, &[]);
    vecops::scaled_narrow_extend(&mut out, &a, 1.0);
    assert!(out.is_empty());
}
