//! Exact accounting for the process-global simulator-run counter.
//!
//! The counter backs the zero-resimulation assertion of the stored-
//! corpus re-analysis path, so its accounting must be exact: one run
//! per window probe, one per averaged execution. It is process-global,
//! which is why this lives in its own integration-test binary with a
//! single `#[test]` — nothing else in the process may race it.

use rand::rngs::StdRng;
use sca_isa::{assemble, Reg};
use sca_power::{
    simulator_runs, AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig,
    TraceSynthesizer,
};
use sca_uarch::{Cpu, UarchConfig};

fn fixture() -> (Cpu, u32) {
    let program = assemble(
        "
        trig #1
        ldr r1, [r10]
        nop
        nop
        trig #0
        halt
    ",
    )
    .unwrap();
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.load(&program).unwrap();
    cpu.set_reg(Reg::R10, 0x800);
    (cpu, program.entry())
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
    cpu.mem_mut().write_u32(0x800, word).unwrap();
}

#[test]
fn counter_is_exact_and_input_derivation_is_free() {
    let (cpu, entry) = fixture();
    let config = AcquisitionConfig {
        traces: 3,
        executions_per_trace: 4,
        sampling: SamplingConfig::per_cycle(),
        noise: GaussianNoise::none(),
        seed: 5,
        threads: 1,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), config);
    let gen = |rng: &mut StdRng, _| {
        use rand::Rng;
        rng.gen::<u32>().to_le_bytes().to_vec()
    };

    assert_eq!(simulator_runs(), 0, "nothing has simulated yet");
    let set = synth.acquire(&cpu, entry, gen, stage).unwrap();
    // One window probe plus traces × executions.
    assert_eq!(simulator_runs(), 1 + 3 * 4);

    // Re-deriving every input afterwards costs zero simulator runs.
    for i in 0..set.len() {
        assert_eq!(synth.input_for(i, &gen), set.input(i), "trace {i}");
    }
    assert_eq!(simulator_runs(), 1 + 3 * 4, "input_for must not simulate");

    // The probe alone is exactly one run.
    synth.probe_samples(&cpu, entry, &gen, &stage).unwrap();
    assert_eq!(simulator_runs(), 1 + 3 * 4 + 1);
}
