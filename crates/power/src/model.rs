//! The power-consumption model.
//!
//! Following Section 4 of the paper, instantaneous power is modeled as a
//! weighted sum of switching activity on the tracked microarchitectural
//! nodes: gates driving large capacitive loads contribute the Hamming
//! distance between the values they assert in subsequent cycles; the
//! zero-precharged ALU outputs and the barrel-shifter buffer contribute
//! the Hamming weight of their result (a Hamming distance from zero).
//!
//! The default weights encode the paper's *findings*:
//!
//! * register-file read ports do **not** leak (short capacitive load) —
//!   weight 0;
//! * IS/EX buffers, EX/WB buffers, write-back buses and the MDR leak with
//!   full weight;
//! * the shifter buffer leaks at about one tenth of the other components
//!   (Section 4.1);
//! * the align buffer leaks like the MDR;
//! * the fetch path is given a negligible, non-zero weight so that
//!   data-independent fetch activity contributes systematic (not
//!   data-correlated) background power.

use serde::{Deserialize, Serialize};

use sca_uarch::{NodeEvent, NodeKind};

/// Per-component leakage weights.
///
/// ```
/// use sca_power::LeakageWeights;
/// use sca_uarch::NodeKind;
///
/// let weights = LeakageWeights::cortex_a7();
/// assert_eq!(weights.hd(NodeKind::RegisterFile), 0.0);
/// assert!(weights.hd(NodeKind::ShiftBuffer) < weights.hd(NodeKind::Mdr));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LeakageWeights {
    /// Hamming-distance weight per node kind.
    hd: [f64; NodeKind::COUNT],
    /// Additional Hamming-weight term per node kind (beyond what the
    /// precharge behaviour already contributes through `hd`).
    hw: [f64; NodeKind::COUNT],
}

impl LeakageWeights {
    /// All-zero weights (useful as a builder base).
    pub fn zero() -> LeakageWeights {
        LeakageWeights {
            hd: [0.0; NodeKind::COUNT],
            hw: [0.0; NodeKind::COUNT],
        }
    }

    /// The weights matching the paper's Cortex-A7 characterization.
    pub fn cortex_a7() -> LeakageWeights {
        let mut weights = LeakageWeights::zero();
        weights.set_hd(NodeKind::RegisterFile, 0.0);
        weights.set_hd(NodeKind::IsExBuffer, 1.0);
        // "its absolute value in correlation is about 1/10 of the average
        // value for the other leakages"
        weights.set_hd(NodeKind::ShiftBuffer, 0.1);
        weights.set_hd(NodeKind::Alu, 1.0);
        weights.set_hd(NodeKind::ExWbBuffer, 1.0);
        weights.set_hd(NodeKind::Mdr, 1.3);
        weights.set_hd(NodeKind::AlignBuffer, 1.0);
        weights.set_hd(NodeKind::FetchPath, 0.02);
        weights
    }

    /// Hamming-distance weight of a component.
    pub fn hd(&self, kind: NodeKind) -> f64 {
        self.hd[kind.index()]
    }

    /// Hamming-weight weight of a component.
    pub fn hw(&self, kind: NodeKind) -> f64 {
        self.hw[kind.index()]
    }

    /// Sets the Hamming-distance weight of a component.
    pub fn set_hd(&mut self, kind: NodeKind, weight: f64) {
        self.hd[kind.index()] = weight;
    }

    /// Sets the extra Hamming-weight term of a component.
    pub fn set_hw(&mut self, kind: NodeKind, weight: f64) {
        self.hw[kind.index()] = weight;
    }

    /// Builder-style variant of [`LeakageWeights::set_hd`].
    #[must_use]
    pub fn with_hd(mut self, kind: NodeKind, weight: f64) -> LeakageWeights {
        self.set_hd(kind, weight);
        self
    }

    /// Power contribution of one node event.
    #[inline]
    pub fn power_of(&self, event: &NodeEvent) -> f64 {
        self.power_of_kind(event.node.kind(), event)
    }

    /// Power contribution of one node event whose component kind the
    /// caller has already resolved — the recorders sit on the busiest
    /// observer path and need the kind themselves, so this avoids
    /// resolving it twice per event.
    #[inline]
    pub fn power_of_kind(&self, kind: NodeKind, event: &NodeEvent) -> f64 {
        self.hd[kind.index()] * f64::from(event.hamming_distance())
            + self.hw[kind.index()] * f64::from(event.hamming_weight())
    }
}

impl Default for LeakageWeights {
    fn default() -> LeakageWeights {
        LeakageWeights::cortex_a7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_uarch::Node;

    #[test]
    fn register_file_does_not_leak_by_default() {
        let weights = LeakageWeights::cortex_a7();
        let event = NodeEvent {
            cycle: 0,
            node: Node::RfRead(0),
            before: 0,
            after: 0xffff_ffff,
        };
        assert_eq!(weights.power_of(&event), 0.0);
    }

    #[test]
    fn hamming_distance_scales_power() {
        let weights = LeakageWeights::cortex_a7();
        let small = NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0,
            after: 0b1,
        };
        let large = NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0,
            after: 0xff,
        };
        assert!(weights.power_of(&large) > weights.power_of(&small));
        assert_eq!(
            weights.power_of(&large),
            8.0 * weights.hd(sca_uarch::NodeKind::Mdr)
        );
    }

    #[test]
    fn shifter_weight_is_one_tenth() {
        let weights = LeakageWeights::cortex_a7();
        let ratio = weights.hd(sca_uarch::NodeKind::ShiftBuffer)
            / weights.hd(sca_uarch::NodeKind::IsExBuffer);
        assert!((ratio - 0.1).abs() < 1e-12);
    }

    #[test]
    fn hw_term_is_additive() {
        let mut weights = LeakageWeights::zero();
        weights.set_hd(NodeKind::Mdr, 1.0);
        weights.set_hw(NodeKind::Mdr, 0.5);
        let event = NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0b11,
            after: 0b01,
        };
        // HD = 1, HW = 1 → 1.0*1 + 0.5*1
        assert!((weights.power_of(&event) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn builder_style() {
        let weights = LeakageWeights::zero().with_hd(NodeKind::Alu, 2.0);
        assert_eq!(weights.hd(NodeKind::Alu), 2.0);
        assert_eq!(weights.hd(NodeKind::Mdr), 0.0);
    }
}
