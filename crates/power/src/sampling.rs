//! Oscilloscope sampling model.
//!
//! The paper samples a 120 MHz core with a Picoscope 5203 at 500 MS/s —
//! about 4.17 samples per clock cycle. Each cycle's switching activity is
//! a current pulse that the probe chain low-pass filters; this module
//! expands a per-cycle power series into a sample series by convolving
//! with a decaying pulse kernel.

use serde::{Deserialize, Serialize};

/// Sampling-chain configuration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Oscilloscope samples per core clock cycle.
    pub samples_per_cycle: f64,
    /// Pulse shape: relative amplitude at successive samples after the
    /// cycle's switching instant. Normalized internally.
    pub kernel: Vec<f64>,
}

impl SamplingConfig {
    /// 500 MS/s against a 120 MHz clock, with an empirically-shaped
    /// current pulse decaying over roughly one cycle.
    pub fn picoscope_500msps_120mhz() -> SamplingConfig {
        SamplingConfig {
            samples_per_cycle: 500.0 / 120.0,
            kernel: vec![1.0, 0.75, 0.45, 0.2, 0.08],
        }
    }

    /// One sample per cycle, identity kernel — keeps sample indices equal
    /// to cycle indices (convenient in unit tests and audits).
    pub fn per_cycle() -> SamplingConfig {
        SamplingConfig {
            samples_per_cycle: 1.0,
            kernel: vec![1.0],
        }
    }

    /// Number of samples produced for a given cycle count.
    pub fn sample_count(&self, cycles: usize) -> usize {
        // The epsilon keeps exact ratios (500/120 × 120) from rounding up.
        (cycles as f64 * self.samples_per_cycle - 1e-9)
            .ceil()
            .max(0.0) as usize
    }

    /// Expands per-cycle power into a sample series.
    ///
    /// Sample `s` receives contributions from every cycle `c` whose pulse
    /// (starting at sample `c * samples_per_cycle`) covers `s`.
    pub fn expand(&self, cycle_power: &[f64]) -> Vec<f64> {
        let mut samples = Vec::new();
        self.expand_into(cycle_power, &mut samples);
        samples
    }

    /// Allocation-free variant of [`SamplingConfig::expand`]: clears
    /// `out` and fills it with the expanded sample series, reusing its
    /// capacity. This is the per-execution path of the trace-generation
    /// arena — bit-identical to `expand` (same accumulation order).
    pub fn expand_into(&self, cycle_power: &[f64], out: &mut Vec<f64>) {
        self.expand_into_clipped(cycle_power, out, (0, usize::MAX));
    }

    /// Like [`SamplingConfig::expand_into`], but only materializes the
    /// samples inside `[keep.0, keep.1)`; everything outside stays
    /// zero. In-window samples are bit-identical to the unclipped
    /// expansion (each receives the same per-cycle contributions in the
    /// same order), so a campaign that crops to a window before its
    /// sinks can skip expanding the rest of the execution.
    pub fn expand_into_clipped(
        &self,
        cycle_power: &[f64],
        out: &mut Vec<f64>,
        keep: (usize, usize),
    ) {
        let n = self.sample_count(cycle_power.len());
        out.clear();
        out.resize(n, 0.0);
        let norm: f64 = self.kernel.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        for (c, &p) in cycle_power.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let start = c as f64 * self.samples_per_cycle;
            let first = start.floor() as usize;
            // A cycle's pulse covers samples [first, first + kernel_len];
            // skip cycles that cannot touch the kept window.
            if first >= keep.1 || first + self.kernel.len() < keep.0 {
                continue;
            }
            // Linear placement: fractional starting position splits the
            // kernel between adjacent samples.
            let frac = start - start.floor();
            for (k, &amp) in self.kernel.iter().enumerate() {
                let contribution = p * amp / norm;
                let idx = first + k;
                if idx < n && idx >= keep.0 && idx < keep.1 {
                    out[idx] += contribution * (1.0 - frac);
                }
                if idx + 1 < n && idx + 1 >= keep.0 && idx + 1 < keep.1 {
                    out[idx + 1] += contribution * frac;
                }
            }
        }
    }

    /// Maps a cycle offset (within a window) to its nominal sample index.
    pub fn sample_of_cycle(&self, cycle: usize) -> usize {
        (cycle as f64 * self.samples_per_cycle).floor() as usize
    }

    /// Converts a `(start, len)` cycle window into the `(start, len)`
    /// sample window that covers it: end-exclusive rounding via
    /// [`cycle_window_to_samples`], so fractional sampling rates keep
    /// the tail sample instead of truncating it.
    pub fn window_to_samples(&self, start_cycle: u64, len_cycles: u64) -> (usize, usize) {
        cycle_window_to_samples(self.samples_per_cycle, start_cycle, len_cycles)
    }
}

/// Converts a `(start, len)` cycle window into an end-exclusive sample
/// window at `samples_per_cycle` samples per cycle: the start rounds
/// *down* and the end (`start + len`, exclusive) rounds *up*, so every
/// sample touched by the window's cycles is covered. Truncating
/// `len * samples_per_cycle` instead — the historical bug — silently
/// dropped the final sample whenever the rate is fractional, and read a
/// window *end* as if it were a length.
///
/// The epsilons mirror [`SamplingConfig::sample_count`]: exact products
/// (e.g. 120 cycles × 500/120) stay exact instead of picking up a
/// spurious extra sample.
///
/// ```
/// use sca_power::cycle_window_to_samples;
///
/// // Integer rate: cycle windows map 1:1.
/// assert_eq!(cycle_window_to_samples(1.0, 3, 4), (3, 4));
/// // Fractional rate: the window [1, 2) in cycles covers samples 4..9.
/// let (start, len) = cycle_window_to_samples(500.0 / 120.0, 1, 1);
/// assert_eq!((start, len), (4, 5));
/// ```
pub fn cycle_window_to_samples(
    samples_per_cycle: f64,
    start_cycle: u64,
    len_cycles: u64,
) -> (usize, usize) {
    let start = (start_cycle as f64 * samples_per_cycle + 1e-9)
        .floor()
        .max(0.0) as usize;
    let end_cycle = start_cycle + len_cycles;
    let end = (end_cycle as f64 * samples_per_cycle - 1e-9)
        .ceil()
        .max(0.0) as usize;
    (start, end.saturating_sub(start))
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig::picoscope_500msps_120mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_is_identity() {
        let cfg = SamplingConfig::per_cycle();
        let out = cfg.expand(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn energy_is_preserved_up_to_truncation() {
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        let cycles = vec![4.0; 50];
        let out = cfg.expand(&cycles);
        let in_energy: f64 = cycles.iter().sum();
        let out_energy: f64 = out.iter().sum();
        // The tail of the last kernel may be truncated; allow 5%.
        assert!(
            (out_energy - in_energy).abs() / in_energy < 0.05,
            "in {in_energy} out {out_energy}"
        );
    }

    #[test]
    fn sample_count_scales() {
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        assert_eq!(cfg.sample_count(120), 500);
        assert_eq!(cfg.sample_of_cycle(120), 500);
    }

    #[test]
    fn expand_into_matches_expand_and_reuses_capacity() {
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        let cycles: Vec<f64> = (0..40).map(|c| (c % 7) as f64).collect();
        let reference = cfg.expand(&cycles);
        let mut out = vec![0.0; 1000]; // stale, oversized
        cfg.expand_into(&cycles, &mut out);
        assert_eq!(out, reference);
        let capacity = out.capacity();
        cfg.expand_into(&cycles, &mut out);
        assert_eq!(out.capacity(), capacity, "no reallocation on reuse");
    }

    /// Regression for the sample-window truncation bug: at a fractional
    /// rate, truncating `len * samples_per_cycle` dropped the tail
    /// sample of the window. End-exclusive rounding must cover every
    /// sample the window's cycles touch.
    #[test]
    fn fractional_rate_windows_keep_the_tail_sample() {
        let spc = 500.0 / 120.0; // ≈ 4.1667 samples per cycle
        for start_cycle in 0u64..30 {
            for len_cycles in 1u64..30 {
                let (start, len) = cycle_window_to_samples(spc, start_cycle, len_cycles);
                let end_exact = (start_cycle + len_cycles) as f64 * spc;
                assert!(
                    (start + len) as f64 >= end_exact - 1e-6,
                    "window ({start_cycle}, {len_cycles}) truncated: \
                     samples ({start}, {len}) vs exact end {end_exact}"
                );
                assert!(start as f64 <= start_cycle as f64 * spc + 1e-6);
                // The old truncating conversion loses the tail at
                // non-integer products.
                let old_len = (len_cycles as f64 * spc) as usize;
                assert!(len >= old_len, "end-exclusive rounding never shrinks");
            }
        }
        // The concrete case from the issue: one mid-stream cycle.
        assert_eq!(cycle_window_to_samples(spc, 1, 1), (4, 5));
        assert_eq!((1.0 * spc) as usize, 4, "old truncation gave 4 samples");
    }

    #[test]
    fn integer_rate_windows_are_identity() {
        for start in 0u64..10 {
            for len in 0u64..10 {
                assert_eq!(
                    cycle_window_to_samples(1.0, start, len),
                    (start as usize, len as usize)
                );
            }
        }
        // Exact products stay exact at the paper's fractional rate.
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        assert_eq!(cfg.window_to_samples(0, 120), (0, 500));
    }

    #[test]
    fn pulse_spreads_forward_only() {
        let cfg = SamplingConfig {
            samples_per_cycle: 4.0,
            kernel: vec![1.0, 0.5],
        };
        let out = cfg.expand(&[0.0, 3.0, 0.0]);
        // Cycle 1 starts at sample 4.
        assert_eq!(out[0], 0.0);
        assert!(out[4] > 0.0);
        assert!(out[5] > 0.0);
        assert_eq!(out[2], 0.0);
        let total: f64 = out.iter().sum();
        assert!((total - 3.0).abs() < 1e-9);
    }
}
