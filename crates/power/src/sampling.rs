//! Oscilloscope sampling model.
//!
//! The paper samples a 120 MHz core with a Picoscope 5203 at 500 MS/s —
//! about 4.17 samples per clock cycle. Each cycle's switching activity is
//! a current pulse that the probe chain low-pass filters; this module
//! expands a per-cycle power series into a sample series by convolving
//! with a decaying pulse kernel.

use serde::{Deserialize, Serialize};

/// Sampling-chain configuration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Oscilloscope samples per core clock cycle.
    pub samples_per_cycle: f64,
    /// Pulse shape: relative amplitude at successive samples after the
    /// cycle's switching instant. Normalized internally.
    pub kernel: Vec<f64>,
}

impl SamplingConfig {
    /// 500 MS/s against a 120 MHz clock, with an empirically-shaped
    /// current pulse decaying over roughly one cycle.
    pub fn picoscope_500msps_120mhz() -> SamplingConfig {
        SamplingConfig {
            samples_per_cycle: 500.0 / 120.0,
            kernel: vec![1.0, 0.75, 0.45, 0.2, 0.08],
        }
    }

    /// One sample per cycle, identity kernel — keeps sample indices equal
    /// to cycle indices (convenient in unit tests and audits).
    pub fn per_cycle() -> SamplingConfig {
        SamplingConfig {
            samples_per_cycle: 1.0,
            kernel: vec![1.0],
        }
    }

    /// Number of samples produced for a given cycle count.
    pub fn sample_count(&self, cycles: usize) -> usize {
        // The epsilon keeps exact ratios (500/120 × 120) from rounding up.
        (cycles as f64 * self.samples_per_cycle - 1e-9)
            .ceil()
            .max(0.0) as usize
    }

    /// Expands per-cycle power into a sample series.
    ///
    /// Sample `s` receives contributions from every cycle `c` whose pulse
    /// (starting at sample `c * samples_per_cycle`) covers `s`.
    pub fn expand(&self, cycle_power: &[f64]) -> Vec<f64> {
        let n = self.sample_count(cycle_power.len());
        let mut samples = vec![0.0; n];
        let norm: f64 = self.kernel.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        for (c, &p) in cycle_power.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let start = c as f64 * self.samples_per_cycle;
            let first = start.floor() as usize;
            // Linear placement: fractional starting position splits the
            // kernel between adjacent samples.
            let frac = start - start.floor();
            for (k, &amp) in self.kernel.iter().enumerate() {
                let contribution = p * amp / norm;
                let idx = first + k;
                if idx < n {
                    samples[idx] += contribution * (1.0 - frac);
                }
                if idx + 1 < n {
                    samples[idx + 1] += contribution * frac;
                }
            }
        }
        samples
    }

    /// Maps a cycle offset (within a window) to its nominal sample index.
    pub fn sample_of_cycle(&self, cycle: usize) -> usize {
        (cycle as f64 * self.samples_per_cycle).floor() as usize
    }
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig::picoscope_500msps_120mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_is_identity() {
        let cfg = SamplingConfig::per_cycle();
        let out = cfg.expand(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn energy_is_preserved_up_to_truncation() {
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        let cycles = vec![4.0; 50];
        let out = cfg.expand(&cycles);
        let in_energy: f64 = cycles.iter().sum();
        let out_energy: f64 = out.iter().sum();
        // The tail of the last kernel may be truncated; allow 5%.
        assert!(
            (out_energy - in_energy).abs() / in_energy < 0.05,
            "in {in_energy} out {out_energy}"
        );
    }

    #[test]
    fn sample_count_scales() {
        let cfg = SamplingConfig::picoscope_500msps_120mhz();
        assert_eq!(cfg.sample_count(120), 500);
        assert_eq!(cfg.sample_of_cycle(120), 500);
    }

    #[test]
    fn pulse_spreads_forward_only() {
        let cfg = SamplingConfig {
            samples_per_cycle: 4.0,
            kernel: vec![1.0, 0.5],
        };
        let out = cfg.expand(&[0.0, 3.0, 0.0]);
        // Cycle 1 starts at sample 4.
        assert_eq!(out[0], 0.0);
        assert!(out[4] > 0.0);
        assert!(out[5] > 0.0);
        assert_eq!(out[2], 0.0);
        let total: f64 = out.iter().sum();
        assert!((total - 3.0).abs() < 1e-9);
    }
}
