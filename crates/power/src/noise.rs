//! Measurement noise.
//!
//! Side-channel acquisitions carry random noise (thermal/amplifier) and
//! systematic components. The synthesizer adds white Gaussian noise per
//! raw execution — averaging the 16 executions of one trace then improves
//! SNR by √16, exactly as in the paper's acquisition protocol — plus an
//! optional external noise source (the OS/second-core model from
//! `sca-osnoise` plugs in through [`NoiseSource`]).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pluggable additive noise source (e.g. co-resident workload power).
pub trait NoiseSource: Send {
    /// Adds this source's contribution to a sample series in place.
    fn add_to(&mut self, rng: &mut StdRng, samples: &mut [f64]);
}

/// White Gaussian measurement noise plus a constant baseline.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct GaussianNoise {
    /// Standard deviation, in the same unit as node switching power.
    pub sd: f64,
    /// Constant baseline offset (static power; irrelevant to CPA but kept
    /// for realistic-looking traces).
    pub baseline: f64,
}

impl GaussianNoise {
    /// A bare-metal-quality acquisition: moderate noise.
    pub fn bare_metal() -> GaussianNoise {
        GaussianNoise {
            sd: 12.0,
            baseline: 40.0,
        }
    }

    /// An ideal noiseless probe (unit tests and audits).
    pub fn none() -> GaussianNoise {
        GaussianNoise {
            sd: 0.0,
            baseline: 0.0,
        }
    }

    /// Samples one Gaussian value via Box–Muller (keeps us independent of
    /// `rand_distr`, which is outside the approved dependency set).
    fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.sd == 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        z * self.sd
    }
}

impl NoiseSource for GaussianNoise {
    fn add_to(&mut self, rng: &mut StdRng, samples: &mut [f64]) {
        for s in samples.iter_mut() {
            *s += self.baseline + self.sample(rng);
        }
    }
}

impl Default for GaussianNoise {
    fn default() -> GaussianNoise {
        GaussianNoise::bare_metal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_only_shifts_baseline() {
        let mut noise = GaussianNoise {
            sd: 0.0,
            baseline: 5.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples = vec![1.0, 2.0];
        noise.add_to(&mut rng, &mut samples);
        assert_eq!(samples, vec![6.0, 7.0]);
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let mut noise = GaussianNoise {
            sd: 3.0,
            baseline: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let mut samples = vec![0.0; 20_000];
        noise.add_to(&mut rng, &mut samples);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn determinism_with_same_seed() {
        let run = || {
            let mut noise = GaussianNoise {
                sd: 1.0,
                baseline: 0.0,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let mut samples = vec![0.0; 8];
            noise.add_to(&mut rng, &mut samples);
            samples
        };
        assert_eq!(run(), run());
    }
}
