//! Measurement noise.
//!
//! Side-channel acquisitions carry random noise (thermal/amplifier) and
//! systematic components. The synthesizer adds white Gaussian noise per
//! raw execution — averaging the 16 executions of one trace then improves
//! SNR by √16, exactly as in the paper's acquisition protocol — plus an
//! optional external noise source (the OS/second-core model from
//! `sca-osnoise` plugs in through [`NoiseSource`]).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pluggable additive noise source (e.g. co-resident workload power).
pub trait NoiseSource: Send {
    /// Adds this source's contribution to a sample series in place.
    fn add_to(&mut self, rng: &mut StdRng, samples: &mut [f64]);
}

/// White Gaussian measurement noise plus a constant baseline.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct GaussianNoise {
    /// Standard deviation, in the same unit as node switching power.
    pub sd: f64,
    /// Constant baseline offset (static power; irrelevant to CPA but kept
    /// for realistic-looking traces).
    pub baseline: f64,
}

impl GaussianNoise {
    /// A bare-metal-quality acquisition: moderate noise.
    pub fn bare_metal() -> GaussianNoise {
        GaussianNoise {
            sd: 12.0,
            baseline: 40.0,
        }
    }

    /// An ideal noiseless probe (unit tests and audits).
    pub fn none() -> GaussianNoise {
        GaussianNoise {
            sd: 0.0,
            baseline: 0.0,
        }
    }

    /// Samples one Gaussian value via Box–Muller (keeps us independent of
    /// `rand_distr`, which is outside the approved dependency set).
    fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.sd == 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        z * self.sd
    }
}

impl GaussianNoise {
    /// Like [`NoiseSource::add_to`], but only *writes* noise inside the
    /// `[keep.0, keep.1)` sample window. The RNG is advanced exactly as
    /// `add_to` advances it — one `gen_range` + one `gen` per sample
    /// whenever `sd != 0` — so the in-window values are bit-identical
    /// to the unclipped path; only the Box–Muller transcendentals
    /// (`ln`/`sqrt`/`cos`) of discarded samples are skipped.
    ///
    /// This is the campaign fast path: a windowed campaign crops every
    /// trace to its analysis window *after* noising, so out-of-window
    /// noise is dead work — a full AES execution spans ~12k samples of
    /// which a round-1 window keeps a few hundred. Callers that post-
    /// process whole traces (e.g. the OS-noise jitter, which shifts
    /// samples *into* the window) must keep using `add_to`.
    pub fn add_to_clipped(&mut self, rng: &mut StdRng, samples: &mut [f64], keep: (usize, usize)) {
        for (i, s) in samples.iter_mut().enumerate() {
            if i >= keep.0 && i < keep.1 {
                *s += self.baseline + self.sample(rng);
            } else if self.sd != 0.0 {
                // Consume the same two draws `sample` would, keeping
                // the per-trace RNG stream aligned sample for sample.
                let _: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let _: f64 = rng.gen();
            }
        }
    }
}

impl NoiseSource for GaussianNoise {
    fn add_to(&mut self, rng: &mut StdRng, samples: &mut [f64]) {
        for s in samples.iter_mut() {
            *s += self.baseline + self.sample(rng);
        }
    }
}

impl Default for GaussianNoise {
    fn default() -> GaussianNoise {
        GaussianNoise::bare_metal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_only_shifts_baseline() {
        let mut noise = GaussianNoise {
            sd: 0.0,
            baseline: 5.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples = vec![1.0, 2.0];
        noise.add_to(&mut rng, &mut samples);
        assert_eq!(samples, vec![6.0, 7.0]);
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let mut noise = GaussianNoise {
            sd: 3.0,
            baseline: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let mut samples = vec![0.0; 20_000];
        noise.add_to(&mut rng, &mut samples);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn clipped_noise_is_bit_identical_inside_the_window() {
        let make = || GaussianNoise {
            sd: 4.0,
            baseline: 7.0,
        };
        let mut full = vec![0.0f64; 64];
        make().add_to(&mut StdRng::seed_from_u64(99), &mut full);
        let mut clipped = vec![0.0f64; 64];
        make().add_to_clipped(&mut StdRng::seed_from_u64(99), &mut clipped, (20, 40));
        assert_eq!(&clipped[20..40], &full[20..40], "window bit-identical");
        assert!(clipped[..20]
            .iter()
            .chain(&clipped[40..])
            .all(|&s| s == 0.0));
        // The RNG stream stays aligned past the window: appending more
        // draws after either pass yields the same values.
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        make().add_to(&mut a, &mut vec![0.0; 64]);
        make().add_to_clipped(&mut b, &mut vec![0.0; 64], (0, 3));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "stream alignment");
    }

    #[test]
    fn clipped_noise_with_zero_sd_draws_nothing() {
        let mut noise = GaussianNoise {
            sd: 0.0,
            baseline: 2.0,
        };
        let mut a = StdRng::seed_from_u64(5);
        let mut samples = vec![0.0f64; 8];
        noise.add_to_clipped(&mut a, &mut samples, (2, 4));
        assert_eq!(samples, vec![0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        // sd == 0 consumes no randomness in either path.
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn determinism_with_same_seed() {
        let run = || {
            let mut noise = GaussianNoise {
                sd: 1.0,
                baseline: 0.0,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let mut samples = vec![0.0; 8];
            noise.add_to(&mut rng, &mut samples);
            samples
        };
        assert_eq!(run(), run());
    }
}
