//! Explicit-width vector kernels for trace-synthesis hot loops.
//!
//! Same contract as `sca_analysis::kernels`: every kernel is strictly
//! element-wise (no horizontal reduction, no re-association), chunked
//! to a fixed width with a scalar tail, so the `simd` build is
//! bit-identical to the scalar reference at every length. The noise
//! loop is deliberately *not* here: Gaussian noise draws from a
//! sequential RNG stream whose order is part of the determinism
//! contract, so it stays scalar by construction.

/// Lane width of the `f64` kernels.
pub const F64_LANES: usize = 4;

/// Scalar reference: `accum[i] += samples[i]` over `min(len)` elements
/// — one execution folded into the per-trace average.
#[doc(hidden)]
pub fn add_assign_scalar(accum: &mut [f64], samples: &[f64]) {
    for (a, &s) in accum.iter_mut().zip(samples) {
        *a += s;
    }
}

/// Scalar reference of the average-and-narrow step: extends `out` with
/// `(accum[i] * inv) as f32`.
#[doc(hidden)]
pub fn scaled_narrow_extend_scalar(out: &mut Vec<f32>, accum: &[f64], inv: f64) {
    out.extend(accum.iter().map(|&s| (s * inv) as f32));
}

/// `accum[i] += samples[i]`, vectorized in [`F64_LANES`]-wide chunks.
#[cfg(feature = "simd")]
pub fn add_assign(accum: &mut [f64], samples: &[f64]) {
    let n = accum.len().min(samples.len());
    let (acc, src) = (&mut accum[..n], &samples[..n]);
    let mut acc_c = acc.chunks_exact_mut(F64_LANES);
    let mut src_c = src.chunks_exact(F64_LANES);
    for (a, s) in (&mut acc_c).zip(&mut src_c) {
        for i in 0..F64_LANES {
            a[i] += s[i];
        }
    }
    add_assign_scalar(acc_c.into_remainder(), src_c.remainder());
}

/// `accum[i] += samples[i]` (scalar build).
#[cfg(not(feature = "simd"))]
pub fn add_assign(accum: &mut [f64], samples: &[f64]) {
    add_assign_scalar(accum, samples);
}

/// Average-and-narrow, vectorized in [`F64_LANES`]-wide chunks.
#[cfg(feature = "simd")]
pub fn scaled_narrow_extend(out: &mut Vec<f32>, accum: &[f64], inv: f64) {
    out.reserve(accum.len());
    let mut chunks = accum.chunks_exact(F64_LANES);
    for c in &mut chunks {
        // One push per element, same rounding op as the scalar path —
        // the widened loop body is what LLVM packs.
        for &v in c {
            out.push((v * inv) as f32);
        }
    }
    scaled_narrow_extend_scalar(out, chunks.remainder(), inv);
}

/// Average-and-narrow (scalar build).
#[cfg(not(feature = "simd"))]
pub fn scaled_narrow_extend(out: &mut Vec<f32>, accum: &[f64], inv: f64) {
    scaled_narrow_extend_scalar(out, accum, inv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_matches_scalar_including_tails() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 64, 101] {
            let src: Vec<f64> = (0..len).map(|i| (i as f64).sqrt() * 0.3 - 1.0).collect();
            let mut a: Vec<f64> = (0..len).map(|i| i as f64 * 0.11).collect();
            let mut b = a.clone();
            add_assign(&mut a, &src);
            add_assign_scalar(&mut b, &src);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn narrow_matches_scalar_including_tails() {
        for len in [0usize, 1, 3, 4, 5, 13, 40, 99] {
            let accum: Vec<f64> = (0..len).map(|i| (i as f64) * 0.7 - 3.0).collect();
            let mut a = vec![9.0f32];
            let mut b = a.clone();
            scaled_narrow_extend(&mut a, &accum, 1.0 / 7.0);
            scaled_narrow_extend_scalar(&mut b, &accum, 1.0 / 7.0);
            assert_eq!(a, b, "len {len}");
        }
    }
}
