//! Turning pipeline activity into per-cycle power.

use sca_uarch::{NodeEvent, PipelineObserver};

use crate::LeakageWeights;

/// A [`PipelineObserver`] that integrates node switching activity into a
/// per-cycle power series, and records trigger edges for windowing.
///
/// One recorder observes one execution; the trace synthesizer then expands
/// cycles to oscilloscope samples, adds noise and averages executions.
#[derive(Clone, Debug)]
pub struct PowerRecorder {
    weights: LeakageWeights,
    /// Power accumulated per cycle index.
    power: Vec<f64>,
    /// `(cycle, level)` trigger edges in order.
    triggers: Vec<(u64, bool)>,
}

impl PowerRecorder {
    /// Creates a recorder with the given leakage weights.
    pub fn new(weights: LeakageWeights) -> PowerRecorder {
        PowerRecorder {
            weights,
            power: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// The raw per-cycle power series for the whole execution.
    pub fn cycle_power(&self) -> &[f64] {
        &self.power
    }

    /// Recorded trigger edges.
    pub fn triggers(&self) -> &[(u64, bool)] {
        &self.triggers
    }

    /// The per-cycle power inside the first high-trigger window.
    ///
    /// Returns the whole series when no trigger fired (bench code without
    /// `trig` instructions).
    pub fn windowed_power(&self) -> &[f64] {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return &self.power;
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map(|(c, _)| *c as usize)
            .unwrap_or(self.power.len());
        let end = end.min(self.power.len());
        let start = start.min(end);
        &self.power[start..end]
    }

    /// Clears recorded data, keeping the weights (reuse across the
    /// averaged executions of one trace).
    pub fn reset(&mut self) {
        self.power.clear();
        self.triggers.clear();
    }
}

impl PipelineObserver for PowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.power.len() < needed {
            self.power.resize(needed, 0.0);
        }
    }

    fn node_event(&mut self, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.power.len() <= idx {
            self.power.resize(idx + 1, 0.0);
        }
        self.power[idx] += self.weights.power_of_kind(event.node.kind(), &event);
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

/// A recorder that keeps one power series *per component kind*.
///
/// The paper attributes measured leakage to pipeline components
/// "following the common practice employed in EDA tools of ascribing the
/// power consumption of a signal to its driving circuit". The overall
/// probe signal superimposes all components (that is what the attacks
/// see), but the per-component characterization of Table 2 needs the
/// attribution; in simulation it is exact.
///
/// Storage is cycle-major (`power[cycle * COUNT + kind]`): the node
/// events of one cycle then land on one cache line, which matters
/// because this recorder observes every event of every characterization
/// execution. [`ComponentPowerRecorder::reset`] clears the data but
/// keeps the capacity, so a characterization worker reuses one recorder
/// across its whole index range without reallocating.
#[derive(Clone, Debug)]
pub struct ComponentPowerRecorder {
    weights: LeakageWeights,
    /// Cycle-major strided storage, `cycles × NodeKind::COUNT`.
    power: Vec<f64>,
    /// Cycles recorded so far (the stride count).
    cycles: usize,
    triggers: Vec<(u64, bool)>,
}

impl ComponentPowerRecorder {
    /// Creates a recorder with the given leakage weights.
    pub fn new(weights: LeakageWeights) -> ComponentPowerRecorder {
        ComponentPowerRecorder {
            weights,
            power: Vec::new(),
            cycles: 0,
            triggers: Vec::new(),
        }
    }

    /// Clears recorded data while keeping the weights and the allocated
    /// capacity (reuse across the averaged executions of a campaign).
    pub fn reset(&mut self) {
        self.power.clear();
        self.cycles = 0;
        self.triggers.clear();
    }

    fn window(&self) -> (usize, usize) {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return (0, self.cycles);
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map(|(c, _)| *c as usize)
            .unwrap_or(self.cycles)
            .min(self.cycles);
        (start.min(end), end)
    }

    /// The per-cycle power of one component inside the first trigger
    /// window (whole series when no trigger fired).
    pub fn windowed_power(&self, kind: sca_uarch::NodeKind) -> Vec<f64> {
        let mut out = Vec::new();
        self.windowed_power_into(kind, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`ComponentPowerRecorder::windowed_power`]: clears `out` and
    /// fills it with the windowed series, reusing its capacity.
    pub fn windowed_power_into(&self, kind: sca_uarch::NodeKind, out: &mut Vec<f64>) {
        let (start, end) = self.window();
        let k = kind.index();
        out.clear();
        out.reserve(end - start);
        const COUNT: usize = sca_uarch::NodeKind::COUNT;
        out.extend(
            self.power[start * COUNT..end * COUNT]
                .iter()
                .skip(k)
                .step_by(COUNT),
        );
    }
}

impl PipelineObserver for ComponentPowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.cycles < needed {
            self.power.resize(needed * sca_uarch::NodeKind::COUNT, 0.0);
            self.cycles = needed;
        }
    }

    fn node_event(&mut self, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.cycles <= idx {
            self.power
                .resize((idx + 1) * sca_uarch::NodeKind::COUNT, 0.0);
            self.cycles = idx + 1;
        }
        let kind = event.node.kind();
        self.power[idx * sca_uarch::NodeKind::COUNT + kind.index()] +=
            self.weights.power_of_kind(kind, &event);
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_uarch::Node;

    fn ev(cycle: u64, before: u32, after: u32) -> NodeEvent {
        NodeEvent {
            cycle,
            node: Node::Mdr,
            before,
            after,
        }
    }

    #[test]
    fn accumulates_power_per_cycle() {
        let mut rec =
            PowerRecorder::new(LeakageWeights::zero().with_hd(sca_uarch::NodeKind::Mdr, 1.0));
        rec.begin_cycle(0);
        rec.node_event(ev(0, 0, 0b111));
        rec.node_event(ev(0, 0, 0b1));
        rec.begin_cycle(1);
        rec.node_event(ev(1, 0, 0b11));
        assert_eq!(rec.cycle_power(), &[4.0, 2.0]);
    }

    #[test]
    fn window_extraction() {
        let mut rec =
            PowerRecorder::new(LeakageWeights::zero().with_hd(sca_uarch::NodeKind::Mdr, 1.0));
        for c in 0..10 {
            rec.begin_cycle(c);
            rec.node_event(ev(c, 0, 1));
        }
        rec.trigger(3, true);
        rec.trigger(7, false);
        assert_eq!(rec.windowed_power().len(), 4); // cycles 3..7
    }

    #[test]
    fn no_trigger_returns_everything() {
        let mut rec = PowerRecorder::new(LeakageWeights::cortex_a7());
        for c in 0..5 {
            rec.begin_cycle(c);
        }
        assert_eq!(rec.windowed_power().len(), 5);
    }

    #[test]
    fn reset_clears_data() {
        let mut rec = PowerRecorder::new(LeakageWeights::cortex_a7());
        rec.begin_cycle(0);
        rec.trigger(0, true);
        rec.reset();
        assert!(rec.cycle_power().is_empty());
        assert!(rec.triggers().is_empty());
    }
}
