//! Turning pipeline activity into per-cycle power.

use sca_uarch::{BlockObserver, NodeEvent, PipelineObserver};

use crate::LeakageWeights;

/// A [`PipelineObserver`] that integrates node switching activity into a
/// per-cycle power series, and records trigger edges for windowing.
///
/// One recorder observes one execution; the trace synthesizer then expands
/// cycles to oscilloscope samples, adds noise and averages executions.
#[derive(Clone, Debug)]
pub struct PowerRecorder {
    weights: LeakageWeights,
    /// Power accumulated per cycle index.
    power: Vec<f64>,
    /// `(cycle, level)` trigger edges in order.
    triggers: Vec<(u64, bool)>,
}

impl PowerRecorder {
    /// Creates a recorder with the given leakage weights.
    pub fn new(weights: LeakageWeights) -> PowerRecorder {
        PowerRecorder {
            weights,
            power: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// The raw per-cycle power series for the whole execution.
    pub fn cycle_power(&self) -> &[f64] {
        &self.power
    }

    /// Recorded trigger edges.
    pub fn triggers(&self) -> &[(u64, bool)] {
        &self.triggers
    }

    /// The per-cycle power inside the first high-trigger window.
    ///
    /// Returns the whole series when no trigger fired (bench code without
    /// `trig` instructions).
    pub fn windowed_power(&self) -> &[f64] {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return &self.power;
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map_or(self.power.len(), |(c, _)| *c as usize);
        let end = end.min(self.power.len());
        let start = start.min(end);
        &self.power[start..end]
    }

    /// Clears recorded data, keeping the weights (reuse across the
    /// averaged executions of one trace).
    pub fn reset(&mut self) {
        self.power.clear();
        self.triggers.clear();
    }
}

impl PipelineObserver for PowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.power.len() < needed {
            self.power.resize(needed, 0.0);
        }
    }

    fn node_event(&mut self, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.power.len() <= idx {
            self.power.resize(idx + 1, 0.0);
        }
        self.power[idx] += self.weights.power_of_kind(event.node.kind(), &event);
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

/// A [`BlockObserver`] integrating one power series *per lane* of a
/// lockstep [`sca_uarch::CpuBlock`] run.
///
/// Each lane's series is computed exactly as a scalar [`PowerRecorder`]
/// observing that lane alone would compute it: per-lane events arrive
/// in the same order, accumulate into the same `f64` per-cycle sums
/// (same addition order, hence bit-identical), and the shared trigger
/// edges delimit the same window for every lane.
/// Storage is lane-major interleaved (`power[cycle * lanes + lane]`):
/// the lockstep block emits each cycle's events lane-by-lane, so the
/// writes of one cycle land on adjacent slots instead of `lanes`
/// separate heap buffers — this recorder sits on the busiest observer
/// path of the whole campaign engine.
#[derive(Clone, Debug)]
pub struct BlockPowerRecorder {
    weights: LeakageWeights,
    lanes: usize,
    /// Lane-major interleaved per-cycle power.
    power: Vec<f64>,
    /// Cycles recorded so far (the stride count).
    cycles: usize,
    /// Shared `(cycle, level)` trigger edges in order.
    triggers: Vec<(u64, bool)>,
}

impl BlockPowerRecorder {
    /// Creates a recorder for up to `lanes` lanes.
    pub fn new(weights: LeakageWeights, lanes: usize) -> BlockPowerRecorder {
        BlockPowerRecorder {
            weights,
            lanes: lanes.max(1),
            power: Vec::new(),
            cycles: 0,
            triggers: Vec::new(),
        }
    }

    fn window(&self) -> (usize, usize) {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return (0, self.cycles);
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map_or(self.cycles, |(c, _)| *c as usize)
            .min(self.cycles);
        (start.min(end), end)
    }

    /// The per-cycle power of one lane inside the first high-trigger
    /// window (whole series when no trigger fired) — the block analogue
    /// of [`PowerRecorder::windowed_power`].
    pub fn windowed_power(&self, lane: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.windowed_power_into(lane, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`BlockPowerRecorder::windowed_power`]: clears `out` and fills
    /// it with the lane's windowed series, reusing its capacity.
    pub fn windowed_power_into(&self, lane: usize, out: &mut Vec<f64>) {
        let (start, end) = self.window();
        out.clear();
        out.reserve(end - start);
        out.extend(
            self.power[start * self.lanes..end * self.lanes]
                .iter()
                .skip(lane)
                .step_by(self.lanes),
        );
    }

    /// Clears recorded data, keeping weights and lane capacity.
    pub fn reset(&mut self) {
        self.power.clear();
        self.cycles = 0;
        self.triggers.clear();
    }
}

impl BlockObserver for BlockPowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.cycles < needed {
            self.power.resize(needed * self.lanes, 0.0);
            self.cycles = needed;
        }
    }

    fn node_event(&mut self, lane: usize, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.cycles <= idx {
            self.power.resize((idx + 1) * self.lanes, 0.0);
            self.cycles = idx + 1;
        }
        self.power[idx * self.lanes + lane] +=
            self.weights.power_of_kind(event.node.kind(), &event);
    }

    fn node_events(&mut self, events: &[NodeEvent]) {
        let Some(first) = events.first() else {
            return;
        };
        let idx = first.cycle as usize;
        if self.cycles <= idx {
            self.power.resize((idx + 1) * self.lanes, 0.0);
            self.cycles = idx + 1;
        }
        // One kind/weight resolution for the whole batch; the per-lane
        // arithmetic below is exactly `power_of_kind`, so each lane's
        // slot receives the identical f64 the per-event path adds.
        let kind = first.node.kind();
        let whd = self.weights.hd(kind);
        let whw = self.weights.hw(kind);
        let base = idx * self.lanes;
        for (slot, event) in self.power[base..base + events.len()].iter_mut().zip(events) {
            *slot +=
                whd * f64::from(event.hamming_distance()) + whw * f64::from(event.hamming_weight());
        }
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

/// A recorder that keeps one power series *per component kind*.
///
/// The paper attributes measured leakage to pipeline components
/// "following the common practice employed in EDA tools of ascribing the
/// power consumption of a signal to its driving circuit". The overall
/// probe signal superimposes all components (that is what the attacks
/// see), but the per-component characterization of Table 2 needs the
/// attribution; in simulation it is exact.
///
/// Storage is cycle-major (`power[cycle * COUNT + kind]`): the node
/// events of one cycle then land on one cache line, which matters
/// because this recorder observes every event of every characterization
/// execution. [`ComponentPowerRecorder::reset`] clears the data but
/// keeps the capacity, so a characterization worker reuses one recorder
/// across its whole index range without reallocating.
#[derive(Clone, Debug)]
pub struct ComponentPowerRecorder {
    weights: LeakageWeights,
    /// Cycle-major strided storage, `cycles × NodeKind::COUNT`.
    power: Vec<f64>,
    /// Cycles recorded so far (the stride count).
    cycles: usize,
    triggers: Vec<(u64, bool)>,
}

impl ComponentPowerRecorder {
    /// Creates a recorder with the given leakage weights.
    pub fn new(weights: LeakageWeights) -> ComponentPowerRecorder {
        ComponentPowerRecorder {
            weights,
            power: Vec::new(),
            cycles: 0,
            triggers: Vec::new(),
        }
    }

    /// Clears recorded data while keeping the weights and the allocated
    /// capacity (reuse across the averaged executions of a campaign).
    pub fn reset(&mut self) {
        self.power.clear();
        self.cycles = 0;
        self.triggers.clear();
    }

    fn window(&self) -> (usize, usize) {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return (0, self.cycles);
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map_or(self.cycles, |(c, _)| *c as usize)
            .min(self.cycles);
        (start.min(end), end)
    }

    /// The per-cycle power of one component inside the first trigger
    /// window (whole series when no trigger fired).
    pub fn windowed_power(&self, kind: sca_uarch::NodeKind) -> Vec<f64> {
        let mut out = Vec::new();
        self.windowed_power_into(kind, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`ComponentPowerRecorder::windowed_power`]: clears `out` and
    /// fills it with the windowed series, reusing its capacity.
    pub fn windowed_power_into(&self, kind: sca_uarch::NodeKind, out: &mut Vec<f64>) {
        let (start, end) = self.window();
        let k = kind.index();
        out.clear();
        out.reserve(end - start);
        const COUNT: usize = sca_uarch::NodeKind::COUNT;
        out.extend(
            self.power[start * COUNT..end * COUNT]
                .iter()
                .skip(k)
                .step_by(COUNT),
        );
    }
}

/// A [`BlockObserver`] keeping one per-component power series *per
/// lane* of a lockstep [`sca_uarch::CpuBlock`] run — the block analogue
/// of [`ComponentPowerRecorder`], with the same cycle-major strided
/// storage per lane.
///
/// Each lane's series is computed exactly as a scalar
/// [`ComponentPowerRecorder`] observing that lane alone would compute
/// it: the lane's events arrive in the same order, accumulate into the
/// same strided `f64` slots (same addition order, hence bit-identical),
/// and the shared trigger edges delimit the same window for every lane.
/// Unlike [`BlockPowerRecorder`], storage here stays *per lane* (one
/// cycle-major strided buffer each, exactly like the scalar
/// [`ComponentPowerRecorder`]): one lane's per-cycle component block is
/// a single cache line, and the characterization extracts each lane's
/// seven component series by re-walking that lane's (L1-resident)
/// buffer — an interleaved layout would spread every extraction stride
/// across `lanes` cache lines and thrash the gather.
#[derive(Clone, Debug)]
pub struct BlockComponentPowerRecorder {
    weights: LeakageWeights,
    /// One cycle-major strided series (`cycles × NodeKind::COUNT`) per
    /// lane.
    power: Vec<Vec<f64>>,
    /// Cycles recorded so far (shared: `begin_cycle` grows every lane).
    cycles: usize,
    /// Shared `(cycle, level)` trigger edges in order.
    triggers: Vec<(u64, bool)>,
}

impl BlockComponentPowerRecorder {
    /// Creates a recorder for up to `lanes` lanes.
    pub fn new(weights: LeakageWeights, lanes: usize) -> BlockComponentPowerRecorder {
        BlockComponentPowerRecorder {
            weights,
            power: vec![Vec::new(); lanes.max(1)],
            cycles: 0,
            triggers: Vec::new(),
        }
    }

    /// Clears recorded data, keeping weights and lane capacity.
    pub fn reset(&mut self) {
        for lane in &mut self.power {
            lane.clear();
        }
        self.cycles = 0;
        self.triggers.clear();
    }

    fn window(&self) -> (usize, usize) {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, h)| *h)
            .map(|(c, _)| *c as usize)
        else {
            return (0, self.cycles);
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, h)| !*h && *c as usize >= start)
            .map_or(self.cycles, |(c, _)| *c as usize)
            .min(self.cycles);
        (start.min(end), end)
    }

    /// Fills `out` with one lane's windowed per-cycle power for one
    /// component — the lane-indexed analogue of
    /// [`ComponentPowerRecorder::windowed_power_into`].
    pub fn windowed_power_into(&self, lane: usize, kind: sca_uarch::NodeKind, out: &mut Vec<f64>) {
        let (start, end) = self.window();
        let k = kind.index();
        out.clear();
        out.reserve(end - start);
        const COUNT: usize = sca_uarch::NodeKind::COUNT;
        out.extend(
            self.power[lane][start * COUNT..end * COUNT]
                .iter()
                .skip(k)
                .step_by(COUNT),
        );
    }
}

impl BlockObserver for BlockComponentPowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.cycles < needed {
            for series in &mut self.power {
                series.resize(needed * sca_uarch::NodeKind::COUNT, 0.0);
            }
            self.cycles = needed;
        }
    }

    fn node_event(&mut self, lane: usize, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.cycles <= idx {
            for series in &mut self.power {
                series.resize((idx + 1) * sca_uarch::NodeKind::COUNT, 0.0);
            }
            self.cycles = idx + 1;
        }
        let kind = event.node.kind();
        self.power[lane][idx * sca_uarch::NodeKind::COUNT + kind.index()] +=
            self.weights.power_of_kind(kind, &event);
    }

    fn node_events(&mut self, events: &[NodeEvent]) {
        let Some(first) = events.first() else {
            return;
        };
        let idx = first.cycle as usize;
        if self.cycles <= idx {
            for series in &mut self.power {
                series.resize((idx + 1) * sca_uarch::NodeKind::COUNT, 0.0);
            }
            self.cycles = idx + 1;
        }
        // Same batching as `BlockPowerRecorder::node_events`: resolve
        // the kind and both weights once, add the identical
        // `power_of_kind` value to each lane's strided slot.
        let kind = first.node.kind();
        let whd = self.weights.hd(kind);
        let whw = self.weights.hw(kind);
        let off = idx * sca_uarch::NodeKind::COUNT + kind.index();
        for (series, event) in self.power.iter_mut().zip(events) {
            series[off] +=
                whd * f64::from(event.hamming_distance()) + whw * f64::from(event.hamming_weight());
        }
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

impl PipelineObserver for ComponentPowerRecorder {
    fn begin_cycle(&mut self, cycle: u64) {
        let needed = cycle as usize + 1;
        if self.cycles < needed {
            self.power.resize(needed * sca_uarch::NodeKind::COUNT, 0.0);
            self.cycles = needed;
        }
    }

    fn node_event(&mut self, event: NodeEvent) {
        let idx = event.cycle as usize;
        if self.cycles <= idx {
            self.power
                .resize((idx + 1) * sca_uarch::NodeKind::COUNT, 0.0);
            self.cycles = idx + 1;
        }
        let kind = event.node.kind();
        self.power[idx * sca_uarch::NodeKind::COUNT + kind.index()] +=
            self.weights.power_of_kind(kind, &event);
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_uarch::Node;

    fn ev(cycle: u64, before: u32, after: u32) -> NodeEvent {
        NodeEvent {
            cycle,
            node: Node::Mdr,
            before,
            after,
        }
    }

    #[test]
    fn accumulates_power_per_cycle() {
        let mut rec =
            PowerRecorder::new(LeakageWeights::zero().with_hd(sca_uarch::NodeKind::Mdr, 1.0));
        rec.begin_cycle(0);
        rec.node_event(ev(0, 0, 0b111));
        rec.node_event(ev(0, 0, 0b1));
        rec.begin_cycle(1);
        rec.node_event(ev(1, 0, 0b11));
        assert_eq!(rec.cycle_power(), &[4.0, 2.0]);
    }

    #[test]
    fn window_extraction() {
        let mut rec =
            PowerRecorder::new(LeakageWeights::zero().with_hd(sca_uarch::NodeKind::Mdr, 1.0));
        for c in 0..10 {
            rec.begin_cycle(c);
            rec.node_event(ev(c, 0, 1));
        }
        rec.trigger(3, true);
        rec.trigger(7, false);
        assert_eq!(rec.windowed_power().len(), 4); // cycles 3..7
    }

    #[test]
    fn no_trigger_returns_everything() {
        let mut rec = PowerRecorder::new(LeakageWeights::cortex_a7());
        for c in 0..5 {
            rec.begin_cycle(c);
        }
        assert_eq!(rec.windowed_power().len(), 5);
    }

    #[test]
    fn reset_clears_data() {
        let mut rec = PowerRecorder::new(LeakageWeights::cortex_a7());
        rec.begin_cycle(0);
        rec.trigger(0, true);
        rec.reset();
        assert!(rec.cycle_power().is_empty());
        assert!(rec.triggers().is_empty());
    }
}
