//! Trace containers.

use serde::{Deserialize, Serialize};

/// A set of power traces with their per-trace input metadata.
///
/// Traces are stored row-major (`trace × sample`), all the same length;
/// inputs are opaque byte strings interpreted by the attack (e.g. the
/// 16-byte AES plaintext, or the random operand words of a
/// characterization benchmark).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceSet {
    samples_per_trace: usize,
    samples: Vec<f32>,
    inputs: Vec<Vec<u8>>,
}

impl TraceSet {
    /// Creates an empty set expecting traces of the given length.
    pub fn new(samples_per_trace: usize) -> TraceSet {
        TraceSet {
            samples_per_trace,
            samples: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the set holds no traces.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Samples per trace.
    pub fn samples_per_trace(&self) -> usize {
        self.samples_per_trace
    }

    /// Appends a trace. Shorter traces are zero-padded, longer ones
    /// truncated — executions may differ by a cycle or two of pipeline
    /// drain, and CPA requires a rectangular matrix.
    pub fn push(&mut self, mut trace: Vec<f32>, input: Vec<u8>) {
        trace.resize(self.samples_per_trace, 0.0);
        self.samples.extend_from_slice(&trace);
        self.inputs.push(input);
    }

    /// One trace's samples.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn trace(&self, index: usize) -> &[f32] {
        let start = index * self.samples_per_trace;
        &self.samples[start..start + self.samples_per_trace]
    }

    /// One trace's input metadata.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn input(&self, index: usize) -> &[u8] {
        &self.inputs[index]
    }

    /// Iterates `(input, trace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[f32])> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, input)| (input.as_slice(), self.trace(i)))
    }

    /// Pointwise mean trace.
    pub fn mean_trace(&self) -> Vec<f64> {
        let mut mean = vec![0.0f64; self.samples_per_trace];
        if self.is_empty() {
            return mean;
        }
        for i in 0..self.len() {
            for (m, &s) in mean.iter_mut().zip(self.trace(i)) {
                *m += f64::from(s);
            }
        }
        let n = self.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Returns a copy keeping only the first `samples` points of every
    /// trace — e.g. to focus CPA on the first AES round, as the paper's
    /// Figure 3 does.
    pub fn truncated(&self, samples: usize) -> TraceSet {
        self.window(0, samples)
    }

    /// Returns a copy keeping `samples` points starting at `start` —
    /// focusing the analysis on one region (the paper's Figure 4 spans
    /// only the SubBytes stores, ~0.7 µs).
    pub fn window(&self, start: usize, samples: usize) -> TraceSet {
        let start = start.min(self.samples_per_trace);
        let end = (start + samples).min(self.samples_per_trace);
        let mut out = TraceSet::new(end - start);
        for i in 0..self.len() {
            out.push(self.trace(i)[start..end].to_vec(), self.inputs[i].clone());
        }
        out
    }

    /// Merges another set with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the sample counts differ (a programming error in the
    /// acquisition pipeline).
    pub fn merge(&mut self, other: TraceSet) {
        assert_eq!(
            self.samples_per_trace, other.samples_per_trace,
            "cannot merge trace sets of different widths"
        );
        self.samples.extend_from_slice(&other.samples);
        self.inputs.extend(other.inputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut set = TraceSet::new(3);
        set.push(vec![1.0, 2.0, 3.0], vec![0xaa]);
        set.push(vec![4.0, 5.0], vec![0xbb]); // padded
        set.push(vec![6.0, 7.0, 8.0, 9.0], vec![0xcc]); // truncated
        assert_eq!(set.len(), 3);
        assert_eq!(set.trace(0), &[1.0, 2.0, 3.0]);
        assert_eq!(set.trace(1), &[4.0, 5.0, 0.0]);
        assert_eq!(set.trace(2), &[6.0, 7.0, 8.0]);
        assert_eq!(set.input(2), &[0xcc]);
    }

    #[test]
    fn mean_trace() {
        let mut set = TraceSet::new(2);
        set.push(vec![1.0, 3.0], vec![]);
        set.push(vec![3.0, 5.0], vec![]);
        assert_eq!(set.mean_trace(), vec![2.0, 4.0]);
        assert_eq!(TraceSet::new(2).mean_trace(), vec![0.0, 0.0]);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = TraceSet::new(2);
        a.push(vec![1.0, 2.0], vec![1]);
        let mut b = TraceSet::new(2);
        b.push(vec![3.0, 4.0], vec![2]);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.trace(1), &[3.0, 4.0]);
        assert_eq!(a.input(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = TraceSet::new(2);
        a.merge(TraceSet::new(3));
    }

    #[test]
    fn iter_pairs_inputs_with_traces() {
        let mut set = TraceSet::new(1);
        set.push(vec![1.0], vec![7]);
        set.push(vec![2.0], vec![8]);
        let pairs: Vec<(u8, f32)> = set.iter().map(|(i, t)| (i[0], t[0])).collect();
        assert_eq!(pairs, vec![(7, 1.0), (8, 2.0)]);
    }
}
