//! Trace-set persistence.
//!
//! A compact little-endian binary format (`SCAT` magic, version 1) so
//! campaigns can be acquired once and re-analyzed many times — the
//! paper's 100k-trace acquisitions are exactly the kind of artifact one
//! wants on disk. The format is self-contained and versioned; no
//! external serialization crate is required.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::TraceSet;

const MAGIC: &[u8; 4] = b"SCAT";
const VERSION: u32 = 1;

/// Writes a trace set to any writer.
///
/// # Errors
///
/// Propagates I/O errors. A `&mut` reference can be passed as the writer.
pub fn write_traces<W: Write>(mut writer: W, traces: &TraceSet) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(traces.samples_per_trace() as u64).to_le_bytes())?;
    writer.write_all(&(traces.len() as u64).to_le_bytes())?;
    for i in 0..traces.len() {
        let input = traces.input(i);
        writer.write_all(&(input.len() as u32).to_le_bytes())?;
        writer.write_all(input)?;
        for &sample in traces.trace(i) {
            writer.write_all(&sample.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a trace set from any reader.
///
/// # Errors
///
/// Returns `InvalidData` for bad magic/version or truncated content, and
/// propagates I/O errors.
pub fn read_traces<R: Read>(mut reader: R) -> io::Result<TraceSet> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a trace-set file",
        ));
    }
    let mut u32_buf = [0u8; 4];
    reader.read_exact(&mut u32_buf)?;
    let version = u32::from_le_bytes(u32_buf);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace-set version {version}"),
        ));
    }
    let mut u64_buf = [0u8; 8];
    reader.read_exact(&mut u64_buf)?;
    let samples = u64::from_le_bytes(u64_buf) as usize;
    reader.read_exact(&mut u64_buf)?;
    let count = u64::from_le_bytes(u64_buf) as usize;

    let mut set = TraceSet::new(samples);
    for _ in 0..count {
        reader.read_exact(&mut u32_buf)?;
        let input_len = u32::from_le_bytes(u32_buf) as usize;
        let mut input = vec![0u8; input_len];
        reader.read_exact(&mut input)?;
        let mut trace = Vec::with_capacity(samples);
        for _ in 0..samples {
            reader.read_exact(&mut u32_buf)?;
            trace.push(f32::from_le_bytes(u32_buf));
        }
        set.push(trace, input);
    }
    Ok(set)
}

impl TraceSet {
    /// Saves the set to a file (buffered).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_traces(BufWriter::new(File::create(path)?), self)
    }

    /// Loads a set from a file (buffered).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and format violations.
    pub fn load(path: impl AsRef<Path>) -> io::Result<TraceSet> {
        read_traces(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new(3);
        set.push(vec![1.0, -2.5, 3.25], vec![0xaa, 0xbb]);
        set.push(vec![0.0, 1e-7, -1e9], vec![]);
        set
    }

    #[test]
    fn round_trip_through_memory() {
        let set = sample_set();
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &set).expect("writes");
        let back = read_traces(buffer.as_slice()).expect("reads");
        assert_eq!(back.len(), set.len());
        assert_eq!(back.samples_per_trace(), set.samples_per_trace());
        for i in 0..set.len() {
            assert_eq!(back.trace(i), set.trace(i));
            assert_eq!(back.input(i), set.input(i));
        }
    }

    #[test]
    fn round_trip_through_file() {
        let set = sample_set();
        let path = std::env::temp_dir().join("sca_power_io_test.traces");
        set.save(&path).expect("saves");
        let back = TraceSet::load(&path).expect("loads");
        assert_eq!(back.len(), 2);
        assert_eq!(back.trace(0), set.trace(0));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(read_traces(&b"NOPE"[..]).is_err());
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &sample_set()).expect("writes");
        buffer[4] = 99; // corrupt version
        assert!(read_traces(buffer.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &sample_set()).expect("writes");
        buffer.truncate(buffer.len() - 3);
        assert!(read_traces(buffer.as_slice()).is_err());
    }

    #[test]
    fn empty_set_round_trips() {
        let set = TraceSet::new(5);
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &set).expect("writes");
        let back = read_traces(buffer.as_slice()).expect("reads");
        assert!(back.is_empty());
        assert_eq!(back.samples_per_trace(), 5);
    }
}
