//! Trace acquisition: run a program many times with random inputs and
//! synthesize the oscilloscope traces an attacker would capture.
//!
//! The protocol mirrors the paper's Section 4 setup:
//!
//! 1. the caller warms a [`Cpu`] (run the benchmark once so both cache
//!    levels are hot);
//! 2. for each trace, an input is drawn from a seeded RNG and staged into
//!    registers/memory;
//! 3. the benchmark runs `executions_per_trace` times (16 in the paper)
//!    with the *same* input; each execution's windowed per-cycle power is
//!    expanded to samples and gets fresh Gaussian noise;
//! 4. the executions are averaged into one stored trace.
//!
//! Acquisition is deterministic given the seed, independent of the thread
//! count: every trace derives its own RNG stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sca_uarch::{Cpu, CpuBlock, UarchError};

use crate::{
    BlockPowerRecorder, GaussianNoise, LeakageWeights, PowerRecorder, SamplingConfig, TraceSet,
};

/// Acquisition campaign parameters.
#[derive(Clone, Debug)]
pub struct AcquisitionConfig {
    /// Number of traces to record.
    pub traces: usize,
    /// Executions averaged into each trace (the paper uses 16).
    pub executions_per_trace: usize,
    /// Sampling chain model.
    pub sampling: SamplingConfig,
    /// Per-execution measurement noise.
    pub noise: GaussianNoise,
    /// Master seed; all randomness (inputs and noise) derives from it.
    pub seed: u64,
    /// Worker threads (1 = serial). Results are identical regardless.
    pub threads: usize,
}

impl AcquisitionConfig {
    /// A quick default: 1000 averaged traces, paper-like sampling.
    pub fn new(traces: usize) -> AcquisitionConfig {
        AcquisitionConfig {
            traces,
            executions_per_trace: 16,
            sampling: SamplingConfig::default(),
            noise: GaussianNoise::bare_metal(),
            seed: 0x5ca_1ab1e,
            threads: 1,
        }
    }

    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> AcquisitionConfig {
        self.seed = seed;
        self
    }

    /// Sets the thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> AcquisitionConfig {
        self.threads = threads.max(1);
        self
    }
}

/// The `power/simulator_runs` telemetry counter: simulator executions
/// started by trace synthesis (every `cpu.run` issued by
/// [`TraceSynthesizer::synth_into`] and
/// [`TraceSynthesizer::probe_samples`], across all threads).
///
/// Re-analysis paths that replay a stored corpus assert this counter
/// does not move — stored traces must never trigger resimulation. The
/// count is pure work, never wall clock, so it is byte-identical across
/// thread and lane counts (a diverged lockstep group counts nothing;
/// its scalar rerun counts once per trace, like every other trace).
fn simulator_runs_counter() -> &'static std::sync::Arc<sca_telemetry::Counter> {
    sca_telemetry::counter!("power/simulator_runs")
}

/// How many simulator executions trace synthesis has started in this
/// process so far. Monotonic; sample it before and after an operation
/// to count the runs it caused.
///
/// A thin shim over the `power/simulator_runs` counter in
/// [`sca_telemetry::global`] — kept so the exact-delta assertions
/// written against the old process-global counter stay valid verbatim.
pub fn simulator_runs() -> u64 {
    simulator_runs_counter().get()
}

/// Derives a statistically-independent child seed (SplitMix64 step).
fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reusable per-worker scratch for the allocation-free synthesis path
/// ([`TraceSynthesizer::synth_into`]): the f64 accumulation buffer the
/// averaged executions sum into and the per-execution expanded-sample
/// buffer. A campaign worker owns one of these (inside its `SimArena`)
/// for its entire index range.
#[derive(Clone, Debug, Default)]
pub struct SynthScratch {
    /// Execution-averaged power, in f64 (converted to f32 only at the
    /// end, exactly like the materializing path).
    accum: Vec<f64>,
    /// One execution's expanded (and noised) sample series.
    samples: Vec<f64>,
}

impl SynthScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> SynthScratch {
        SynthScratch::default()
    }
}

/// Synthesizes trace sets from a CPU, a leakage model and an acquisition
/// configuration.
#[derive(Clone, Debug)]
pub struct TraceSynthesizer {
    weights: LeakageWeights,
    config: AcquisitionConfig,
}

impl TraceSynthesizer {
    /// Creates a synthesizer.
    pub fn new(weights: LeakageWeights, config: AcquisitionConfig) -> TraceSynthesizer {
        TraceSynthesizer { weights, config }
    }

    /// The acquisition configuration.
    pub fn config(&self) -> &AcquisitionConfig {
        &self.config
    }

    /// The leakage weights (what a reusable [`PowerRecorder`] must be
    /// built with to reproduce this synthesizer's traces).
    pub fn weights(&self) -> &LeakageWeights {
        &self.weights
    }

    /// Acquires a trace set.
    ///
    /// * `cpu` — a loaded (and ideally warmed) CPU used as the template
    ///   for every execution.
    /// * `entry` — program entry point for each (re-)run.
    /// * `generate` — draws one input (opaque bytes) per trace.
    /// * `stage` — writes an input into CPU registers/memory; called
    ///   before *every* execution, so it must fully re-initialize any
    ///   memory the program mutates.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any execution.
    pub fn acquire<G, S>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
    ) -> Result<TraceSet, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
    {
        self.acquire_with(cpu, entry, generate, stage, |_, _| {})
    }

    /// Like [`TraceSynthesizer::acquire`], with a post-processing hook
    /// applied to each raw execution's samples (after leakage expansion
    /// and Gaussian noise). The OS-noise models in `sca-osnoise` inject
    /// co-resident workload power and trace jitter through this hook.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any execution.
    pub fn acquire_with<G, S, P>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        post: P,
    ) -> Result<TraceSet, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        let samples_per_trace = self.probe_samples(cpu, entry, &generate, &stage)?;

        let threads = self.config.threads.max(1).min(self.config.traces.max(1));
        if threads <= 1 {
            let mut set = TraceSet::new(samples_per_trace);
            let mut worker_cpu = cpu.clone();
            for t in 0..self.config.traces {
                let (trace, input) =
                    self.synthesize_trace(&mut worker_cpu, entry, t, &generate, &stage, &post)?;
                set.push(trace, input);
            }
            return Ok(set);
        }

        // Contiguous chunks per thread; merged in order afterwards.
        let chunk = self.config.traces.div_ceil(threads);
        let mut partials: Vec<Result<TraceSet, UarchError>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(self.config.traces);
                if lo >= hi {
                    break;
                }
                let generate = &generate;
                let stage = &stage;
                let post = &post;
                let template = cpu;
                handles.push(scope.spawn(move || {
                    let mut set = TraceSet::new(samples_per_trace);
                    let mut worker_cpu = template.clone();
                    for t in lo..hi {
                        let (trace, input) = self.synthesize_trace(
                            &mut worker_cpu,
                            entry,
                            t,
                            generate,
                            stage,
                            post,
                        )?;
                        set.push(trace, input);
                    }
                    Ok(set)
                }));
            }
            for handle in handles {
                partials.push(handle.join().expect("worker panicked"));
            }
        });
        let mut set = TraceSet::new(samples_per_trace);
        for partial in partials {
            set.merge(partial?);
        }
        Ok(set)
    }

    /// Draws trace `index`'s input without running the simulator.
    ///
    /// Replays the same RNG stream prefix [`TraceSynthesizer::synth_into`]
    /// uses (the input is drawn *before* any execution), so the returned
    /// bytes are bit-identical to the input the full synthesis would
    /// stage. Persistent trace stores use this to learn the input width
    /// — and to re-derive inputs — with zero simulator work.
    pub fn input_for<G>(&self, index: usize, generate: &G) -> Vec<u8>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
    {
        let mut rng = StdRng::seed_from_u64(child_seed(self.config.seed, index as u64));
        generate(&mut rng, index)
    }

    /// Probe run: determines the trace window length in samples by
    /// executing once with a throwaway input (index `usize::MAX`, so the
    /// probe's RNG stream never collides with a real trace's).
    ///
    /// Campaign engines call this up front so streaming sinks can size
    /// their accumulators before the first real trace exists.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn probe_samples<G, S>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: &G,
        stage: &S,
    ) -> Result<usize, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
    {
        let mut probe_cpu = cpu.clone();
        let mut rng = StdRng::seed_from_u64(child_seed(self.config.seed, u64::MAX));
        let input = generate(&mut rng, usize::MAX);
        probe_cpu.restart_seeded(entry, 0);
        stage(&mut probe_cpu, &input);
        let mut recorder = PowerRecorder::new(self.weights.clone());
        simulator_runs_counter().inc();
        probe_cpu.run(&mut recorder)?;
        Ok(self
            .config
            .sampling
            .sample_count(recorder.windowed_power().len()))
    }

    /// Synthesizes the single trace at `index`: draws the input from the
    /// trace's own seeded RNG stream, runs `executions_per_trace`
    /// executions, and averages them (noise and `post` applied per
    /// execution).
    ///
    /// A trace depends only on `(config.seed, index)` — never on the
    /// thread that produced it — which is the determinism contract the
    /// sharded campaign engine in `sca-campaign` is built on. `cpu` is a
    /// worker-local clone of the loaded template CPU.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn synthesize_trace<G, S, P>(
        &self,
        cpu: &mut Cpu,
        entry: u32,
        index: usize,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Result<(Vec<f32>, Vec<u8>), UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        let mut recorder = PowerRecorder::new(self.weights.clone());
        let mut scratch = SynthScratch::new();
        let mut trace = Vec::new();
        let input = self.synth_into(
            cpu,
            &mut recorder,
            &mut scratch,
            &mut trace,
            entry,
            index,
            None,
            generate,
            stage,
            post,
        )?;
        Ok((trace, input))
    }

    /// The allocation-free synthesis path: like
    /// [`TraceSynthesizer::synthesize_trace`], but every buffer — the
    /// simulator, the power recorder, the f64 accumulation scratch and
    /// the output f32 trace — is caller-owned and reused across calls.
    /// `recorder` must have been built with this synthesizer's
    /// [`TraceSynthesizer::weights`]; `trace` is cleared and filled with
    /// the averaged trace.
    ///
    /// Bit-for-bit identical to `synthesize_trace` (same RNG streams,
    /// same f64 accumulation order, same f32 conversion): the trace
    /// remains a pure function of `(config.seed, index)` no matter how
    /// many traces the buffers have already produced — the differential
    /// tests in `tests/campaign_determinism.rs` pin this.
    ///
    /// `clip`, when `Some((start, end))`, restricts sample synthesis to
    /// that end-exclusive window: out-of-window samples stay at zero
    /// (expansion skipped) and receive no noise (the noise RNG is still
    /// advanced identically, so in-window samples are bit-identical to
    /// the unclipped trace). Only pass a clip when everything past the
    /// window is discarded unseen — i.e. the campaign crops to exactly
    /// this window *and* `post` ignores the samples (the windowed
    /// engine passes a no-op post on the clipped path; OS-noise jitter,
    /// which shifts samples into the window, must run unclipped).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    #[allow(clippy::too_many_arguments)]
    pub fn synth_into<G, S, P>(
        &self,
        cpu: &mut Cpu,
        recorder: &mut PowerRecorder,
        scratch: &mut SynthScratch,
        trace: &mut Vec<f32>,
        entry: u32,
        index: usize,
        clip: Option<(usize, usize)>,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Result<Vec<u8>, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        let mut rng = StdRng::seed_from_u64(child_seed(self.config.seed, index as u64));
        let input = generate(&mut rng, index);
        let executions = self.config.executions_per_trace.max(1);
        scratch.accum.clear();
        let mut noise = self.config.noise;
        let keep = clip.unwrap_or((0, usize::MAX));
        for execution in 0..executions {
            let scramble = child_seed(
                self.config.seed ^ 0x5eed_0f0d_e500,
                (index as u64) << 8 | execution as u64,
            );
            cpu.restart_seeded(entry, scramble);
            stage(cpu, &input);
            recorder.reset();
            simulator_runs_counter().inc();
            cpu.run(recorder)?;
            self.config.sampling.expand_into_clipped(
                recorder.windowed_power(),
                &mut scratch.samples,
                keep,
            );
            noise.add_to_clipped(&mut rng, &mut scratch.samples, keep);
            post(&mut rng, &mut scratch.samples);
            if scratch.accum.is_empty() {
                scratch.accum.extend_from_slice(&scratch.samples);
            } else {
                crate::vecops::add_assign(&mut scratch.accum, &scratch.samples);
            }
        }
        let inv = 1.0 / executions as f64;
        trace.clear();
        crate::vecops::scaled_narrow_extend(trace, &scratch.accum, inv);
        Ok(input)
    }

    /// Lockstep multi-trace synthesis: like `count` consecutive
    /// [`TraceSynthesizer::synth_into`] calls for indices
    /// `base_index..base_index + count`, but every execution steps all
    /// traces through one [`CpuBlock`] in a single pipeline walk.
    ///
    /// Bit-for-bit identical to the scalar path by construction: each
    /// lane draws from its own per-index RNG streams (inputs, noise,
    /// scrambles) exactly as the scalar path does, and the block emits
    /// per-lane node events in the same order a scalar run would, so the
    /// f64 accumulation order matches. The differential tests in
    /// `sca-campaign` pin this across every lane count.
    ///
    /// Returns `None` when the block detects lockstep divergence (data-
    /// dependent control flow or timing); the caller must then fall back
    /// to the scalar path for these indices. No simulator runs are
    /// counted for a diverged group.
    ///
    /// `scratches` and `traces` must each hold at least `count` entries;
    /// `traces[0..count]` are cleared and filled.
    #[allow(clippy::too_many_arguments)]
    pub fn synth_block_into<G, S, P>(
        &self,
        block: &mut CpuBlock,
        recorder: &mut BlockPowerRecorder,
        scratches: &mut [SynthScratch],
        traces: &mut [Vec<f32>],
        entry: u32,
        base_index: usize,
        count: usize,
        clip: Option<(usize, usize)>,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Option<Vec<Vec<u8>>>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        assert!(count >= 1 && count <= block.max_lanes(), "bad lane count");
        assert!(scratches.len() >= count && traces.len() >= count);

        let mut rngs: Vec<StdRng> = (0..count)
            .map(|l| StdRng::seed_from_u64(child_seed(self.config.seed, (base_index + l) as u64)))
            .collect();
        let inputs: Vec<Vec<u8>> = (0..count)
            .map(|l| generate(&mut rngs[l], base_index + l))
            .collect();
        let executions = self.config.executions_per_trace.max(1);
        let mut noises: Vec<GaussianNoise> = vec![self.config.noise; count];
        for scratch in scratches.iter_mut().take(count) {
            scratch.accum.clear();
        }
        let keep = clip.unwrap_or((0, usize::MAX));
        // Gather buffer for one lane's windowed series (the recorder
        // stores lanes interleaved); grows once and is reused across
        // every (execution, lane) of this group.
        let mut windowed: Vec<f64> = Vec::new();
        let mut seeds = [0u64; sca_uarch::MAX_LANES];
        for execution in 0..executions {
            for (l, seed) in seeds.iter_mut().enumerate().take(count) {
                *seed = child_seed(
                    self.config.seed ^ 0x5eed_0f0d_e500,
                    ((base_index + l) as u64) << 8 | execution as u64,
                );
            }
            block.restart_seeded(entry, &seeds[..count]);
            for (l, input) in inputs.iter().enumerate() {
                stage(block.lane_mut(l), input);
            }
            recorder.reset();
            if block.run(recorder).is_err() {
                return None;
            }
            simulator_runs_counter().add(count as u64);
            for l in 0..count {
                let scratch = &mut scratches[l];
                recorder.windowed_power_into(l, &mut windowed);
                self.config
                    .sampling
                    .expand_into_clipped(&windowed, &mut scratch.samples, keep);
                noises[l].add_to_clipped(&mut rngs[l], &mut scratch.samples, keep);
                post(&mut rngs[l], &mut scratch.samples);
                if scratch.accum.is_empty() {
                    scratch.accum.extend_from_slice(&scratch.samples);
                } else {
                    crate::vecops::add_assign(&mut scratch.accum, &scratch.samples);
                }
            }
        }
        let inv = 1.0 / executions as f64;
        for l in 0..count {
            traces[l].clear();
            crate::vecops::scaled_narrow_extend(&mut traces[l], &scratches[l].accum, inv);
        }
        Some(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::{assemble, Reg};
    use sca_uarch::UarchConfig;

    fn fixture() -> (Cpu, u32) {
        // A benchmark that loads a word (driving the MDR) inside a trigger
        // window; the loaded value is the staged input. As in the paper,
        // nops pad the window so in-flight activity (the load completes 3
        // cycles after issue) lands before the trigger falls.
        let program = assemble(
            "
            trig #1
            ldr r1, [r10]
            nop
            nop
            nop
            nop
            nop
            nop
            trig #0
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        cpu.set_reg(Reg::R10, 0x800);
        (cpu, program.entry())
    }

    fn stage(cpu: &mut Cpu, input: &[u8]) {
        let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
        cpu.mem_mut().write_u32(0x800, word).unwrap();
    }

    #[test]
    fn acquisition_is_deterministic() {
        let (cpu, entry) = fixture();
        let config = AcquisitionConfig {
            traces: 6,
            executions_per_trace: 4,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise {
                sd: 1.0,
                baseline: 0.0,
            },
            seed: 99,
            threads: 1,
        };
        let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), config);
        let gen = |rng: &mut StdRng, _| {
            use rand::Rng;
            rng.gen::<u32>().to_le_bytes().to_vec()
        };
        let a = synth.acquire(&cpu, entry, gen, stage).unwrap();
        let b = synth.acquire(&cpu, entry, gen, stage).unwrap();
        assert_eq!(a.len(), 6);
        for i in 0..a.len() {
            assert_eq!(a.trace(i), b.trace(i));
            assert_eq!(a.input(i), b.input(i));
        }
    }

    #[test]
    fn threading_does_not_change_results() {
        let (cpu, entry) = fixture();
        let make = |threads| {
            let config = AcquisitionConfig {
                traces: 9,
                executions_per_trace: 2,
                sampling: SamplingConfig::per_cycle(),
                noise: GaussianNoise {
                    sd: 0.5,
                    baseline: 1.0,
                },
                seed: 1234,
                threads,
            };
            let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), config);
            synth
                .acquire(
                    &cpu,
                    entry,
                    |rng: &mut StdRng, _| {
                        use rand::Rng;
                        rng.gen::<u32>().to_le_bytes().to_vec()
                    },
                    stage,
                )
                .unwrap()
        };
        let serial = make(1);
        let parallel = make(4);
        assert_eq!(serial.len(), parallel.len());
        for i in 0..serial.len() {
            assert_eq!(serial.trace(i), parallel.trace(i), "trace {i}");
            assert_eq!(serial.input(i), parallel.input(i), "input {i}");
        }
    }

    #[test]
    fn input_for_matches_acquired_inputs_without_simulating() {
        let (cpu, entry) = fixture();
        let config = AcquisitionConfig {
            traces: 5,
            executions_per_trace: 2,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise {
                sd: 1.0,
                baseline: 0.0,
            },
            seed: 77,
            threads: 1,
        };
        let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), config);
        let gen = |rng: &mut StdRng, _| {
            use rand::Rng;
            rng.gen::<u32>().to_le_bytes().to_vec()
        };
        let set = synth.acquire(&cpu, entry, gen, stage).unwrap();
        for i in 0..set.len() {
            assert_eq!(synth.input_for(i, &gen), set.input(i), "trace {i}");
        }
        // Exact simulator-run-counter assertions live in the dedicated
        // single-test binary `tests/sim_counter.rs` (the counter is
        // process-global, so parallel unit tests would race it).
    }

    #[test]
    fn averaging_reduces_noise() {
        let (cpu, entry) = fixture();
        let acquire_with_avg = |executions| {
            let config = AcquisitionConfig {
                traces: 40,
                executions_per_trace: executions,
                sampling: SamplingConfig::per_cycle(),
                noise: GaussianNoise {
                    sd: 8.0,
                    baseline: 0.0,
                },
                seed: 7,
                threads: 1,
            };
            let synth = TraceSynthesizer::new(LeakageWeights::zero(), config);
            synth
                .acquire(&cpu, entry, |_, _| vec![0, 0, 0, 0], stage)
                .unwrap()
        };
        // With zero leakage weights and a fixed input, traces are pure
        // noise; their variance should shrink with averaging.
        let variance = |set: &TraceSet| {
            let mut acc = 0.0f64;
            let mut n = 0usize;
            for i in 0..set.len() {
                for &s in set.trace(i) {
                    acc += f64::from(s) * f64::from(s);
                    n += 1;
                }
            }
            acc / n as f64
        };
        let raw = variance(&acquire_with_avg(1));
        let averaged = variance(&acquire_with_avg(16));
        assert!(averaged < raw / 8.0, "raw {raw} averaged {averaged}");
    }

    #[test]
    fn signal_survives_averaging() {
        let (cpu, entry) = fixture();
        let config = AcquisitionConfig {
            traces: 2,
            executions_per_trace: 8,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise::none(),
            seed: 3,
            threads: 1,
        };
        let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), config);
        // Two fixed, different inputs: all-zeros vs all-ones word.
        let set = synth
            .acquire(
                &cpu,
                entry,
                |_, t| {
                    if t % 2 == 0 {
                        vec![0, 0, 0, 0]
                    } else {
                        vec![0xff; 4]
                    }
                },
                stage,
            )
            .unwrap();
        let e0: f32 = set.trace(0).iter().sum();
        let e1: f32 = set.trace(1).iter().sum();
        assert!(
            e1 > e0 + 1.0,
            "loading 0xffffffff must consume more modeled power: {e0} vs {e1}"
        );
    }
}
