//! # sca-power — leakage modeling and trace synthesis
//!
//! Converts the microarchitectural activity streamed by `sca-uarch` into
//! synthetic power traces, following the leakage hypothesis of Barenghi &
//! Pelosi (DAC 2018, Section 4): power is the weighted Hamming
//! distance/weight of value transitions on pipeline buffers, measured
//! through a band-limited sampling chain with Gaussian noise, acquired as
//! averages of 16 executions per input.
//!
//! * [`LeakageWeights`] — per-component weights (register file silent,
//!   shifter at 1/10, etc.);
//! * [`PowerRecorder`] — a `PipelineObserver` integrating per-cycle power;
//! * [`SamplingConfig`] — 500 MS/s-style cycle→sample expansion;
//! * [`GaussianNoise`]/[`NoiseSource`] — measurement and environment noise;
//! * [`TraceSynthesizer`]/[`AcquisitionConfig`] — deterministic,
//!   optionally multi-threaded campaign runner producing [`TraceSet`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod io;
mod model;
mod noise;
mod recorder;
mod sampling;
mod synth;
mod trace;
#[doc(hidden)]
pub mod vecops;

pub use io::{read_traces, write_traces};
pub use model::LeakageWeights;
pub use noise::{GaussianNoise, NoiseSource};
pub use recorder::{
    BlockComponentPowerRecorder, BlockPowerRecorder, ComponentPowerRecorder, PowerRecorder,
};
pub use sampling::{cycle_window_to_samples, SamplingConfig};
pub use synth::{simulator_runs, AcquisitionConfig, SynthScratch, TraceSynthesizer};
pub use trace::TraceSet;
