//! Share-distance verification: the static scan `sca-sched` runs over
//! its own output so the scheduler can *prove* the hardening held.
//!
//! The scheduler inserts scrubs so that two share-carrying memory
//! operations (align/MDR path) or two share register reads (operand
//! bus / IS-EX path) are never closer than the configured distance.
//! This module re-checks that property on an arbitrary instruction
//! stream, reporting violations with the linter's rule vocabulary:
//! residual memory-path adjacency as [`Rule::Sl107`], residual
//! operand-path adjacency as [`Rule::Sl102`] — the exact classes the
//! scrubs exist to break.
//!
//! Distance is counted in *datapath-occupying* instructions: a
//! control-flow instruction redirects fetch without refreshing the LSU
//! buffers or the operand buses, and the instruction after it in the
//! static stream may also be entered from elsewhere (a call or branch
//! target) with no intervening code at all — so branches contribute
//! zero separation ([`ShareSite::step`] is `false`).

use crate::report::Diagnostic;
use crate::rules::Rule;

/// One instruction of the stream under verification.
#[derive(Clone, Copy, Debug)]
pub struct ShareSite {
    /// Instruction address (for diagnostics).
    pub addr: u32,
    /// Share-carrying memory operation (the policy's marked ranges).
    pub share_mem: bool,
    /// Reads share registers.
    pub share_read: bool,
    /// Whether this instruction counts toward the separation distance.
    /// `false` for control flow, which neither refreshes the datapath
    /// nor guarantees the static successor is reached through it.
    pub step: bool,
}

/// Scans a stream for share ops closer than `min_distance`, returning
/// one diagnostic per violating pair.
pub fn residual_share_hazards(stream: &[ShareSite], min_distance: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut mem: Option<(usize, u32)> = None; // (distance since, addr of) last share mem op
    let mut read: Option<(usize, u32)> = None;
    for site in stream {
        if site.share_mem {
            if let Some((gap, prev_addr)) = mem {
                if gap < min_distance {
                    out.push(Diagnostic {
                        rule: Rule::Sl107,
                        addr_a: prev_addr,
                        addr_b: site.addr,
                        witness: format!(
                            "share memory ops {gap} apart (scheduler contract: >= {min_distance})"
                        ),
                        count: 0,
                    });
                }
            }
            mem = Some((0, site.addr));
        } else if let Some((gap, prev_addr)) = mem {
            mem = Some((gap + usize::from(site.step), prev_addr));
        }
        if site.share_read {
            if let Some((gap, prev_addr)) = read {
                if gap < min_distance {
                    out.push(Diagnostic {
                        rule: Rule::Sl102,
                        addr_a: prev_addr,
                        addr_b: site.addr,
                        witness: format!(
                            "share reads {gap} apart (scheduler contract: >= {min_distance})"
                        ),
                        count: 0,
                    });
                }
            }
            read = Some((0, site.addr));
        } else if let Some((gap, prev_addr)) = read {
            read = Some((gap + usize::from(site.step), prev_addr));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(addr: u32, share_mem: bool, share_read: bool) -> ShareSite {
        ShareSite {
            addr,
            share_mem,
            share_read,
            step: true,
        }
    }

    #[test]
    fn adjacent_shares_are_hazards() {
        let stream = [site(0, true, false), site(4, true, false)];
        let hazards = residual_share_hazards(&stream, 1);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].rule, Rule::Sl107);
        assert_eq!((hazards[0].addr_a, hazards[0].addr_b), (0, 4));
    }

    #[test]
    fn padded_shares_are_clean() {
        let stream = [
            site(0, true, true),
            site(4, false, false),
            site(8, true, true),
        ];
        assert!(residual_share_hazards(&stream, 1).is_empty());
        let hazards = residual_share_hazards(&stream, 2);
        assert_eq!(hazards.len(), 2, "distance 2 needs two fillers");
        assert_eq!(hazards[0].rule, Rule::Sl107);
        assert_eq!(hazards[1].rule, Rule::Sl102);
    }

    #[test]
    fn control_flow_provides_no_separation() {
        // strb; bx lr; ldrb — the call-boundary hazard: the branch
        // occupies a slot but leaves the align buffer holding the first
        // share when the second arrives.
        let stream = [
            site(0, true, false),
            ShareSite {
                addr: 4,
                share_mem: false,
                share_read: false,
                step: false,
            },
            site(8, true, false),
        ];
        let hazards = residual_share_hazards(&stream, 1);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].rule, Rule::Sl107);
        assert_eq!((hazards[0].addr_a, hazards[0].addr_b), (0, 8));
    }
}
