//! The concrete-path taint machine — the linter's main pass.
//!
//! Executes the program on its canonical staged input with the same
//! architectural semantics tables as [`sca_isa::Interp`] (`eval_dp`,
//! `apply_shift`, `eval_mul`, `decode`), carrying a [`Taint`] shadow
//! for every register, flag and memory byte. Because the targets are
//! constant-time by construction (the conformance premise of the whole
//! framework), one concrete path visits every instruction the
//! measurement window sees; loops revisit their bodies and the
//! per-site diagnostic join below iterates those revisits to a stable
//! set — the fixed point over branches and loops, taken along the real
//! path instead of an abstract one. (The flow-insensitive CFG pass in
//! [`crate::cfg`] complements this with an any-path fixed point for
//! the control/address rules.)
//!
//! At each executed instruction the machine records which values ride
//! the microarchitectural sharing points — operand slots, the store
//! data port, the shifter output, the write-back result, the memory
//! data register, the align buffer — and evaluates the pair rules
//! against the previous occupants, exactly where the paper places the
//! leakage nodes.

use std::collections::BTreeMap;

use sca_isa::{
    apply_shift, decode, eval_dp, eval_mul, Flags, Insn, InsnClass, InsnKind, MemDir, MemMultiMode,
    MemOffset, MemSize, Operand2, Program, Reg, ShiftAmount,
};
use sca_uarch::DualIssuePolicy;

use crate::report::Diagnostic;
use crate::rules::Rule;
use crate::spec::LintSpec;
use crate::taint::Taint;
use crate::LintError;

/// What one executed instruction placed on the shared paths.
#[derive(Clone, Default)]
struct IssueRecord {
    addr: u32,
    class: Option<InsnClass>,
    writes: sca_isa::RegSet,
    /// Operand slot 0 (`rn` / base register): (taint, concrete value).
    slot0: Option<(Taint, u32)>,
    /// Operand slot 1 (`op2` / offset register), pre-shift.
    slot1: Option<(Taint, u32)>,
    /// Store-data port.
    data: Option<(Taint, u32)>,
    /// Primary write-back result (`rd`).
    result: Option<(Taint, u32)>,
    /// Memory transfer: (taint, value, sub-word?).
    mem: Option<(Taint, u32, bool)>,
    /// Whether diagnostics are suppressed at this site (release span
    /// or outside the measurement window).
    suppressed: bool,
}

/// The taint machine: concrete architectural state plus taint shadows.
pub struct TaintMachine {
    regs: [u32; 16],
    flags: Flags,
    pc: u32,
    mem: Vec<u8>,
    halted: bool,
    treg: [Taint; 16],
    tflags: Taint,
    tmem: BTreeMap<u32, Taint>,
    policy: DualIssuePolicy,
    /// Inside the `trig #1` .. `trig #0` measurement window?
    in_window: bool,
    /// Program contains any trigger at all (if not, lint everything).
    has_trigger: bool,
    release: Vec<(u32, u32)>,
    prev: Option<IssueRecord>,
    /// Last sub-word access: (record, age in executed instructions).
    last_sub: Option<(IssueRecord, usize)>,
    findings: BTreeMap<(Rule, u32, u32), (String, usize)>,
}

impl TaintMachine {
    /// Builds the machine: loads the program, applies the spec's
    /// concrete staging and taint labels.
    ///
    /// # Errors
    ///
    /// [`LintError::BadAddress`] when staging falls outside memory,
    /// [`LintError::MissingSymbol`] for unresolved release spans.
    pub fn new(program: &Program, spec: &LintSpec) -> Result<TaintMachine, LintError> {
        let mut mem = vec![0u8; spec.mem_size() as usize];
        let image_end = program.base() as usize + program.len_bytes() as usize;
        if image_end > mem.len() {
            return Err(LintError::BadAddress(image_end as u32));
        }
        for (i, word) in program.words().iter().enumerate() {
            let at = program.base() as usize + 4 * i;
            mem[at..at + 4].copy_from_slice(&word.to_le_bytes());
        }
        let mut has_trigger = false;
        for word in program.words() {
            if matches!(
                decode(*word).map(|i| i.kind),
                Ok(InsnKind::Trig { high: true })
            ) {
                has_trigger = true;
            }
        }
        for (addr, bytes) in &spec.mem_init {
            let at = *addr as usize;
            if at + bytes.len() > mem.len() {
                return Err(LintError::BadAddress(*addr));
            }
            mem[at..at + bytes.len()].copy_from_slice(bytes);
        }
        let mut tmem = BTreeMap::new();
        for (addr, taint) in spec.labelled_bytes() {
            if addr as usize >= mem.len() {
                return Err(LintError::BadAddress(addr));
            }
            tmem.insert(addr, taint);
        }
        Ok(TaintMachine {
            regs: [0; 16],
            flags: Flags::default(),
            pc: program.entry(),
            mem,
            halted: false,
            treg: [Taint::clean(); 16],
            tflags: Taint::clean(),
            tmem,
            policy: DualIssuePolicy::cortex_a7(),
            in_window: !has_trigger,
            has_trigger,
            release: spec.resolve_release(program)?,
            prev: None,
            last_sub: None,
            findings: BTreeMap::new(),
        })
    }

    /// Runs to `halt` and returns the joined findings of the pair/HW
    /// rules, stable across loop revisits.
    ///
    /// # Errors
    ///
    /// Decode/access faults and [`LintError::StepBudgetExceeded`].
    pub fn run(&mut self, spec: &LintSpec, max_steps: u64) -> Result<Vec<Diagnostic>, LintError> {
        let mut steps = 0u64;
        while !self.halted {
            if steps >= max_steps {
                return Err(LintError::StepBudgetExceeded(max_steps));
            }
            self.step(spec)?;
            steps += 1;
        }
        Ok(self
            .findings
            .iter()
            .map(|(&(rule, addr_a, addr_b), (witness, count))| Diagnostic {
                rule,
                addr_a,
                addr_b,
                witness: witness.clone(),
                count: *count,
            })
            .collect())
    }

    fn record(&mut self, rule: Rule, addr_a: u32, addr_b: u32, witness: String) {
        let entry = self
            .findings
            .entry((rule, addr_a, addr_b))
            .or_insert_with(|| (witness, 0));
        entry.1 += 1;
    }

    fn suppressed_at(&self, addr: u32) -> bool {
        !self.in_window
            || self
                .release
                .iter()
                .any(|&(start, end)| addr >= start && addr < end)
    }

    // ---- architectural + taint step -----------------------------------

    fn operand(&self, reg: Reg, addr: u32) -> (u32, Taint) {
        if reg == Reg::PC {
            (addr.wrapping_add(8), Taint::clean())
        } else {
            (self.regs[reg.index()], self.treg[reg.index()])
        }
    }

    fn set_reg(&mut self, reg: Reg, value: u32, taint: Taint) {
        self.regs[reg.index()] = value;
        self.treg[reg.index()] = taint;
    }

    fn byte_taint(&self, addr: u32) -> Taint {
        self.tmem.get(&addr).copied().unwrap_or_default()
    }

    fn set_byte_taint(&mut self, addr: u32, taint: Taint) {
        if taint.is_clean() {
            self.tmem.remove(&addr);
        } else {
            self.tmem.insert(addr, taint);
        }
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, LintError> {
        let end = addr.checked_add(len).ok_or(LintError::BadAddress(addr))?;
        if end as usize > self.mem.len() {
            return Err(LintError::BadAddress(addr));
        }
        Ok(addr as usize)
    }

    /// Loads `size` bytes: concrete value, content taint (rows
    /// composed), using the LSU's align-down discipline.
    fn load(&self, addr: u32, size: MemSize) -> Result<(u32, Taint), LintError> {
        match size {
            MemSize::Byte => {
                let i = self.check(addr, 1)?;
                Ok((u32::from(self.mem[i]), self.byte_taint(addr)))
            }
            MemSize::Half => {
                let addr = addr & !1;
                let i = self.check(addr, 2)?;
                let value = u32::from(u16::from_le_bytes([self.mem[i], self.mem[i + 1]]));
                let b = [self.byte_taint(addr), self.byte_taint(addr + 1)];
                let clean = Taint::clean();
                Ok((value, Taint::compose_word([&b[0], &b[1], &clean, &clean])))
            }
            MemSize::Word => {
                let addr = addr & !3;
                let i = self.check(addr, 4)?;
                let value = u32::from_le_bytes([
                    self.mem[i],
                    self.mem[i + 1],
                    self.mem[i + 2],
                    self.mem[i + 3],
                ]);
                let b = [
                    self.byte_taint(addr),
                    self.byte_taint(addr + 1),
                    self.byte_taint(addr + 2),
                    self.byte_taint(addr + 3),
                ];
                Ok((value, Taint::compose_word([&b[0], &b[1], &b[2], &b[3]])))
            }
        }
    }

    fn store(
        &mut self,
        addr: u32,
        value: u32,
        size: MemSize,
        taint: &Taint,
    ) -> Result<(), LintError> {
        match size {
            MemSize::Byte => {
                let i = self.check(addr, 1)?;
                self.mem[i] = value as u8;
                self.set_byte_taint(addr, taint.extract_byte(0));
            }
            MemSize::Half => {
                let addr = addr & !1;
                let i = self.check(addr, 2)?;
                self.mem[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes());
                for b in 0..2 {
                    self.set_byte_taint(addr + b, taint.extract_byte(b as usize));
                }
            }
            MemSize::Word => {
                let addr = addr & !3;
                let i = self.check(addr, 4)?;
                self.mem[i..i + 4].copy_from_slice(&value.to_le_bytes());
                for b in 0..4 {
                    self.set_byte_taint(addr + b, taint.extract_byte(b as usize));
                }
            }
        }
        Ok(())
    }

    /// One instruction: concrete execution, taint transfer, leak-node
    /// recording and pair-rule evaluation.
    fn step(&mut self, spec: &LintSpec) -> Result<(), LintError> {
        let addr = self.pc;
        let i = self.check(addr & !3, 4)?;
        let word = u32::from_le_bytes([
            self.mem[i],
            self.mem[i + 1],
            self.mem[i + 2],
            self.mem[i + 3],
        ]);
        let insn = decode(word).map_err(|_| LintError::BadInstruction(addr))?;
        self.pc = addr.wrapping_add(4);

        let mut rec = IssueRecord {
            addr,
            class: Some(insn.class()),
            writes: insn.writes(),
            suppressed: self.suppressed_at(addr),
            ..IssueRecord::default()
        };

        if !insn.cond.passes(self.flags) {
            // A squashed conditional still occupies an issue slot but
            // drives no operands here (conservatively empty ports).
            self.finish_insn(spec, insn, rec);
            return Ok(());
        }

        match insn.kind {
            InsnKind::Nop => {}
            InsnKind::Trig { high } => {
                if self.has_trigger {
                    self.in_window = high;
                }
            }
            InsnKind::Halt => self.halted = true,
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let rn_vt = rn.map(|r| self.operand(r, addr));
                if let Some((v, t)) = rn_vt {
                    rec.slot0 = Some((t, v));
                }
                let (op2_val, op2_taint, shifter_carry) = match op2 {
                    Operand2::Imm(v) => (v, Taint::clean(), self.flags.c),
                    Operand2::Reg(rm) => {
                        let (v, t) = self.operand(rm, addr);
                        rec.slot1 = Some((t, v));
                        (v, t, self.flags.c)
                    }
                    Operand2::ShiftedReg { rm, kind, amount } => {
                        let (rm_val, rm_taint) = self.operand(rm, addr);
                        rec.slot1 = Some((rm_taint, rm_val));
                        let (amount_val, amount_taint) = match amount {
                            ShiftAmount::Imm(n) => (u32::from(n), Taint::clean()),
                            ShiftAmount::Reg(rs) => {
                                let (v, t) = self.operand(rs, addr);
                                (v & 0xff, t)
                            }
                        };
                        let out = apply_shift(kind, rm_val, amount_val, self.flags.c);
                        let taint = if amount_taint.is_clean() {
                            rm_taint.shift(kind, amount_val)
                        } else {
                            rm_taint.mix(&amount_taint)
                        };
                        // The shift pipe's output buffer holds this
                        // value — the SHIFT Hamming-weight node.
                        if amount_val != 0 && !rec.suppressed && taint.exposed() {
                            self.record(Rule::Sl104, addr, addr, spec.describe(&taint));
                        }
                        (out.value, taint, out.carry)
                    }
                };
                let rn_val = rn_vt.map_or(0, |(v, _)| v);
                let rn_taint = rn_vt.map_or(Taint::clean(), |(_, t)| t);
                let out = eval_dp(op, rn_val, op2_val, shifter_carry, self.flags);
                let result_taint =
                    dp_taint(op, &rn_taint, rn_val, &op2_taint, op2_val, &self.tflags);
                if set_flags || op.is_compare() {
                    self.flags = out.flags;
                    self.tflags = rn_taint.union(&op2_taint).to_flags();
                }
                if let Some(rd) = rd {
                    if rd == Reg::PC {
                        self.pc = out.value & !3;
                    } else {
                        self.set_reg(rd, out.value, result_taint);
                        rec.result = Some((result_taint, out.value));
                        // Exposed ALU result: the ALU-node HW leak.
                        if !rec.suppressed && result_taint.exposed() {
                            self.record(Rule::Sl103, addr, addr, spec.describe(&result_taint));
                        }
                    }
                }
            }
            InsnKind::Mul {
                op: _,
                set_flags,
                rd,
                rm,
                rs,
                ra,
            } => {
                let (rm_val, rm_taint) = self.operand(rm, addr);
                let (rs_val, rs_taint) = self.operand(rs, addr);
                rec.slot0 = Some((rm_taint, rm_val));
                rec.slot1 = Some((rs_taint, rs_val));
                let ra_vt = ra.map(|r| self.operand(r, addr));
                let value = eval_mul(rm_val, rs_val, ra_vt.map(|(v, _)| v));
                let mut taint = rm_taint.mix(&rs_taint);
                if let Some((_, t)) = ra_vt {
                    taint = taint.mix(&t);
                }
                if set_flags {
                    self.flags.n = value >> 31 != 0;
                    self.flags.z = value == 0;
                    self.tflags = taint.to_flags();
                }
                self.set_reg(rd, value, taint);
                rec.result = Some((taint, value));
                if !rec.suppressed && taint.exposed() {
                    self.record(Rule::Sl103, addr, addr, spec.describe(&taint));
                }
            }
            InsnKind::MulLong {
                signed,
                rd_hi,
                rd_lo,
                rm,
                rs,
            } => {
                let (rm_val, rm_taint) = self.operand(rm, addr);
                let (rs_val, rs_taint) = self.operand(rs, addr);
                rec.slot0 = Some((rm_taint, rm_val));
                rec.slot1 = Some((rs_taint, rs_val));
                let product = if signed {
                    (i64::from(rm_val as i32) * i64::from(rs_val as i32)) as u64
                } else {
                    u64::from(rm_val) * u64::from(rs_val)
                };
                let taint = rm_taint.mix(&rs_taint);
                self.set_reg(rd_lo, product as u32, taint);
                self.set_reg(rd_hi, (product >> 32) as u32, taint);
                rec.result = Some((taint, product as u32));
                if !rec.suppressed && taint.exposed() {
                    self.record(Rule::Sl103, addr, addr, spec.describe(&taint));
                }
            }
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr: mode,
            } => {
                let (base_val, base_taint) = self.operand(mode.base, addr);
                rec.slot0 = Some((base_taint, base_val));
                let mut addr_taint = base_taint;
                let offset_val = match mode.offset {
                    MemOffset::Imm(imm) => i64::from(imm),
                    MemOffset::Reg {
                        rm,
                        kind,
                        amount,
                        sub,
                    } => {
                        let (rm_val, rm_taint) = self.operand(rm, addr);
                        rec.slot1 = Some((rm_taint, rm_val));
                        addr_taint = addr_taint.union(&rm_taint);
                        let shifted =
                            apply_shift(kind, rm_val, u32::from(amount), self.flags.c).value;
                        if amount != 0 && !rec.suppressed {
                            let st = rm_taint.shift(kind, u32::from(amount));
                            if st.exposed() {
                                self.record(Rule::Sl104, addr, addr, spec.describe(&st));
                            }
                        }
                        if sub {
                            -i64::from(shifted)
                        } else {
                            i64::from(shifted)
                        }
                    }
                };
                let effective = (i64::from(base_val) + offset_val) as u32;
                let access_addr = match mode.index {
                    sca_isa::IndexMode::PostIndex => base_val,
                    _ => effective,
                };
                let data_vt = (dir == MemDir::Store).then(|| self.operand(rd, addr));
                if mode.writes_base() {
                    // Pointer bumps keep the base taint (base ± public
                    // immediate / offset labels).
                    let wb_taint = addr_taint;
                    self.set_reg(mode.base, effective, wb_taint);
                }
                match dir {
                    MemDir::Load => {
                        let (value, content) = self.load(access_addr, size)?;
                        // A table lookup's value depends on everything
                        // its *address* depends on — but a non-linear
                        // lookup strips the address's linear blinding,
                        // so only the secret/input labels carry over.
                        // (This is exactly why masked AES recomputes
                        // its table: the content contributes the fresh
                        // output mask.)
                        let mut taint = content;
                        for limb in 0..4 {
                            taint.secrets[limb] |= addr_taint.secrets[limb];
                            taint.inputs[limb] |= addr_taint.inputs[limb];
                        }
                        if rd == Reg::PC {
                            self.pc = value & !3;
                        } else {
                            self.set_reg(rd, value, taint);
                            rec.result = Some((taint, value));
                        }
                        rec.mem = Some((taint, value, size.is_subword()));
                    }
                    MemDir::Store => {
                        let (value, data_taint) = data_vt.expect("stores read their data register");
                        rec.data = Some((data_taint, value));
                        rec.mem = Some((data_taint, value, size.is_subword()));
                        self.store(access_addr, value, size, &data_taint)?;
                    }
                }
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                mode,
            } => {
                let (base_val, base_taint) = self.operand(base, addr);
                rec.slot0 = Some((base_taint, base_val));
                let n = regs.len() as u32;
                let start = match mode {
                    MemMultiMode::Ia => base_val,
                    MemMultiMode::Db => base_val.wrapping_sub(4 * n),
                };
                let new_base = match mode {
                    MemMultiMode::Ia => base_val.wrapping_add(4 * n),
                    MemMultiMode::Db => start,
                };
                let base_reloaded = dir == MemDir::Load && regs.contains(base);
                if writeback && !base_reloaded {
                    self.set_reg(base, new_base, base_taint);
                }
                let mut branch_target = None;
                let mut beats = Taint::clean();
                let mut last_value = 0u32;
                for (i, reg) in regs.iter().enumerate() {
                    let beat_addr = start.wrapping_add(4 * i as u32);
                    match dir {
                        MemDir::Load => {
                            let (value, taint) = self.load(beat_addr, MemSize::Word)?;
                            beats = beats.union(&taint);
                            last_value = value;
                            if reg == Reg::PC {
                                branch_target = Some(value & !3);
                            } else {
                                self.set_reg(reg, value, taint);
                            }
                        }
                        MemDir::Store => {
                            let (value, taint) = self.operand(reg, addr);
                            beats = beats.union(&taint);
                            last_value = value;
                            self.store(beat_addr, value, MemSize::Word, &taint)?;
                        }
                    }
                }
                rec.mem = Some((beats, last_value, false));
                if dir == MemDir::Load {
                    rec.result = Some((beats, last_value));
                } else {
                    rec.data = Some((beats, last_value));
                }
                if let Some(target) = branch_target {
                    self.pc = target;
                }
            }
            InsnKind::Branch { link, offset } => {
                if link {
                    self.set_reg(Reg::LR, addr.wrapping_add(4), Taint::clean());
                }
                self.pc = addr
                    .wrapping_add(4)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            InsnKind::Bx { rm } => {
                let (v, _) = self.operand(rm, addr);
                self.pc = v & !3;
            }
        }
        self.finish_insn(spec, insn, rec);
        Ok(())
    }

    /// Pair-rule evaluation against the previous instruction and the
    /// align-buffer history, then history update.
    fn finish_insn(&mut self, spec: &LintSpec, insn: Insn, rec: IssueRecord) {
        let mut pending: Vec<(Rule, u32, u32, String)> = Vec::new();
        if let Some(prev) = &self.prev {
            let suppressed = rec.suppressed || prev.suppressed;
            if !suppressed {
                // SL101 — same operand slot of consecutive issues.
                for (a, b) in [
                    (&prev.slot0, &rec.slot0),
                    (&prev.slot1, &rec.slot1),
                    (&prev.data, &rec.data),
                ] {
                    if let Some(w) = pair_witness(spec, a, b) {
                        pending.push((Rule::Sl101, prev.addr, rec.addr, w));
                    }
                }
                // SL102 — dual-issue pairing: the policy can issue the
                // two together (and no RAW dependency forbids it), so
                // their operands cross the shared path the same cycle.
                let can_pair = match (prev.class, rec.class) {
                    (Some(older), Some(younger)) => {
                        self.policy.allows(older, younger)
                            && (insn.reads().iter().all(|r| !prev.writes.contains(r)))
                    }
                    _ => false,
                };
                if can_pair {
                    for (a, b) in [
                        (&prev.slot0, &rec.slot1),
                        (&prev.slot1, &rec.slot0),
                        (&prev.slot0, &rec.data),
                        (&prev.data, &rec.slot0),
                        (&prev.slot1, &rec.data),
                        (&prev.data, &rec.slot1),
                    ] {
                        if let Some(w) = pair_witness(spec, a, b) {
                            pending.push((Rule::Sl102, prev.addr, rec.addr, w));
                        }
                    }
                }
                // SL105 — adjacent write-back results in the EX/WB
                // buffer (includes load write-backs: the WB bus is the
                // same ExWb node).
                if let Some(w) = pair_witness(spec, &prev.result, &rec.result) {
                    pending.push((Rule::Sl105, prev.addr, rec.addr, w));
                }
                // SL106 — adjacent memory transfers through the MDR,
                // at least one sub-word (word-aligned word streams
                // replace the full register and showed no dynamic
                // leak; sub-word traffic is where remanence bites).
                if let (Some((ta, va, sa)), Some((tb, vb, sb))) = (&prev.mem, &rec.mem) {
                    if (*sa || *sb) && va != vb {
                        let hd = ta.xor(tb);
                        if hd.exposed() {
                            pending.push((
                                Rule::Sl106,
                                prev.addr,
                                rec.addr,
                                format!("HD({}, {})", spec.describe(ta), spec.describe(tb)),
                            ));
                        }
                    }
                }
            }
        }
        // SL107 — align-buffer remanence: two sub-word transfers at
        // most one instruction apart (the scheduler's share-distance
        // contract bounds remanence to the issue window).
        if let Some((taint_b, value_b, true)) = rec.mem {
            if let Some((sub, age)) = &self.last_sub {
                if *age <= 2 && !(rec.suppressed || sub.suppressed) {
                    if let Some((taint_a, value_a, _)) = sub.mem {
                        if value_a != value_b {
                            let hd = taint_a.xor(&taint_b);
                            if hd.exposed() {
                                pending.push((
                                    Rule::Sl107,
                                    sub.addr,
                                    rec.addr,
                                    format!(
                                        "HD({}, {})",
                                        spec.describe(&taint_a),
                                        spec.describe(&taint_b)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            self.last_sub = Some((rec.clone(), 0));
        } else if let Some((_, age)) = &mut self.last_sub {
            *age += 1;
        }
        for (rule, a, b, w) in pending {
            self.record(rule, a, b, w);
        }
        self.prev = Some(rec);
    }
}

/// Taint transfer of a data-processing op, mirroring `eval_dp`.
fn dp_taint(
    op: sca_isa::DpOp,
    rn: &Taint,
    rn_val: u32,
    op2: &Taint,
    op2_val: u32,
    flags: &Taint,
) -> Taint {
    use sca_isa::DpOp;
    match op {
        DpOp::Mov | DpOp::Mvn => *op2,
        DpOp::Eor => rn.xor(op2),
        DpOp::And => match (rn.is_clean(), op2.is_clean()) {
            (true, true) => Taint::clean(),
            (true, false) => op2.mask_and(rn_val),
            (false, true) => rn.mask_and(op2_val),
            (false, false) => rn.mix(op2),
        },
        DpOp::Bic => match (rn.is_clean(), op2.is_clean()) {
            (true, true) => Taint::clean(),
            // rd = rn & !op2: inversion keeps rows, the clean side
            // masks bit-wise.
            (true, false) => op2.mask_and(rn_val),
            (false, true) => rn.mask_and(!op2_val),
            (false, false) => rn.mix(op2),
        },
        DpOp::Orr => match (rn.is_clean(), op2.is_clean()) {
            (true, true) => Taint::clean(),
            (true, false) => op2.mask_orr(rn_val),
            (false, true) => rn.mask_orr(op2_val),
            (false, false) => rn.mix(op2),
        },
        DpOp::Add | DpOp::Sub | DpOp::Rsb => rn.mix(op2),
        DpOp::Adc | DpOp::Sbc => rn.mix(op2).mix(flags),
        // Compares produce no register result.
        DpOp::Cmp | DpOp::Cmn | DpOp::Tst | DpOp::Teq => Taint::clean(),
    }
}

/// HD witness of two same-path occupants, if the pair is exposed and
/// the concrete transition is non-trivial.
fn pair_witness(
    spec: &LintSpec,
    a: &Option<(Taint, u32)>,
    b: &Option<(Taint, u32)>,
) -> Option<String> {
    let (ta, va) = a.as_ref()?;
    let (tb, vb) = b.as_ref()?;
    // Identical concrete values produce no transition (HD = 0): the
    // same unmodified register riding the same port twice is not an
    // overwrite.
    if va == vb {
        return None;
    }
    let hd = ta.xor(tb);
    if hd.exposed() {
        Some(format!("HD({}, {})", spec.describe(ta), spec.describe(tb)))
    } else {
        None
    }
}
