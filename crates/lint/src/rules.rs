//! The rule set: static models of the paper's leakage nodes.
//!
//! Each rule predicts leakage on one microarchitectural component
//! ([`NodeKind`]) from the *program text alone*; the dynamic Table-2
//! characterization is the ground truth the `lint_differential` test
//! joins these predictions against. The contract is one-directional:
//! every dynamically RED `(model, component)` cell on an unprotected
//! target must be covered by a diagnostic of the matching rule class
//! inside the model's window, while static over-approximation (a rule
//! firing where the dynamic verdict stays black) is expected — the
//! linter models *possible* transitions, the measurement sees one
//! microarchitecture's realized ones.

use sca_uarch::NodeKind;

/// Diagnostic severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// A pairwise (Hamming-distance) leak of two exposed values in a
    /// shared pipeline resource — the directly attackable class.
    Error,
    /// A single exposed value on a zero-precharged resource
    /// (Hamming-weight leak), or secret-dependent control flow.
    Warning,
    /// An informational finding (secret-dependent addressing: a cache
    /// channel on real cores, invisible to this simulator's models).
    Note,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// The static leakage rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// Operand-bus / IS-EX buffer overwrite: the same operand slot of
    /// two consecutively issued instructions carries two exposed
    /// values, whose Hamming distance rides the shared bus and IS/EX
    /// pipeline registers.
    Sl101,
    /// Dual-issue pairing recombination: two adjacent instructions the
    /// issue policy can pair drive exposed values over the shared
    /// operand path in the same cycle (the class `sca-sched`'s scrub
    /// scheduler breaks).
    Sl102,
    /// Exposed ALU result: Hamming weight on the zero-precharged
    /// Dp/multiplier result path.
    Sl103,
    /// Exposed shifter output in the shift pipe's buffer.
    Sl104,
    /// Write-back / forwarding-path recombination: results of two
    /// consecutively retiring instructions meet in the EX/WB buffer.
    Sl105,
    /// Memory-data-register overwrite: two adjacent memory accesses
    /// (at least one sub-word) put exposed data in the MDR back to
    /// back.
    Sl106,
    /// Align-buffer remanence: two sub-word accesses within the issue
    /// window leave exposed bytes adjacent in the align buffer.
    Sl107,
    /// Secret-dependent memory addressing (cache channel on real
    /// hardware; table lookups keyed by secret data).
    Sl108,
    /// Secret-dependent control flow: a branch or conditional
    /// instruction guarded by flags computed from exposed data.
    Sl109,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::Sl101,
        Rule::Sl102,
        Rule::Sl103,
        Rule::Sl104,
        Rule::Sl105,
        Rule::Sl106,
        Rule::Sl107,
        Rule::Sl108,
        Rule::Sl109,
    ];

    /// Stable rule identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Sl101 => "SL101",
            Rule::Sl102 => "SL102",
            Rule::Sl103 => "SL103",
            Rule::Sl104 => "SL104",
            Rule::Sl105 => "SL105",
            Rule::Sl106 => "SL106",
            Rule::Sl107 => "SL107",
            Rule::Sl108 => "SL108",
            Rule::Sl109 => "SL109",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Sl101 => "bus-overwrite",
            Rule::Sl102 => "pairing-recombination",
            Rule::Sl103 => "alu-hw",
            Rule::Sl104 => "shift-hw",
            Rule::Sl105 => "writeback-recombination",
            Rule::Sl106 => "mdr-overwrite",
            Rule::Sl107 => "align-remanence",
            Rule::Sl108 => "tainted-address",
            Rule::Sl109 => "tainted-branch",
        }
    }

    /// Severity class.
    pub fn severity(self) -> Severity {
        match self {
            Rule::Sl101 | Rule::Sl102 | Rule::Sl105 | Rule::Sl106 | Rule::Sl107 => Severity::Error,
            Rule::Sl103 | Rule::Sl104 | Rule::Sl109 => Severity::Warning,
            Rule::Sl108 => Severity::Note,
        }
    }

    /// The pipeline component the rule models, when it maps to one of
    /// the dynamically characterized nodes ([`Rule::Sl108`]/
    /// [`Rule::Sl109`] model channels outside the power model).
    pub fn node(self) -> Option<NodeKind> {
        match self {
            Rule::Sl101 | Rule::Sl102 => Some(NodeKind::IsExBuffer),
            Rule::Sl103 => Some(NodeKind::Alu),
            Rule::Sl104 => Some(NodeKind::ShiftBuffer),
            Rule::Sl105 => Some(NodeKind::ExWbBuffer),
            Rule::Sl106 => Some(NodeKind::Mdr),
            Rule::Sl107 => Some(NodeKind::AlignBuffer),
            Rule::Sl108 | Rule::Sl109 => None,
        }
    }

    /// The rules predicting leakage on a given component — the join
    /// key of the static-vs-dynamic differential validation.
    pub fn for_node(node: NodeKind) -> Vec<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .filter(|r| r.node() == Some(node))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sorted() {
        let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn every_characterized_pair_component_has_an_error_rule() {
        // The components the dynamic characterization can mark RED and
        // that shared-buffer transitions explain; RegisterFile has no
        // static rule by design — if it ever turns RED dynamically, the
        // differential test must fail loudly.
        for node in [
            NodeKind::IsExBuffer,
            NodeKind::Alu,
            NodeKind::ShiftBuffer,
            NodeKind::ExWbBuffer,
            NodeKind::Mdr,
            NodeKind::AlignBuffer,
        ] {
            assert!(
                !Rule::for_node(node).is_empty(),
                "{node:?} lacks a static rule"
            );
        }
        assert!(Rule::for_node(NodeKind::RegisterFile).is_empty());
    }
}
