//! The any-path CFG pass: a classic forward-dataflow fixed point over
//! branches and loops for the *control and addressing* rules.
//!
//! Where the concrete pass ([`crate::exec`]) follows the real path,
//! this pass joins taint over **every** static path: states propagate
//! along fall-through edges, branch targets, calls and (conservatively)
//! from every `bx`-style return to every call's return site, iterated
//! to a fixed point. The domain is deliberately coarse — plain label
//! unions with no cancellation, and a per-run memory summary joined
//! into every load — so it over-approximates where data *could* flow,
//! but stays *optimistic about masks*: a value carrying any mask label
//! is treated as blinded (this pass never claims a mask cancels; the
//! exact linear algebra for that lives in the concrete pass).
//!
//! Two rules are evaluated here because they are about paths, not
//! pairs:
//!
//! * [`Rule::Sl108`] — a load/store whose *address* may carry exposed
//!   data: a cache/addressing channel on real cores (the simulator's
//!   power model is address-blind, so there is no dynamic column to
//!   validate against — the rule is reported as a note).
//! * [`Rule::Sl109`] — conditional control flow guarded by flags that
//!   may carry exposed data.
//!
//! Diagnostics are suppressed for instructions only reachable before
//! the `trig #1` measurement start (warm-up code), and inside release
//! spans.

use std::collections::BTreeMap;

use sca_isa::{decode, Cond, InsnKind, MemOffset, Operand2, Program, Reg, ShiftAmount};

use crate::report::Diagnostic;
use crate::rules::Rule;
use crate::spec::LintSpec;
use crate::taint::Taint;
use crate::LintError;

/// Per-instruction abstract state: register and flag label sets.
#[derive(Clone, PartialEq, Eq)]
struct AbsState {
    regs: [Taint; 16],
    flags: Taint,
}

impl AbsState {
    fn bottom() -> AbsState {
        AbsState {
            regs: [Taint::clean(); 16],
            flags: Taint::clean(),
        }
    }

    fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..16 {
            let joined = self.regs[i].union(&other.regs[i]);
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        let joined = self.flags.union(&other.flags);
        if joined != self.flags {
            self.flags = joined;
            changed = true;
        }
        changed
    }
}

/// Runs the fixed point and returns SL108/SL109 findings.
///
/// # Errors
///
/// Never fails on undecodable words (data in images is treated as
/// opaque); propagates nothing else today, the `Result` keeps the
/// signature uniform with the concrete pass.
pub fn analyze(program: &Program, spec: &LintSpec) -> Result<Vec<Diagnostic>, LintError> {
    let n = program.words().len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let insns: Vec<Option<sca_isa::Insn>> =
        program.words().iter().map(|&w| decode(w).ok()).collect();
    let base = program.base();
    let entry = ((program.entry().saturating_sub(base)) / 4) as usize;
    let release = spec.resolve_release(program)?;

    // Return sites: the instruction after every `bl`.
    let return_sites: Vec<usize> = insns
        .iter()
        .enumerate()
        .filter_map(|(i, insn)| match insn {
            Some(insn) => match insn.kind {
                InsnKind::Branch { link: true, .. } if i + 1 < n => Some(i + 1),
                _ => None,
            },
            None => None,
        })
        .collect();

    // Successor edges per instruction index.
    let successors = |i: usize| -> Vec<usize> {
        let Some(insn) = &insns[i] else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let fallthrough = i + 1 < n;
        match insn.kind {
            InsnKind::Halt => {}
            InsnKind::Branch { link, offset } => {
                let target = i as i64 + 1 + i64::from(offset);
                if (0..n as i64).contains(&target) {
                    out.push(target as usize);
                }
                // A call returns; a conditional branch falls through.
                if (link || insn.cond != Cond::Al) && fallthrough {
                    out.push(i + 1);
                }
            }
            InsnKind::Bx { .. } => {
                // Conservative return edge: to every call's return site.
                out.extend(return_sites.iter().copied());
                if insn.cond != Cond::Al && fallthrough {
                    out.push(i + 1);
                }
            }
            InsnKind::Dp {
                rd: Some(Reg::PC), ..
            } => {
                out.extend(return_sites.iter().copied());
                if insn.cond != Cond::Al && fallthrough {
                    out.push(i + 1);
                }
            }
            InsnKind::MemMulti { dir, regs, .. }
                if dir == sca_isa::MemDir::Load && regs.contains(Reg::PC) =>
            {
                out.extend(return_sites.iter().copied());
                if insn.cond != Cond::Al && fallthrough {
                    out.push(i + 1);
                }
            }
            InsnKind::Mem { dir, rd, .. } if dir == sca_isa::MemDir::Load && rd == Reg::PC => {
                out.extend(return_sites.iter().copied());
                if insn.cond != Cond::Al && fallthrough {
                    out.push(i + 1);
                }
            }
            _ => {
                if fallthrough {
                    out.push(i + 1);
                }
            }
        }
        out
    };

    // Pre-trigger set: instructions reachable from the entry without
    // crossing a `trig #1` — warm-up code outside the measurement.
    let mut pre_trigger = vec![false; n];
    let has_trigger = insns
        .iter()
        .flatten()
        .any(|insn| matches!(insn.kind, InsnKind::Trig { high: true }));
    if has_trigger {
        let mut stack = vec![entry.min(n - 1)];
        while let Some(i) = stack.pop() {
            if pre_trigger[i] {
                continue;
            }
            pre_trigger[i] = true;
            if matches!(
                insns[i].as_ref().map(|insn| insn.kind),
                Some(InsnKind::Trig { high: true })
            ) {
                continue;
            }
            stack.extend(successors(i));
        }
    }

    // The flow-insensitive memory summary: everything any store may
    // have written, joined into every load (addresses are opaque
    // statically). Labelled regions contribute their initial labels.
    let mut summary = Taint::clean();
    for (_, taint) in spec.labelled_bytes() {
        summary = summary.union(&taint);
    }

    let mut states: Vec<AbsState> = vec![AbsState::bottom(); n];
    // Bottom (never reached) and reached-with-all-clean look identical
    // as states, so reachability is tracked separately: a successor is
    // enqueued on first contact even when the join is a no-op.
    let mut reached = vec![false; n];
    let mut on_list = vec![false; n];
    let mut worklist: Vec<usize> = vec![entry.min(n - 1)];
    on_list[entry.min(n - 1)] = true;
    reached[entry.min(n - 1)] = true;
    // Round-robin until both the states and the store summary are
    // stable (the summary join restarts the worklist when it grows).
    loop {
        let mut summary_grew = false;
        while let Some(i) = worklist.pop() {
            on_list[i] = false;
            let mut state = states[i].clone();
            if let Some(insn) = &insns[i] {
                step_abs(insn, &mut state, &mut summary, &mut summary_grew);
            }
            for succ in successors(i) {
                let first = !reached[succ];
                reached[succ] = true;
                if (states[succ].join(&state) || first) && !on_list[succ] {
                    on_list[succ] = true;
                    worklist.push(succ);
                }
            }
        }
        if !summary_grew {
            break;
        }
        for (i, flag) in on_list.iter_mut().enumerate() {
            if reached[i] {
                *flag = true;
                worklist.push(i);
            }
        }
    }

    // Diagnostics from the stable states.
    let mut findings: BTreeMap<(Rule, u32), String> = BTreeMap::new();
    for (i, insn) in insns.iter().enumerate() {
        let Some(insn) = insn else { continue };
        let addr = base + 4 * i as u32;
        if !reached[i]
            || pre_trigger[i]
            || release
                .iter()
                .any(|&(start, end)| addr >= start && addr < end)
        {
            continue;
        }
        let state = &states[i];
        if let InsnKind::Mem { addr: mode, .. } = &insn.kind {
            let mut addr_taint = state.regs[mode.base.index()];
            if let MemOffset::Reg { rm, .. } = mode.offset {
                addr_taint = addr_taint.union(&state.regs[rm.index()]);
            }
            if addr_taint.exposed() {
                findings
                    .entry((Rule::Sl108, addr))
                    .or_insert_with(|| spec.describe(&addr_taint));
            }
        }
        let flag_guarded = insn.cond != Cond::Al;
        if flag_guarded && state.flags.exposed() {
            findings
                .entry((Rule::Sl109, addr))
                .or_insert_with(|| spec.describe(&state.flags));
        }
    }
    Ok(findings
        .into_iter()
        .map(|((rule, addr), witness)| Diagnostic {
            rule,
            addr_a: addr,
            addr_b: addr,
            witness,
            count: 0,
        })
        .collect())
}

/// Abstract transfer of one instruction: plain label unions.
fn step_abs(insn: &sca_isa::Insn, state: &mut AbsState, summary: &mut Taint, grew: &mut bool) {
    let operand = |state: &AbsState, reg: Reg| -> Taint {
        if reg == Reg::PC {
            Taint::clean()
        } else {
            state.regs[reg.index()]
        }
    };
    match insn.kind {
        InsnKind::Dp {
            op,
            set_flags,
            rd,
            rn,
            op2,
        } => {
            let mut taint = rn.map_or(Taint::clean(), |r| operand(state, r));
            match op2 {
                Operand2::Imm(_) => {}
                Operand2::Reg(rm) => taint = taint.union(&operand(state, rm)),
                Operand2::ShiftedReg { rm, amount, .. } => {
                    taint = taint.union(&operand(state, rm));
                    if let ShiftAmount::Reg(rs) = amount {
                        taint = taint.union(&operand(state, rs));
                    }
                }
            }
            if set_flags || op.is_compare() {
                state.flags = state.flags.union(&taint);
            }
            if let Some(rd) = rd {
                if rd != Reg::PC {
                    // Strong update: flow-sensitivity on registers is
                    // what keeps loop counters clean.
                    state.regs[rd.index()] = taint;
                }
            }
        }
        InsnKind::Mul {
            set_flags,
            rd,
            rm,
            rs,
            ra,
            ..
        } => {
            let mut taint = operand(state, rm).union(&operand(state, rs));
            if let Some(ra) = ra {
                taint = taint.union(&operand(state, ra));
            }
            if set_flags {
                state.flags = state.flags.union(&taint);
            }
            state.regs[rd.index()] = taint;
        }
        InsnKind::MulLong {
            rd_hi,
            rd_lo,
            rm,
            rs,
            ..
        } => {
            let taint = operand(state, rm).union(&operand(state, rs));
            state.regs[rd_hi.index()] = taint;
            state.regs[rd_lo.index()] = taint;
        }
        InsnKind::Mem {
            dir,
            rd,
            addr: mode,
            ..
        } => {
            let mut addr_taint = operand(state, mode.base);
            if let MemOffset::Reg { rm, .. } = mode.offset {
                addr_taint = addr_taint.union(&operand(state, rm));
            }
            if mode.writes_base() {
                state.regs[mode.base.index()] = addr_taint;
            }
            match dir {
                sca_isa::MemDir::Load => {
                    let taint = summary.union(&addr_taint);
                    if rd != Reg::PC {
                        state.regs[rd.index()] = taint;
                    }
                }
                sca_isa::MemDir::Store => {
                    let joined = summary.union(&operand(state, rd));
                    if joined != *summary {
                        *summary = joined;
                        *grew = true;
                    }
                }
            }
        }
        InsnKind::MemMulti {
            dir, base, regs, ..
        } => match dir {
            sca_isa::MemDir::Load => {
                let taint = summary.union(&operand(state, base));
                for reg in regs.iter() {
                    if reg != Reg::PC {
                        state.regs[reg.index()] = taint;
                    }
                }
            }
            sca_isa::MemDir::Store => {
                let mut joined = *summary;
                for reg in regs.iter() {
                    joined = joined.union(&operand(state, reg));
                }
                if joined != *summary {
                    *summary = joined;
                    *grew = true;
                }
            }
        },
        InsnKind::Branch { link: true, .. } => {
            state.regs[Reg::LR.index()] = Taint::clean();
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LintRegion, RegionKind};
    use sca_isa::assemble;

    fn spec() -> LintSpec {
        LintSpec {
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: 0x100,
                    len: 4,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: 0x200,
                    len: 4,
                    kind: RegionKind::Input,
                },
            ],
            ..LintSpec::default()
        }
    }

    #[test]
    fn secret_indexed_load_is_flagged() {
        let program = assemble(
            "
        mov   r1, #0x100
        ldrb  r2, [r1]          ; key byte
        mov   r1, #0x200
        ldrb  r3, [r1]          ; input byte
        eor   r2, r2, r3
        mov   r4, #0x400
        ldrb  r5, [r4, r2]      ; table lookup keyed by k ^ pt
        halt
        ",
        )
        .unwrap();
        let findings = analyze(&program, &spec()).unwrap();
        let sl108: Vec<_> = findings.iter().filter(|d| d.rule == Rule::Sl108).collect();
        assert_eq!(sl108.len(), 1, "{findings:?}");
        assert_eq!(sl108[0].addr_a, 24);
        assert!(sl108[0].witness.contains("K{"), "{}", sl108[0].witness);
    }

    #[test]
    fn secret_dependent_branch_is_flagged_through_a_loop() {
        let program = assemble(
            "
        mov   r1, #0x100
        ldrb  r2, [r1]
        mov   r1, #0x200
        ldrb  r3, [r1]
        eor   r2, r2, r3
loop:   subs  r2, r2, #1
        bne   loop
        halt
        ",
        )
        .unwrap();
        let findings = analyze(&program, &spec()).unwrap();
        assert!(
            findings.iter().any(|d| d.rule == Rule::Sl109),
            "{findings:?}"
        );
    }

    #[test]
    fn counter_loops_and_key_only_addresses_stay_quiet() {
        let program = assemble(
            "
        mov   r0, #4
        mov   r1, #0x100
loop:   ldrb  r2, [r1], #1      ; key-indexed walk, counter loop
        subs  r0, r0, #1
        bne   loop
        halt
        ",
        )
        .unwrap();
        let findings = analyze(&program, &spec()).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pre_trigger_code_is_suppressed() {
        let program = assemble(
            "
        mov   r1, #0x100
        ldrb  r2, [r1]
        mov   r1, #0x200
        ldrb  r3, [r1]
        eor   r2, r2, r3
        mov   r4, #0x400
        ldrb  r5, [r4, r2]      ; warm-up lookup, before the trigger
        trig  #1
        ldrb  r5, [r4, r2]      ; measured lookup
        trig  #0
        halt
        ",
        )
        .unwrap();
        let findings = analyze(&program, &spec()).unwrap();
        let sl108: Vec<_> = findings.iter().filter(|d| d.rule == Rule::Sl108).collect();
        assert_eq!(sl108.len(), 1, "{findings:?}");
        assert_eq!(sl108[0].addr_a, 32, "only the in-window lookup");
    }
}
