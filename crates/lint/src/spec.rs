//! What a target tells the linter: labelled memory regions, concrete
//! staging, and release (declassification) spans.

use sca_isa::Program;

use crate::taint::Taint;
use crate::LintError;

/// What kind of labels a region's bytes carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionKind {
    /// Secret material (key bytes / round keys): byte `i` of the
    /// region gets secret label `base + i`.
    Secret,
    /// Attacker-known varying inputs (plaintext): byte `i` gets input
    /// label `base + i`.
    Input,
    /// Fresh uniform randomness (Boolean masks): byte `i` gets mask
    /// label `base + i`, tracked linearly (at most 8 mask bytes).
    Mask,
}

/// One labelled memory region.
#[derive(Clone, Debug)]
pub struct LintRegion {
    /// Short name used in witnesses (`K`, `PT`, `M`).
    pub name: String,
    /// First byte address.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
    /// Label kind.
    pub kind: RegionKind,
}

/// A diagnostic-release span: `[start, end)` by symbol, where the
/// program intentionally de-blinds public outputs (ciphertext release).
/// Diagnostics are suppressed inside the span; taint still propagates,
/// so a release span can never launder secrets for downstream code.
#[derive(Clone, Debug)]
pub struct ReleaseSpan {
    /// Symbol naming the first released instruction.
    pub start: String,
    /// Symbol naming the first instruction past the span.
    pub end: String,
}

/// Everything the linter needs to know about a target besides its
/// program: the canonical concrete staging (so the taint machine can
/// execute the real path) and the taint labelling of that staging.
#[derive(Clone, Debug, Default)]
pub struct LintSpec {
    /// Concrete memory staging `(addr, bytes)` — tables, round keys,
    /// the canonical plaintext and mask bytes. Applied in order.
    pub mem_init: Vec<(u32, Vec<u8>)>,
    /// Labelled regions (applied after `mem_init`; a region may overlap
    /// staged bytes).
    pub regions: Vec<LintRegion>,
    /// Release spans, resolved against the linted program's symbols.
    pub release: Vec<ReleaseSpan>,
    /// Memory size for the concrete execution (0 = 64 KiB default).
    pub mem_size: u32,
    /// Step budget for the concrete execution (0 = 4M default).
    pub step_budget: u64,
}

impl LintSpec {
    /// Effective memory size.
    pub fn mem_size(&self) -> u32 {
        if self.mem_size == 0 {
            1 << 16
        } else {
            self.mem_size
        }
    }

    /// Effective step budget.
    pub fn step_budget(&self) -> u64 {
        if self.step_budget == 0 {
            4_000_000
        } else {
            self.step_budget
        }
    }

    /// The initial taint of every labelled byte, in region order.
    /// Secret and input labels wrap modulo 256, mask labels modulo 8
    /// (the linear-tracking capacity) — wrapping coarsens witnesses but
    /// never loses taint.
    pub fn labelled_bytes(&self) -> Vec<(u32, Taint)> {
        let mut out = Vec::new();
        let (mut nsec, mut ninp, mut nmask) = (0usize, 0usize, 0usize);
        for region in &self.regions {
            for i in 0..region.len {
                let taint = match region.kind {
                    RegionKind::Secret => Taint::secret(nsec + i as usize),
                    RegionKind::Input => Taint::input(ninp + i as usize),
                    RegionKind::Mask => Taint::mask_byte(nmask + i as usize),
                };
                out.push((region.addr + i, taint));
            }
            match region.kind {
                RegionKind::Secret => nsec += region.len as usize,
                RegionKind::Input => ninp += region.len as usize,
                RegionKind::Mask => nmask += region.len as usize,
            }
        }
        out
    }

    /// Resolves the release spans against a program's symbol table.
    ///
    /// # Errors
    ///
    /// [`LintError::MissingSymbol`] when a span names a symbol the
    /// program lacks — symbols survive `sca-sched` relocation, so this
    /// indicates a mispackaged spec, not a hardened program.
    pub fn resolve_release(&self, program: &Program) -> Result<Vec<(u32, u32)>, LintError> {
        self.release
            .iter()
            .map(|span| {
                let start = program
                    .symbol(&span.start)
                    .ok_or_else(|| LintError::MissingSymbol(span.start.clone()))?;
                let end = program
                    .symbol(&span.end)
                    .ok_or_else(|| LintError::MissingSymbol(span.end.clone()))?;
                Ok((start, end))
            })
            .collect()
    }

    /// Renders a taint as a compact deterministic witness string, e.g.
    /// `K{0,4-7}^PT{0}` or `K{2}^PT{2}+lin(M)`.
    pub fn describe(&self, taint: &Taint) -> String {
        let mut parts = Vec::new();
        let sec = bits_of(&taint.secrets);
        let inp = bits_of(&taint.inputs);
        if !sec.is_empty() {
            parts.push(format!(
                "{}{{{}}}",
                self.kind_name(RegionKind::Secret),
                ranges(&sec)
            ));
        }
        if !inp.is_empty() {
            parts.push(format!(
                "{}{{{}}}",
                self.kind_name(RegionKind::Input),
                ranges(&inp)
            ));
        }
        let mut s = if parts.is_empty() {
            "public".to_owned()
        } else {
            parts.join("^")
        };
        let linb = taint.lin_bits();
        if linb != 0 {
            let bytes: Vec<usize> = (0..8).filter(|b| linb >> (8 * b) & 0xff != 0).collect();
            s.push_str(&format!(
                "+lin({}{{{}}})",
                self.kind_name(RegionKind::Mask),
                ranges(&bytes)
            ));
        }
        if taint.nonlin != 0 {
            let bytes: Vec<usize> = (0..64).filter(|b| taint.nonlin >> b & 1 != 0).collect();
            s.push_str(&format!(
                "+nl({}{{{}}})",
                self.kind_name(RegionKind::Mask),
                ranges(&bytes)
            ));
        }
        s
    }

    /// First declared region name of a kind (fallback: a generic name).
    fn kind_name(&self, kind: RegionKind) -> &str {
        self.regions.iter().find(|r| r.kind == kind).map_or_else(
            || match kind {
                RegionKind::Secret => "K",
                RegionKind::Input => "IN",
                RegionKind::Mask => "M",
            },
            |r| r.name.as_str(),
        )
    }
}

/// Set bits of a 256-bit label set, as sorted indices.
fn bits_of(limbs: &[u64; 4]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, &limb) in limbs.iter().enumerate() {
        for b in 0..64 {
            if limb >> b & 1 != 0 {
                out.push(64 * i + b);
            }
        }
    }
    out
}

/// Renders sorted indices as compressed ranges: `0-3,7,12-15`.
fn ranges(sorted: &[usize]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            i += 1;
            end = sorted[i];
        }
        if end > start {
            parts.push(format!("{start}-{end}"));
        } else {
            parts.push(format!("{start}"));
        }
        i += 1;
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LintSpec {
        LintSpec {
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: 0x100,
                    len: 4,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: 0x200,
                    len: 4,
                    kind: RegionKind::Input,
                },
                LintRegion {
                    name: "M".into(),
                    addr: 0x300,
                    len: 2,
                    kind: RegionKind::Mask,
                },
            ],
            ..LintSpec::default()
        }
    }

    #[test]
    fn labels_are_sequential_per_kind() {
        let bytes = spec().labelled_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(bytes[0], (0x100, Taint::secret(0)));
        assert_eq!(bytes[5], (0x201, Taint::input(1)));
        assert_eq!(bytes[9], (0x301, Taint::mask_byte(1)));
    }

    #[test]
    fn witnesses_render_ranges() {
        let s = spec();
        let t = Taint::secret(0)
            .xor(&Taint::secret(1))
            .xor(&Taint::secret(2))
            .xor(&Taint::input(3));
        assert_eq!(s.describe(&t), "K{0-2}^PT{3}");
        assert_eq!(
            s.describe(&t.xor(&Taint::mask_byte(1))),
            "K{0-2}^PT{3}+lin(M{1})"
        );
        assert_eq!(
            s.describe(&t.xor(&Taint::mask_byte(0)).demote()),
            "K{0-2}^PT{3}+nl(M{0})"
        );
        assert_eq!(s.describe(&Taint::clean()), "public");
    }
}
