//! Compiler-style diagnostics and the deterministic report.

use std::collections::BTreeMap;

use sca_isa::Program;

use crate::rules::{Rule, Severity};

/// One finding: a rule, the instruction span it fires on, and a
/// witness naming the tainted values involved.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Address of the (older) instruction.
    pub addr_a: u32,
    /// Address of the younger instruction of a pair (equals `addr_a`
    /// for single-site rules).
    pub addr_b: u32,
    /// Witness: the tainted value(s) whose weight/distance leaks.
    pub witness: String,
    /// How many dynamic visits (loop iterations) produced the finding;
    /// 0 for purely static (CFG-pass) findings.
    pub count: usize,
}

impl Diagnostic {
    /// Severity, from the rule.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }

    /// Renders the diagnostic against the program it was found in,
    /// using the relocation metadata (symbols, source lines) the
    /// assembler and `sca-sched` maintain.
    pub fn render(&self, program: &Program) -> String {
        let site = |addr: u32| {
            let sym = symbol_context(program, addr);
            match program.source_line(addr) {
                Some(line) => format!("{addr:#06x} [{sym} line {line}]"),
                None => format!("{addr:#06x} [{sym}]"),
            }
        };
        let span = if self.addr_b == self.addr_a {
            site(self.addr_a)
        } else {
            format!("{} .. {}", site(self.addr_a), site(self.addr_b))
        };
        let visits = if self.count > 1 {
            format!(" (x{})", self.count)
        } else {
            String::new()
        };
        format!(
            "{} {} [{}] {}: {}{}",
            self.severity().label(),
            self.rule.id(),
            self.rule.name(),
            span,
            self.witness,
            visits
        )
    }
}

/// Nearest preceding symbol plus offset, e.g. `subbytes+0x8`.
fn symbol_context(program: &Program, addr: u32) -> String {
    let mut best: Option<(&str, u32)> = None;
    for (name, sym_addr) in program.symbols() {
        if sym_addr <= addr {
            match best {
                Some((_, b)) if b >= sym_addr => {}
                _ => best = Some((name, sym_addr)),
            }
        }
    }
    match best {
        Some((name, sym_addr)) if sym_addr == addr => name.to_owned(),
        Some((name, sym_addr)) => format!("{}+{:#x}", name, addr - sym_addr),
        None => "?".to_owned(),
    }
}

/// The full lint result for one program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (older address, rule, younger address).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report from an unsorted set of findings.
    pub fn from_findings(findings: Vec<Diagnostic>) -> LintReport {
        let mut diagnostics = findings;
        diagnostics.sort_by_key(|d| (d.addr_a, d.rule, d.addr_b));
        LintReport { diagnostics }
    }

    /// Whether the program lints clean (no findings of any severity).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings of one rule.
    pub fn by_rule(&self, rule: Rule) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// `rule id -> count` summary, in rule order.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule.id()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the deterministic multi-line report (one diagnostic per
    /// line, then a summary line).
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(program));
            out.push('\n');
        }
        if self.diagnostics.is_empty() {
            out.push_str("clean: no diagnostics\n");
        } else {
            let summary: Vec<String> = self
                .rule_counts()
                .into_iter()
                .map(|(id, n)| format!("{id}={n}"))
                .collect();
            out.push_str(&format!(
                "total: {} ({})\n",
                self.diagnostics.len(),
                summary.join(" ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::assemble;

    #[test]
    fn render_is_sorted_and_stable() {
        let program = assemble(
            "
start:  nop
f:      nop
        nop
        halt
        ",
        )
        .unwrap();
        let report = LintReport::from_findings(vec![
            Diagnostic {
                rule: Rule::Sl103,
                addr_a: 8,
                addr_b: 8,
                witness: "K{0}^PT{0}".into(),
                count: 2,
            },
            Diagnostic {
                rule: Rule::Sl101,
                addr_a: 4,
                addr_b: 8,
                witness: "HD(a, b)".into(),
                count: 1,
            },
        ]);
        let text = report.render(&program);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("error SL101"), "{text}");
        assert!(lines[0].contains("0x0004 [f"), "{text}");
        assert!(lines[1].starts_with("warning SL103"), "{text}");
        assert!(lines[1].contains("(x2)"), "{text}");
        assert_eq!(lines[2], "total: 2 (SL101=1 SL103=1)");
        assert_eq!(text, report.render(&program), "byte-stable");
    }

    #[test]
    fn clean_report() {
        let program = assemble("halt\n").unwrap();
        assert_eq!(
            LintReport::default().render(&program),
            "clean: no diagnostics\n"
        );
    }
}
