//! The taint domain: per-value secret/input labels plus an exact linear
//! model of Boolean masking.
//!
//! A [`Taint`] describes what one 32-bit value (or one memory byte)
//! depends on:
//!
//! * `secrets` / `inputs` — which *key bytes* and which *plaintext
//!   bytes* influence the value, as 256-bit label sets. These only
//!   grow: any data dependence, linear or not, keeps the label.
//! * `lin` — the value's dependence on *mask bits*, tracked exactly as
//!   long as it stays GF(2)-linear: row `r` is a bitset of the mask
//!   bits XORed into value bit `r`. XOR combines rows by XOR (so two
//!   values carrying the same mask **cancel** — the paper's
//!   `HD(S[x_i] ^ m, S[x_j] ^ m) = HD(S[x_i], S[x_j])` observation is
//!   literally this row arithmetic), and shifts/rotates by constants
//!   permute rows exactly.
//! * `nonlin` — mask *bytes* the value depends on non-linearly (after
//!   an add/multiply/variable shift). Non-linear mask dependence can
//!   never be shown to cancel, so it only unions.
//!
//! A value is **exposed** — statically predicted to leak under a
//! first-order attack — when it depends on both key and plaintext
//! material and no mask bit survives: `secrets ≠ ∅ ∧ inputs ≠ ∅ ∧
//! lin = 0 ∧ nonlin = ∅`. Key-only values (round-key loads) and
//! plaintext-only values are not exposed: with the key fixed across
//! traces they carry no per-trace exploitable variance pairing secrets
//! with known data, matching the dynamic CPA/TVLA ground truth.

use sca_isa::ShiftKind;

/// Number of `u64` limbs in a 256-entry label set.
const LIMBS: usize = 4;

/// Dependence labels of one value: secret bytes, input bytes, and an
/// exact linear (plus conservative non-linear) mask model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Taint {
    /// Secret-byte labels (one bit per labelled key byte, mod 256).
    pub secrets: [u64; LIMBS],
    /// Input-byte labels (one bit per labelled plaintext byte, mod 256).
    pub inputs: [u64; LIMBS],
    /// Row `r`: mask bits XORed into value bit `r` (64 mask-bit columns
    /// = 8 mask bytes).
    pub lin: [u64; 32],
    /// Mask-byte labels with non-linear influence on the value.
    pub nonlin: u64,
}

impl Default for Taint {
    fn default() -> Taint {
        Taint::clean()
    }
}

impl Taint {
    /// The untainted value: public, mask-free.
    pub fn clean() -> Taint {
        Taint {
            secrets: [0; LIMBS],
            inputs: [0; LIMBS],
            lin: [0; 32],
            nonlin: 0,
        }
    }

    /// A value carrying exactly one secret-byte label.
    pub fn secret(label: usize) -> Taint {
        let mut t = Taint::clean();
        t.secrets[(label / 64) % LIMBS] |= 1 << (label % 64);
        t
    }

    /// A value carrying exactly one input-byte label.
    pub fn input(label: usize) -> Taint {
        let mut t = Taint::clean();
        t.inputs[(label / 64) % LIMBS] |= 1 << (label % 64);
        t
    }

    /// A memory *byte* that is one fresh mask byte: value bit `r` is
    /// mask bit `8·label + r` for `r = 0..8`.
    pub fn mask_byte(label: usize) -> Taint {
        let mut t = Taint::clean();
        let label = label % 8;
        for r in 0..8 {
            t.lin[r] = 1 << (8 * label + r);
        }
        t
    }

    /// Whether the value carries no labels at all.
    pub fn is_clean(&self) -> bool {
        *self == Taint::clean()
    }

    /// Whether any secret label is present.
    pub fn has_secret(&self) -> bool {
        self.secrets.iter().any(|&l| l != 0)
    }

    /// Whether any input label is present.
    pub fn has_input(&self) -> bool {
        self.inputs.iter().any(|&l| l != 0)
    }

    /// OR of all linear rows: the mask bits with any linear influence.
    pub fn lin_bits(&self) -> u64 {
        self.lin.iter().fold(0, |acc, &row| acc | row)
    }

    /// Mask-*byte* labels touched by a set of mask-*bit* columns.
    fn bytes_of_bits(bits: u64) -> u64 {
        let mut bytes = 0u64;
        for byte in 0..8 {
            if bits >> (8 * byte) & 0xff != 0 {
                bytes |= 1 << byte;
            }
        }
        bytes
    }

    /// All mask-byte labels with any influence, linear or not.
    pub fn mask_bytes(&self) -> u64 {
        Taint::bytes_of_bits(self.lin_bits()) | self.nonlin
    }

    /// The exposure predicate: key- and input-dependent with no
    /// surviving mask.
    pub fn exposed(&self) -> bool {
        self.has_secret() && self.has_input() && self.lin_bits() == 0 && self.nonlin == 0
    }

    /// Label union (no cancellation) — the join used by the
    /// flow-insensitive CFG pass and for address/store-port taint.
    pub fn union(&self, other: &Taint) -> Taint {
        let mut out = *self;
        for i in 0..LIMBS {
            out.secrets[i] |= other.secrets[i];
            out.inputs[i] |= other.inputs[i];
        }
        for r in 0..32 {
            out.lin[r] |= other.lin[r];
        }
        out.nonlin |= other.nonlin;
        out
    }

    /// GF(2)-linear combination: labels union, linear rows XOR (mask
    /// cancellation is exact), non-linear labels union.
    pub fn xor(&self, other: &Taint) -> Taint {
        let mut out = self.union(other);
        for r in 0..32 {
            out.lin[r] = self.lin[r] ^ other.lin[r];
        }
        out
    }

    /// Non-linear combination (add/sub/multiply/variable shift):
    /// labels union, and every mask influence — including the linear
    /// rows of both operands — is demoted to non-linear, where it can
    /// never cancel again.
    pub fn mix(&self, other: &Taint) -> Taint {
        let mut out = self.union(other);
        out.nonlin |= Taint::bytes_of_bits(out.lin_bits());
        out.lin = [0; 32];
        out
    }

    /// In-place demotion of linear mask content to non-linear.
    pub fn demote(&self) -> Taint {
        self.mix(&Taint::clean())
    }

    /// Flag taint of an operation over these operands: value-bit
    /// structure is lost, so only label sets and demoted masks remain.
    pub fn to_flags(&self) -> Taint {
        self.demote()
    }

    /// Exact row transform of a constant-amount shift, mirroring
    /// [`sca_isa::apply_shift`]'s value semantics on the linear rows.
    pub fn shift(&self, kind: ShiftKind, amount: u32) -> Taint {
        let mut out = *self;
        let n = amount as usize;
        match kind {
            ShiftKind::Lsl => {
                for r in (0..32).rev() {
                    out.lin[r] = if r >= n { self.lin[r - n] } else { 0 };
                }
            }
            ShiftKind::Lsr => {
                for r in 0..32 {
                    out.lin[r] = if r + n < 32 { self.lin[r + n] } else { 0 };
                }
            }
            ShiftKind::Asr => {
                for r in 0..32 {
                    out.lin[r] = self.lin[(r + n).min(31)];
                }
            }
            ShiftKind::Ror => {
                let n = n % 32;
                for r in 0..32 {
                    out.lin[r] = self.lin[(r + n) % 32];
                }
            }
        }
        out
    }

    /// AND with a *public* constant: value bit `r` survives only where
    /// the constant has a 1 bit; a zero constant makes the value fully
    /// public.
    pub fn mask_and(&self, constant: u32) -> Taint {
        if constant == 0 {
            return Taint::clean();
        }
        let mut out = *self;
        for r in 0..32 {
            if constant >> r & 1 == 0 {
                out.lin[r] = 0;
            }
        }
        out
    }

    /// OR with a *public* constant: value bit `r` is forced public
    /// where the constant has a 1 bit.
    pub fn mask_orr(&self, constant: u32) -> Taint {
        if constant == u32::MAX {
            return Taint::clean();
        }
        let mut out = *self;
        for r in 0..32 {
            if constant >> r & 1 == 1 {
                out.lin[r] = 0;
            }
        }
        out
    }

    /// Taint of one stored byte `index` of this word (rows re-based to
    /// 0..8; label sets kept whole, conservatively).
    pub fn extract_byte(&self, index: usize) -> Taint {
        let mut out = *self;
        out.lin = [0; 32];
        for r in 0..8 {
            out.lin[r] = self.lin[8 * index + r];
        }
        out
    }

    /// Taint of a word loaded from four byte taints (little-endian).
    pub fn compose_word(bytes: [&Taint; 4]) -> Taint {
        let mut out = Taint::clean();
        for (i, b) in bytes.iter().enumerate() {
            out = out.union(b);
            for r in 0..8 {
                out.lin[8 * i + r] = b.lin[r];
            }
        }
        out
    }

    /// Whether `self`'s labels are all contained in `other`'s (with
    /// `lin` compared as presence, not row structure) — the partial
    /// order used for fixed-point convergence in the CFG pass.
    pub fn subset_of(&self, other: &Taint) -> bool {
        self.union(other) == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_needs_both_secret_and_input() {
        let k = Taint::secret(3);
        let p = Taint::input(7);
        assert!(!k.exposed(), "key-only values are not exposed");
        assert!(!p.exposed(), "input-only values are not exposed");
        assert!(k.xor(&p).exposed(), "key ^ input is exposed");
    }

    #[test]
    fn linear_masks_cancel_exactly() {
        let m = Taint::mask_byte(1);
        let a = Taint::secret(0).xor(&Taint::input(0)).xor(&m);
        let b = Taint::secret(1).xor(&Taint::input(1)).xor(&m);
        assert!(!a.exposed(), "masked value is blinded");
        assert!(
            a.xor(&b).exposed(),
            "the shared mask cancels in the pair difference"
        );
    }

    #[test]
    fn shifted_masks_do_not_cancel() {
        let m = Taint::mask_byte(0);
        let a = Taint::secret(0).xor(&Taint::input(0)).xor(&m);
        let b = a.shift(ShiftKind::Lsl, 1);
        assert!(
            !a.xor(&b).exposed(),
            "m ^ (m << 1) leaves live mask bits in the difference"
        );
    }

    #[test]
    fn nonlinear_masks_never_cancel() {
        let m = Taint::mask_byte(2);
        let a = Taint::secret(0).xor(&Taint::input(0)).xor(&m).demote();
        assert!(!a.exposed());
        assert!(!a.xor(&a).exposed(), "nonlinear blinding survives pairing");
    }

    #[test]
    fn and_with_zero_clears() {
        let a = Taint::secret(0).xor(&Taint::input(0));
        assert!(a.mask_and(0).is_clean());
        assert!(a.mask_and(0xff).exposed());
        assert!(a.mask_orr(u32::MAX).is_clean());
    }

    #[test]
    fn byte_round_trip() {
        let m = Taint::mask_byte(3);
        let word = Taint::compose_word([&m, &Taint::clean(), &m, &Taint::clean()]);
        assert_eq!(word.extract_byte(0), m);
        assert!(word.extract_byte(1).lin_bits() == 0);
        assert_eq!(word.extract_byte(2), m);
    }

    #[test]
    fn ror_rows_rotate() {
        let m = Taint::mask_byte(0);
        let r = m.shift(ShiftKind::Ror, 8);
        assert_eq!(r.lin[24..32], m.lin[0..8]);
        assert_eq!(r.shift(ShiftKind::Ror, 24), m, "rotations compose to id");
    }
}
