//! # sca-lint — static leakage analysis for `sca-isa` programs
//!
//! The paper's central claim is that side-channel leakage on a
//! superscalar core is decided by microarchitectural features the ISA
//! hides: operand buses and IS/EX buffers rewritten by consecutively
//! issued instructions, dual-issue pairing, the write-back path, and
//! the LSU's memory-data register and align buffer. The rest of this
//! workspace *measures* those effects by simulating millions of traces
//! and running CPA/TVLA over them; this crate *predicts* them from the
//! program text alone — a pre-silicon assessment tool in the spirit of
//! the dynamic pipeline, and validated against it.
//!
//! ## Architecture
//!
//! Two passes share one taint domain ([`Taint`]):
//!
//! * the **concrete-path taint machine** ([`exec`]) executes the
//!   target's canonical staged input with the same semantics tables as
//!   the reference interpreter, shadowing every register, flag and
//!   memory byte with labels — secret bytes, input bytes, and an
//!   *exact linear model of Boolean masking* that reproduces mask
//!   cancellation (`HD(a ^ m, b ^ m) = HD(a, b)`) algebraically. It
//!   evaluates the pairwise leak-node rules `SL101`–`SL107` at every
//!   sharing point, joining findings across loop revisits;
//! * the **CFG pass** ([`cfg`]) runs a classic any-path forward
//!   dataflow fixed point for the control/addressing rules
//!   `SL108`/`SL109`.
//!
//! Targets describe their staging and labels with a [`LintSpec`]
//! (wired through `sca-target`'s `CipherTarget::lint_spec`), and the
//! scheduler verifies its own output with [`schedule`]. The
//! `lint_differential` test at the workspace root joins this crate's
//! predictions against the dynamic Table-2 characterization — every
//! dynamically RED cell on the unprotected targets must be covered by
//! a diagnostic of the matching rule class, and the scheduled masked
//! AES must lint clean.
//!
//! ```
//! use sca_isa::assemble;
//! use sca_lint::{lint_program, LintRegion, LintSpec, RegionKind};
//!
//! // An unmasked table lookup of key ^ plaintext, stored twice in a
//! // row: the paper's consecutive-store leak, found statically.
//! let program = assemble("
//!     mov   r1, #0x100
//!     ldrb  r2, [r1]         ; key byte
//!     mov   r1, #0x200
//!     ldrb  r3, [r1]         ; plaintext byte
//!     eor   r2, r2, r3
//!     mov   r4, #0x300
//!     ldrb  r5, [r4, r2]     ; S-box lookup
//!     mov   r6, #0x400
//!     strb  r2, [r6], #1
//!     strb  r5, [r6], #1     ; back-to-back stores
//!     halt
//! ")?;
//! let spec = LintSpec {
//!     regions: vec![
//!         LintRegion { name: "K".into(), addr: 0x100, len: 1, kind: RegionKind::Secret },
//!         LintRegion { name: "PT".into(), addr: 0x200, len: 1, kind: RegionKind::Input },
//!     ],
//!     ..LintSpec::default()
//! };
//! let report = lint_program(&program, &spec)?;
//! assert!(!report.is_clean());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfg;
mod exec;
mod report;
mod rules;
pub mod schedule;
mod spec;
mod taint;

pub use report::{Diagnostic, LintReport};
pub use rules::{Rule, Severity};
pub use spec::{LintRegion, LintSpec, RegionKind, ReleaseSpan};
pub use taint::Taint;

use sca_isa::Program;

/// Why the linter could not analyze a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LintError {
    /// No decodable instruction at the concrete path's PC.
    BadInstruction(u32),
    /// Staging or a data access fell outside the configured memory.
    BadAddress(u32),
    /// The concrete pass hit its step budget before `halt`.
    StepBudgetExceeded(u64),
    /// A release span names a symbol the program lacks.
    MissingSymbol(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::BadInstruction(addr) => {
                write!(f, "no decodable instruction at {addr:#x}")
            }
            LintError::BadAddress(addr) => write!(f, "access out of range at {addr:#x}"),
            LintError::StepBudgetExceeded(steps) => write!(f, "no halt within {steps} steps"),
            LintError::MissingSymbol(sym) => {
                write!(f, "release span names unknown symbol `{sym}`")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Lints a program against a spec: runs the concrete-path taint
/// machine and the CFG fixed point, and merges their findings into one
/// deterministic report.
///
/// # Errors
///
/// Propagates [`LintError`] from either pass (bad staging, undecodable
/// concrete path, step budget, unresolved release symbols).
pub fn lint_program(program: &Program, spec: &LintSpec) -> Result<LintReport, LintError> {
    let mut machine = exec::TaintMachine::new(program, spec)?;
    let mut findings = machine.run(spec, spec.step_budget())?;
    findings.extend(cfg::analyze(program, spec)?);
    Ok(LintReport::from_findings(findings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::assemble;

    fn kp_spec() -> LintSpec {
        LintSpec {
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: 0x100,
                    len: 2,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: 0x200,
                    len: 2,
                    kind: RegionKind::Input,
                },
            ],
            mem_init: vec![(0x100, vec![0x2b, 0x7e]), (0x200, vec![0x32, 0x43])],
            ..LintSpec::default()
        }
    }

    #[test]
    fn consecutive_exposed_stores_fire_align_and_mdr_rules() {
        let program = assemble(
            "
        mov   r1, #0x100
        ldrb  r2, [r1]
        ldrb  r4, [r1, #1]
        mov   r1, #0x200
        ldrb  r3, [r1]
        ldrb  r5, [r1, #1]
        eor   r2, r2, r3
        eor   r4, r4, r5
        mov   r6, #0x400
        strb  r2, [r6], #1
        strb  r4, [r6], #1
        halt
        ",
        )
        .unwrap();
        let report = lint_program(&program, &kp_spec()).unwrap();
        for rule in [Rule::Sl106, Rule::Sl107, Rule::Sl101] {
            assert!(
                !report.by_rule(rule).is_empty(),
                "{rule:?} should fire:\n{}",
                report.render(&program)
            );
        }
    }

    #[test]
    fn shared_mask_cancels_in_pairs_but_distinct_masks_do_not() {
        // Masks are applied to the key bytes BEFORE the plaintext is
        // mixed in, so no single intermediate is ever exposed. With
        // the SAME mask on both shares the pair distance is exposed
        // (m cancels in the XOR); with distinct masks it stays blind.
        let src = |mask_b: &str| {
            format!(
                "
        mov   r1, #0x100
        ldrb  r2, [r1]         ; k0
        ldrb  r4, [r1, #1]     ; k1
        mov   r1, #0x300
        ldrb  r3, [r1]
        eor   r2, r2, r3       ; k0 ^ m0
        ldrb  r5, [r1, {mask_b}]
        eor   r4, r4, r5       ; k1 ^ m?
        mov   r1, #0x200
        ldrb  r3, [r1]
        eor   r2, r2, r3       ; k0 ^ pt0 ^ m0
        ldrb  r5, [r1, #1]
        eor   r4, r4, r5       ; k1 ^ pt1 ^ m?
        mov   r6, #0x400
        strb  r2, [r6], #1
        strb  r4, [r6], #1
        halt
        "
            )
        };
        let spec = LintSpec {
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: 0x100,
                    len: 2,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: 0x200,
                    len: 2,
                    kind: RegionKind::Input,
                },
                LintRegion {
                    name: "M".into(),
                    addr: 0x300,
                    len: 2,
                    kind: RegionKind::Mask,
                },
            ],
            mem_init: vec![
                (0x100, vec![0x2b, 0x7e]),
                (0x200, vec![0x32, 0x43]),
                (0x300, vec![0x5f, 0xa1]),
            ],
            ..LintSpec::default()
        };
        let same = lint_program(&assemble(&src("#0")).unwrap(), &spec).unwrap();
        assert!(
            !same.by_rule(Rule::Sl107).is_empty(),
            "shared mask cancels:\n{}",
            same.render(&assemble(&src("#0")).unwrap())
        );
        assert!(same.by_rule(Rule::Sl103).is_empty(), "singles stay blinded");
        let distinct = lint_program(&assemble(&src("#1")).unwrap(), &spec).unwrap();
        assert!(
            distinct.is_clean(),
            "distinct masks survive the pair:\n{}",
            distinct.render(&assemble(&src("#1")).unwrap())
        );
    }

    #[test]
    fn release_span_suppresses_but_does_not_launder() {
        let program = assemble(
            "
        mov   r1, #0x100
        ldrb  r2, [r1]
        mov   r1, #0x200
        ldrb  r3, [r1]
out:    eor   r2, r2, r3       ; released: public output
fin:    mov   r5, r2           ; taint still propagates
        add   r5, r5, r2
        halt
        ",
        )
        .unwrap();
        let mut spec = kp_spec();
        spec.release.push(ReleaseSpan {
            start: "out".into(),
            end: "fin".into(),
        });
        let report = lint_program(&program, &spec).unwrap();
        assert!(
            report.by_rule(Rule::Sl103).iter().all(|d| d.addr_a != 16),
            "released site is quiet:\n{}",
            report.render(&program)
        );
        assert!(
            !report.by_rule(Rule::Sl103).is_empty(),
            "downstream exposure is still caught:\n{}",
            report.render(&program)
        );
    }

    #[test]
    fn missing_release_symbol_is_an_error() {
        let program = assemble("halt\n").unwrap();
        let mut spec = LintSpec::default();
        spec.release.push(ReleaseSpan {
            start: "nope".into(),
            end: "nope".into(),
        });
        assert_eq!(
            lint_program(&program, &spec),
            Err(LintError::MissingSymbol("nope".into()))
        );
    }
}
