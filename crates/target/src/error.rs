//! Typed errors of the target-generic layers.
//!
//! A misconfigured target — a window hint naming a symbol the program
//! lacks, or a visit count the execution never reaches — used to abort
//! the whole portfolio binary with a panic in the middle of a campaign.
//! These are packaging mistakes the *caller* should be able to report
//! (which target, which symbol), so window resolution now returns a
//! typed [`WindowError`], and every target-generic entry point
//! (`TargetCampaign`, `characterize_target`, `audit_cipher_target`)
//! propagates a [`TargetError`] combining it with simulator faults.

use std::fmt;

use sca_campaign::CampaignError;
use sca_store::StoreError;
use sca_uarch::UarchError;

/// Why a symbol-level [`crate::WindowHint`] failed to resolve against a
/// target — always a target-definition (packaging) problem, never an
/// input-dependent one: the programs under test are constant-time, so
/// one probe run stands for all executions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// The hint names a symbol the target's program does not define.
    MissingSymbol {
        /// Target (registry) name.
        target: String,
        /// The missing symbol.
        symbol: String,
    },
    /// The symbol exists but is not retired `visit + 1` times after the
    /// trigger rises.
    MissingVisit {
        /// Target (registry) name.
        target: String,
        /// The symbol.
        symbol: String,
        /// 0-based visit index that was requested.
        visit: usize,
    },
    /// The probe execution never raised the trigger.
    NoTrigger {
        /// Target (registry) name.
        target: String,
    },
    /// The hint resolved to an empty (or inverted) cycle span.
    Empty {
        /// Target (registry) name.
        target: String,
    },
}

impl WindowError {
    /// The name of the misconfigured target.
    pub fn target(&self) -> &str {
        match self {
            WindowError::MissingSymbol { target, .. }
            | WindowError::MissingVisit { target, .. }
            | WindowError::NoTrigger { target }
            | WindowError::Empty { target } => target,
        }
    }
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::MissingSymbol { target, symbol } => {
                write!(f, "target '{target}': no '{symbol}' symbol in its program")
            }
            WindowError::MissingVisit {
                target,
                symbol,
                visit,
            } => write!(
                f,
                "target '{target}': fewer than {} visits to '{symbol}' inside the trigger window",
                visit + 1
            ),
            WindowError::NoTrigger { target } => {
                write!(f, "target '{target}': probe run raised no trigger")
            }
            WindowError::Empty { target } => {
                write!(
                    f,
                    "target '{target}': window hint resolves to an empty window"
                )
            }
        }
    }
}

impl std::error::Error for WindowError {}

/// An error from a target-generic campaign, characterization or audit:
/// either the target is misconfigured ([`WindowError`]) or the
/// simulator faulted ([`UarchError`]).
#[derive(Clone, Debug)]
pub enum TargetError {
    /// Simulator fault (bad fetch, cycle budget, memory access).
    Uarch(UarchError),
    /// Window-hint resolution failure (target packaging bug).
    Window(WindowError),
    /// A stored campaign failed: trace-store I/O or corruption, a
    /// checkpoint snapshot mismatch, or an injected kill point firing.
    Campaign(CampaignError),
}

impl TargetError {
    /// Whether this error is a [`CampaignError::Killed`] fault-injection
    /// abort — the one callers handle specially (exit code 3, resume).
    pub fn is_killed(&self) -> bool {
        matches!(self, TargetError::Campaign(CampaignError::Killed { .. }))
    }
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Uarch(e) => write!(f, "simulator fault: {e}"),
            TargetError::Window(e) => write!(f, "window resolution failed: {e}"),
            TargetError::Campaign(e) => write!(f, "stored campaign failed: {e}"),
        }
    }
}

impl std::error::Error for TargetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TargetError::Uarch(e) => Some(e),
            TargetError::Window(e) => Some(e),
            TargetError::Campaign(e) => Some(e),
        }
    }
}

impl From<UarchError> for TargetError {
    fn from(e: UarchError) -> TargetError {
        TargetError::Uarch(e)
    }
}

impl From<WindowError> for TargetError {
    fn from(e: WindowError) -> TargetError {
        TargetError::Window(e)
    }
}

impl From<CampaignError> for TargetError {
    fn from(e: CampaignError) -> TargetError {
        // A simulator fault is a simulator fault no matter which engine
        // path surfaced it — unwrap it so callers match one variant.
        match e {
            CampaignError::Uarch(e) => TargetError::Uarch(e),
            other => TargetError::Campaign(other),
        }
    }
}

impl From<StoreError> for TargetError {
    fn from(e: StoreError) -> TargetError {
        TargetError::Campaign(CampaignError::Store(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_errors_name_the_target() {
        let e = WindowError::MissingSymbol {
            target: "speck64128".into(),
            symbol: "no_such_label".into(),
        };
        assert_eq!(e.target(), "speck64128");
        let text = e.to_string();
        assert!(
            text.contains("speck64128") && text.contains("no_such_label"),
            "{text}"
        );

        let e = WindowError::MissingVisit {
            target: "present80".into(),
            symbol: "round".into(),
            visit: 31,
        };
        assert!(e.to_string().contains("fewer than 32"), "{e}");
    }

    #[test]
    fn target_error_wraps_and_sources() {
        use std::error::Error as _;
        let e = TargetError::from(WindowError::NoTrigger {
            target: "aes128".into(),
        });
        assert!(e.to_string().contains("aes128"));
        assert!(e.source().is_some());
        let e = TargetError::from(UarchError::BadAddress(0xdead));
        assert!(matches!(e, TargetError::Uarch(_)));
    }
}
