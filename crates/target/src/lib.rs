//! # sca-target — the cipher-target portfolio
//!
//! The paper's leakage-characterization + microarchitecture-aware CPA
//! methodology is a property of the *pipeline*, not of AES. This crate
//! makes that claim executable: the [`CipherTarget`] trait abstracts
//! everything a campaign needs from a cipher implementation — program
//! image, input staging, a golden reference, per-target leakage models
//! (value-level HW *and* microarchitecture-aware HD variants), and
//! windowing hints — and the portfolio registers four targets behind
//! it:
//!
//! | target | family | pipeline story |
//! |---|---|---|
//! | `aes128` | SPN, 8-bit S-box | the paper's Figure 3/4 baseline |
//! | `aes128-masked` | first-order masked SPN | Section 4.2 countermeasure |
//! | `speck64128` | ARX | shifter/rotate path + adder carry chains |
//! | `present80` | SPN, 4-bit S-box | sub-word align-buffer remanence |
//!
//! On top of the trait sit the target-generic layers:
//!
//! * [`TargetCampaign`] — CPA and fixed-vs-random TVLA campaigns over
//!   any `&dyn CipherTarget`, through the `sca-campaign` streaming
//!   engine (sinks and shard plans never see the concrete cipher);
//! * [`characterize_target`] — the Table-2-style per-component RED /
//!   black characterization of a target's models;
//! * [`resolve_window`] — turns a target's symbol-level
//!   [`WindowHint`]s into trigger-relative and absolute cycle windows
//!   by probing one (constant-time) execution;
//! * [`portfolio`] — the registry the `portfolio` experiment binary
//!   iterates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aes;
mod campaign;
mod charz;
mod error;
mod present;
mod registry;
mod speck;
mod traits;
mod window;

pub use aes::{AesTarget, MaskedAesTarget, PORTFOLIO_AES_KEY};
pub use campaign::{
    reanalyze_cpa, reanalyze_tvla, restore_cpa, restore_tvla, store_dir_name, CpaVerdict,
    TargetCampaign, TargetCampaignConfig, TargetStoreConfig, TvlaVerdict,
};
pub use charz::{
    characterize_target, NodeCharacterization, TargetCharacterization, CHARZ_COMPONENTS,
};
pub use error::{TargetError, WindowError};
pub use present::{
    present80_program, present_encrypt, present_encrypt_u64, present_p_layer, present_round_keys,
    present_sp_table, present_spread_tables, PresentSboxHw, PresentSim, PresentStoreHd,
    PresentTarget, PRESENT80_ASM, PRESENT_PHI_ADDR, PRESENT_PLO_ADDR, PRESENT_RK_ADDR,
    PRESENT_ROUNDS, PRESENT_SBOX, PRESENT_SP_ADDR, PRESENT_STATE_ADDR,
};
pub use registry::portfolio;
pub use speck::{
    speck64128_program, speck_encrypt, speck_encrypt_words, speck_invert_last_round, speck_round,
    speck_round_keys, SpeckLastRoundHw, SpeckSim, SpeckStoreHd, SpeckTarget, SPECK64128_ASM,
    SPECK_RK_ADDR, SPECK_ROUNDS, SPECK_STATE_ADDR,
};
pub use traits::{
    CipherTarget, InputCanonicalizer, ModelKind, SymbolVisit, TargetModel, WindowHint,
};
pub use window::{resolve_window, static_window, ResolvedWindow};
