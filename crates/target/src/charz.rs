//! Table-2-style per-component characterization of a cipher target.
//!
//! The paper's Table 2 characterizes each pipeline component against
//! per-kernel model expressions; this module does the same against a
//! *cipher*: the target's attack models, evaluated at the true key,
//! are correlated against each component's own power sub-trace inside
//! the target's analysis window, and each `(component, model)` cell
//! gets a RED/black verdict at the configured Fisher-z confidence —
//! exactly the characterization step the paper runs before mounting an
//! attack, generalized over the portfolio.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sca_analysis::{significance_threshold, PearsonAccumulator};
use sca_campaign::{run_sharded, Mergeable, ShardPlan};
use sca_power::{ComponentPowerRecorder, LeakageWeights, NoiseSource};
use sca_uarch::{Cpu, NodeKind, UarchError};

use crate::{resolve_window, CipherTarget, TargetCampaignConfig, TargetError, TargetModel};

/// The components characterized — Table 2's seven columns.
pub const CHARZ_COMPONENTS: [NodeKind; 7] = [
    NodeKind::RegisterFile,
    NodeKind::IsExBuffer,
    NodeKind::ShiftBuffer,
    NodeKind::Alu,
    NodeKind::ExWbBuffer,
    NodeKind::Mdr,
    NodeKind::AlignBuffer,
];

/// One `(component, model)` cell.
#[derive(Clone, Debug)]
pub struct NodeCharacterization {
    /// The pipeline component.
    pub component: NodeKind,
    /// Peak |correlation| inside the window.
    pub peak_corr: f64,
    /// RED (significant) or black.
    pub significant: bool,
}

/// One model's characterization row across all components.
#[derive(Clone, Debug)]
pub struct TargetCharacterization {
    /// The model (evaluated at the true key).
    pub model: String,
    /// Traces used.
    pub traces: usize,
    /// Detection confidence.
    pub confidence: f64,
    /// Per-component cells, in [`CHARZ_COMPONENTS`] order.
    pub cells: Vec<NodeCharacterization>,
}

impl TargetCharacterization {
    /// The compact RED/black verdict line the portfolio binary prints
    /// and the regression tests pin.
    pub fn verdict_line(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{}={}",
                    match c.component {
                        NodeKind::RegisterFile => "RF",
                        NodeKind::IsExBuffer => "ISEX",
                        NodeKind::ShiftBuffer => "SHIFT",
                        NodeKind::Alu => "ALU",
                        NodeKind::ExWbBuffer => "EXWB",
                        NodeKind::Mdr => "MDR",
                        NodeKind::AlignBuffer => "ALIGN",
                        NodeKind::FetchPath => "FETCH",
                    },
                    if c.significant { "RED" } else { "black" }
                )
            })
            .collect();
        format!("{}: {}", self.model, cells.join(" "))
    }
}

struct CharzSink {
    /// `models × components` Pearson accumulators.
    accs: Vec<Vec<PearsonAccumulator>>,
}

/// One characterization worker's reusable state — the multi-channel
/// analog of `sca_campaign::SimArena`: a staged CPU clone, a
/// per-component power recorder, and the per-trace scratch buffers, all
/// created once per shard and reused across its index range.
struct CharzWorker {
    cpu: Cpu,
    recorder: ComponentPowerRecorder,
    /// Per-component execution-averaged power (f64, one per component).
    accumulated: Vec<Vec<f64>>,
    /// One component's windowed per-cycle power.
    samples: Vec<f64>,
    /// The same, cropped to the analysis window and noised.
    cropped: Vec<f64>,
    /// Per-component averaged f32 channels handed to the accumulators.
    channels: Vec<Vec<f32>>,
}

impl CharzWorker {
    fn new(template: &Cpu, components: usize) -> CharzWorker {
        CharzWorker {
            cpu: template.clone(),
            recorder: ComponentPowerRecorder::new(LeakageWeights::cortex_a7()),
            accumulated: vec![Vec::new(); components],
            samples: Vec::new(),
            cropped: Vec::new(),
            channels: vec![Vec::new(); components],
        }
    }
}

impl Mergeable for CharzSink {
    fn merge(&mut self, other: CharzSink) {
        for (row, theirs) in self.accs.iter_mut().zip(&other.accs) {
            for (acc, that) in row.iter_mut().zip(theirs) {
                acc.merge(that);
            }
        }
    }
}

/// Characterizes a target's models against every pipeline component.
///
/// One sharded acquisition serves every `(model, component)` cell:
/// each trace records one power sub-trace per component (averaged over
/// the configured executions, with per-execution noise), cropped to
/// the target's primary window, and folds into per-cell Pearson
/// accumulators — the leakage-characterization analog of the CPA
/// campaigns, and deterministic under the same contract.
///
/// # Errors
///
/// Propagates simulator faults, and window misconfiguration as
/// [`TargetError::Window`].
pub fn characterize_target(
    target: &dyn CipherTarget,
    cpu: &Cpu,
    models: &[TargetModel],
    config: &TargetCampaignConfig,
    confidence: f64,
) -> Result<Vec<TargetCharacterization>, TargetError> {
    let window = resolve_window(target, cpu, &target.primary_window())?;
    // The characterization records per-cycle power (one sample per
    // cycle), so the shared end-exclusive conversion is the identity
    // here — but it keeps this crop on the same rounding contract as
    // the campaign engine's sample-rate expansion.
    let (start, len) = sca_power::cycle_window_to_samples(
        1.0,
        window.trigger_relative.0,
        window.trigger_relative.1,
    );

    let plan = ShardPlan {
        items: config.traces,
        threads: config.threads.max(1),
        batch: config.batch.max(1),
    };
    let entry = target.program().entry();
    let seed = config.seed ^ 0xc4a12;
    let noise = config.noise;
    let executions = config.executions_per_trace.max(1);
    let sink = run_sharded(
        &plan,
        || CharzWorker::new(cpu, CHARZ_COMPONENTS.len()),
        || CharzSink {
            accs: models
                .iter()
                .map(|_| {
                    CHARZ_COMPONENTS
                        .iter()
                        .map(|_| PearsonAccumulator::new(len))
                        .collect()
                })
                .collect(),
        },
        |worker, sink, range| {
            for t in range {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9e37));
                let input = target.generate(&mut rng, t);
                for channel in &mut worker.accumulated {
                    channel.clear();
                    channel.resize(len, 0.0);
                }
                for e in 0..executions {
                    worker
                        .cpu
                        .restart_seeded(entry, seed ^ ((t as u64) << 8 | e as u64));
                    target.stage(&mut worker.cpu, &input);
                    worker.recorder.reset();
                    worker.cpu.run(&mut worker.recorder)?;
                    let mut gauss = noise;
                    for (c, &kind) in CHARZ_COMPONENTS.iter().enumerate() {
                        worker
                            .recorder
                            .windowed_power_into(kind, &mut worker.samples);
                        worker.samples.resize(start + len, 0.0);
                        worker.cropped.clear();
                        worker
                            .cropped
                            .extend_from_slice(&worker.samples[start..start + len]);
                        gauss.add_to(&mut rng, &mut worker.cropped);
                        for (a, s) in worker.accumulated[c].iter_mut().zip(&worker.cropped) {
                            *a += s;
                        }
                    }
                }
                let inv = 1.0 / executions as f64;
                for (channel, accumulated) in worker.channels.iter_mut().zip(&worker.accumulated) {
                    channel.clear();
                    channel.extend(accumulated.iter().map(|&s| (s * inv) as f32));
                }
                for (model, row) in models.iter().zip(&mut sink.accs) {
                    let prediction = model.predict_true(&input);
                    for (acc, channel) in row.iter_mut().zip(&worker.channels) {
                        acc.add(prediction, channel);
                    }
                }
            }
            Ok::<(), UarchError>(())
        },
    )?;

    // Bonferroni over the window keeps the per-cell false-positive rate
    // at (1 - confidence).
    let corrected = 1.0 - (1.0 - confidence) / len.max(1) as f64;
    let threshold = significance_threshold(config.traces as u64, corrected);
    Ok(models
        .iter()
        .zip(&sink.accs)
        .map(|(model, row)| TargetCharacterization {
            model: model.name.clone(),
            traces: config.traces,
            confidence,
            cells: CHARZ_COMPONENTS
                .iter()
                .zip(row)
                .map(|(&component, acc)| {
                    let peak = acc
                        .correlations()
                        .iter()
                        .map(|c| c.abs())
                        .fold(0.0, f64::max);
                    NodeCharacterization {
                        component,
                        peak_corr: peak,
                        significant: peak >= threshold,
                    }
                })
                .collect(),
        })
        .collect())
}
