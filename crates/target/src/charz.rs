//! Table-2-style per-component characterization of a cipher target.
//!
//! The paper's Table 2 characterizes each pipeline component against
//! per-kernel model expressions; this module does the same against a
//! *cipher*: the target's attack models, evaluated at the true key,
//! are correlated against each component's own power sub-trace inside
//! the target's analysis window, and each `(component, model)` cell
//! gets a RED/black verdict at the configured Fisher-z confidence —
//! exactly the characterization step the paper runs before mounting an
//! attack, generalized over the portfolio.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sca_analysis::{significance_threshold, PearsonAccumulator};
use sca_campaign::{run_sharded, Mergeable, ShardPlan};
use sca_power::{
    BlockComponentPowerRecorder, ComponentPowerRecorder, GaussianNoise, LeakageWeights, NoiseSource,
};
use sca_uarch::{Cpu, CpuBlock, NodeKind, UarchError};

use crate::{resolve_window, CipherTarget, TargetCampaignConfig, TargetError, TargetModel};

/// The components characterized — Table 2's seven columns.
pub const CHARZ_COMPONENTS: [NodeKind; 7] = [
    NodeKind::RegisterFile,
    NodeKind::IsExBuffer,
    NodeKind::ShiftBuffer,
    NodeKind::Alu,
    NodeKind::ExWbBuffer,
    NodeKind::Mdr,
    NodeKind::AlignBuffer,
];

/// One `(component, model)` cell.
#[derive(Clone, Debug)]
pub struct NodeCharacterization {
    /// The pipeline component.
    pub component: NodeKind,
    /// Peak |correlation| inside the window.
    pub peak_corr: f64,
    /// RED (significant) or black.
    pub significant: bool,
}

/// One model's characterization row across all components.
#[derive(Clone, Debug)]
pub struct TargetCharacterization {
    /// The model (evaluated at the true key).
    pub model: String,
    /// Traces used.
    pub traces: usize,
    /// Detection confidence.
    pub confidence: f64,
    /// Per-component cells, in [`CHARZ_COMPONENTS`] order.
    pub cells: Vec<NodeCharacterization>,
}

impl TargetCharacterization {
    /// The compact RED/black verdict line the portfolio binary prints
    /// and the regression tests pin.
    pub fn verdict_line(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{}={}",
                    match c.component {
                        NodeKind::RegisterFile => "RF",
                        NodeKind::IsExBuffer => "ISEX",
                        NodeKind::ShiftBuffer => "SHIFT",
                        NodeKind::Alu => "ALU",
                        NodeKind::ExWbBuffer => "EXWB",
                        NodeKind::Mdr => "MDR",
                        NodeKind::AlignBuffer => "ALIGN",
                        NodeKind::FetchPath => "FETCH",
                    },
                    if c.significant { "RED" } else { "black" }
                )
            })
            .collect();
        format!("{}: {}", self.model, cells.join(" "))
    }
}

struct CharzSink {
    /// `models × components` Pearson accumulators.
    accs: Vec<Vec<PearsonAccumulator>>,
}

/// One characterization worker's reusable state — the multi-channel
/// analog of `sca_campaign::SimArena`: a staged CPU clone, a
/// per-component power recorder, and the per-trace scratch buffers, all
/// created once per shard and reused across its index range.
struct CharzWorker {
    cpu: Cpu,
    recorder: ComponentPowerRecorder,
    /// Lockstep group state; `None` at one lane, or permanently after a
    /// divergence (same poison policy as `sca_campaign::SimArena`).
    block: Option<CharzBlock>,
    /// Per-component execution-averaged power (f64, one per component).
    accumulated: Vec<Vec<f64>>,
    /// One component's windowed per-cycle power.
    samples: Vec<f64>,
    /// The same, cropped to the analysis window and noised.
    cropped: Vec<f64>,
    /// Per-component averaged f32 channels handed to the accumulators.
    channels: Vec<Vec<f32>>,
}

/// The lockstep counterpart of the scalar worker fields: a `CpuBlock`
/// stepping up to `lanes` characterization traces together, a per-lane
/// per-component recorder, and per-lane accumulation buffers.
struct CharzBlock {
    block: CpuBlock,
    recorder: BlockComponentPowerRecorder,
    /// `lanes × components` execution-averaged power.
    accumulated: Vec<Vec<Vec<f64>>>,
}

impl CharzWorker {
    fn new(template: &Cpu, components: usize, lanes: usize) -> CharzWorker {
        CharzWorker {
            cpu: template.clone(),
            recorder: ComponentPowerRecorder::new(LeakageWeights::cortex_a7()),
            block: (lanes > 1).then(|| CharzBlock {
                block: CpuBlock::from_template(template, lanes),
                recorder: BlockComponentPowerRecorder::new(LeakageWeights::cortex_a7(), lanes),
                accumulated: vec![vec![Vec::new(); components]; lanes],
            }),
            accumulated: vec![Vec::new(); components],
            samples: Vec::new(),
            cropped: Vec::new(),
            channels: vec![Vec::new(); components],
        }
    }
}

impl Mergeable for CharzSink {
    fn merge(&mut self, other: CharzSink) {
        for (row, theirs) in self.accs.iter_mut().zip(&other.accs) {
            for (acc, that) in row.iter_mut().zip(theirs) {
                acc.merge(that);
            }
        }
    }
}

/// Runs one lockstep group of `count` characterization traces starting
/// at index `base` through the worker's `CpuBlock`, absorbing each
/// lane's channels into the sink in trace-index order.
///
/// Every lane computes exactly what the scalar path computes for its
/// index — same RNG streams, same noise draw order, same `f64`
/// accumulation order — so the result is bit-identical. Returns
/// `Ok(false)` on cross-lane divergence *before* touching the sink, so
/// the caller can re-run the group on the scalar path.
#[allow(clippy::too_many_arguments)]
fn charz_block_group(
    worker: &mut CharzWorker,
    sink: &mut CharzSink,
    target: &dyn CipherTarget,
    models: &[TargetModel],
    entry: u32,
    seed: u64,
    noise: GaussianNoise,
    executions: usize,
    start: usize,
    len: usize,
    base: usize,
    count: usize,
) -> Result<bool, UarchError> {
    let Some(blk) = worker.block.as_mut() else {
        return Ok(false);
    };
    debug_assert!(count > 1 && count <= blk.block.max_lanes());
    let mut rngs: Vec<StdRng> = (0..count)
        .map(|l| StdRng::seed_from_u64(seed.wrapping_add((base + l) as u64 * 0x9e37)))
        .collect();
    let inputs: Vec<Vec<u8>> = rngs
        .iter_mut()
        .enumerate()
        .map(|(l, rng)| target.generate(rng, base + l))
        .collect();
    for lane in 0..count {
        for channel in &mut blk.accumulated[lane] {
            channel.clear();
            channel.resize(len, 0.0);
        }
    }
    let mut seeds = [0u64; sca_uarch::MAX_LANES];
    for e in 0..executions {
        for (l, s) in seeds[..count].iter_mut().enumerate() {
            *s = seed ^ (((base + l) as u64) << 8 | e as u64);
        }
        blk.block.restart_seeded(entry, &seeds[..count]);
        for (l, input) in inputs.iter().enumerate() {
            target.stage(blk.block.lane_mut(l), input);
        }
        blk.recorder.reset();
        if blk.block.run(&mut blk.recorder).is_err() {
            return Ok(false);
        }
        for (l, rng) in rngs.iter_mut().enumerate() {
            let mut gauss = noise;
            for (c, &kind) in CHARZ_COMPONENTS.iter().enumerate() {
                blk.recorder
                    .windowed_power_into(l, kind, &mut worker.samples);
                worker.samples.resize(start + len, 0.0);
                worker.cropped.clear();
                worker
                    .cropped
                    .extend_from_slice(&worker.samples[start..start + len]);
                gauss.add_to(rng, &mut worker.cropped);
                for (a, s) in blk.accumulated[l][c].iter_mut().zip(&worker.cropped) {
                    *a += s;
                }
            }
        }
    }
    let inv = 1.0 / executions as f64;
    for (l, input) in inputs.iter().enumerate() {
        for (channel, accumulated) in worker.channels.iter_mut().zip(&blk.accumulated[l]) {
            channel.clear();
            channel.extend(accumulated.iter().map(|&s| (s * inv) as f32));
        }
        for (model, row) in models.iter().zip(&mut sink.accs) {
            let prediction = model.predict_true(input);
            for (acc, channel) in row.iter_mut().zip(&worker.channels) {
                acc.add(prediction, channel);
            }
        }
    }
    Ok(true)
}

/// Characterizes a target's models against every pipeline component.
///
/// One sharded acquisition serves every `(model, component)` cell:
/// each trace records one power sub-trace per component (averaged over
/// the configured executions, with per-execution noise), cropped to
/// the target's primary window, and folds into per-cell Pearson
/// accumulators — the leakage-characterization analog of the CPA
/// campaigns, and deterministic under the same contract.
///
/// # Errors
///
/// Propagates simulator faults, and window misconfiguration as
/// [`TargetError::Window`].
pub fn characterize_target(
    target: &dyn CipherTarget,
    cpu: &Cpu,
    models: &[TargetModel],
    config: &TargetCampaignConfig,
    confidence: f64,
) -> Result<Vec<TargetCharacterization>, TargetError> {
    let window = resolve_window(target, cpu, &target.primary_window())?;
    // The characterization records per-cycle power (one sample per
    // cycle), so the shared end-exclusive conversion is the identity
    // here — but it keeps this crop on the same rounding contract as
    // the campaign engine's sample-rate expansion.
    let (start, len) = sca_power::cycle_window_to_samples(
        1.0,
        window.trigger_relative.0,
        window.trigger_relative.1,
    );

    let plan = ShardPlan {
        items: config.traces,
        threads: config.threads.max(1),
        batch: config.batch.max(1),
    };
    let entry = target.program().entry();
    let seed = config.seed ^ 0xc4a12;
    let noise = config.noise;
    let executions = config.executions_per_trace.max(1);
    let lanes = config.lanes.clamp(1, sca_uarch::MAX_LANES);
    let sink = run_sharded(
        &plan,
        || CharzWorker::new(cpu, CHARZ_COMPONENTS.len(), lanes),
        || CharzSink {
            accs: models
                .iter()
                .map(|_| {
                    CHARZ_COMPONENTS
                        .iter()
                        .map(|_| PearsonAccumulator::new(len))
                        .collect()
                })
                .collect(),
        },
        |worker, sink, range| {
            let mut t = range.start;
            while t < range.end {
                let width = worker.block.as_ref().map_or(1, |b| b.block.max_lanes());
                let group = width.min(range.end - t);
                if group > 1 {
                    if charz_block_group(
                        worker, sink, target, models, entry, seed, noise, executions, start, len,
                        t, group,
                    )? {
                        t += group;
                        continue;
                    }
                    // Divergence: poison the block for this worker and
                    // re-run the whole group on the self-contained
                    // scalar path (nothing was absorbed yet).
                    worker.block = None;
                }
                for i in t..t + group {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 0x9e37));
                    let input = target.generate(&mut rng, i);
                    for channel in &mut worker.accumulated {
                        channel.clear();
                        channel.resize(len, 0.0);
                    }
                    for e in 0..executions {
                        worker
                            .cpu
                            .restart_seeded(entry, seed ^ ((i as u64) << 8 | e as u64));
                        target.stage(&mut worker.cpu, &input);
                        worker.recorder.reset();
                        worker.cpu.run(&mut worker.recorder)?;
                        let mut gauss = noise;
                        for (c, &kind) in CHARZ_COMPONENTS.iter().enumerate() {
                            worker
                                .recorder
                                .windowed_power_into(kind, &mut worker.samples);
                            worker.samples.resize(start + len, 0.0);
                            worker.cropped.clear();
                            worker
                                .cropped
                                .extend_from_slice(&worker.samples[start..start + len]);
                            gauss.add_to(&mut rng, &mut worker.cropped);
                            for (a, s) in worker.accumulated[c].iter_mut().zip(&worker.cropped) {
                                *a += s;
                            }
                        }
                    }
                    let inv = 1.0 / executions as f64;
                    for (channel, accumulated) in
                        worker.channels.iter_mut().zip(&worker.accumulated)
                    {
                        channel.clear();
                        channel.extend(accumulated.iter().map(|&s| (s * inv) as f32));
                    }
                    for (model, row) in models.iter().zip(&mut sink.accs) {
                        let prediction = model.predict_true(&input);
                        for (acc, channel) in row.iter_mut().zip(&worker.channels) {
                            acc.add(prediction, channel);
                        }
                    }
                }
                t += group;
            }
            Ok::<(), UarchError>(())
        },
    )?;

    // Bonferroni over the window keeps the per-cell false-positive rate
    // at (1 - confidence).
    let corrected = 1.0 - (1.0 - confidence) / len.max(1) as f64;
    let threshold = significance_threshold(config.traces as u64, corrected);
    Ok(models
        .iter()
        .zip(&sink.accs)
        .map(|(model, row)| TargetCharacterization {
            model: model.name.clone(),
            traces: config.traces,
            confidence,
            cells: CHARZ_COMPONENTS
                .iter()
                .zip(row)
                .map(|(&component, acc)| {
                    let peak = acc
                        .correlations()
                        .iter()
                        .map(|c| c.abs())
                        .fold(0.0, f64::max);
                    NodeCharacterization {
                        component,
                        peak_corr: peak,
                        significant: peak >= threshold,
                    }
                })
                .collect(),
        })
        .collect())
}
