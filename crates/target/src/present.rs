//! PRESENT-80 — the 4-bit-S-box member of the cipher portfolio.
//!
//! PRESENT substitutes 16 nibbles per round and permutes single bits —
//! in software that means a byte-wise combined S-box pass (two nibbles
//! per lookup) whose outputs stream through the LSU as *sub-word*
//! stores, which is precisely the align-buffer remanence territory of
//! the paper's Table 2 row 7, exercised here by a second cipher.
//!
//! Three pieces, mirroring `sca-aes`:
//!
//! * a host-side golden model ([`present_encrypt`],
//!   [`present_round_keys`]) verified against all four test vectors of
//!   the CHES 2007 paper;
//! * an assembly implementation for the simulated CPU ([`PresentSim`],
//!   [`PRESENT80_ASM`]): byte-wise S-box layer with back-to-back
//!   sub-word stores, nibble-spread-table pLayer;
//! * the two attack models ([`PresentSboxHw`], [`PresentStoreHd`]),
//!   shaped exactly like the AES Figure 3/4 pair but over the combined
//!   nibble S-box.

use sca_isa::Program;
use sca_lint::{LintRegion, LintSpec, RegionKind};
use sca_uarch::{Cpu, NullObserver, PipelineObserver, UarchConfig, UarchError};

use sca_analysis::SelectionFunction;

/// Substitution/permutation rounds of PRESENT-80 (plus a final key add).
pub const PRESENT_ROUNDS: usize = 31;

/// The 4-bit PRESENT S-box.
pub const PRESENT_SBOX: [u8; 16] = [
    0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd, 0x3, 0xe, 0xf, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// Address of the 8-byte state block (big-endian byte order: byte 0
/// holds bits 63..56).
pub const PRESENT_STATE_ADDR: u32 = 0x1000;
/// Address of the 32 staged 8-byte round keys.
pub const PRESENT_RK_ADDR: u32 = 0x1100;
/// Address of the 256-byte combined (two-nibble) S-box table.
pub const PRESENT_SP_ADDR: u32 = 0x1300;
/// Address of the pLayer nibble-spread tables (low words, then high
/// words: 16 nibble positions × 16 values × 4 bytes each).
pub const PRESENT_PLO_ADDR: u32 = 0x1400;
/// High-word half of the pLayer spread tables.
pub const PRESENT_PHI_ADDR: u32 = 0x1800;

/// The embedded assembly source of the PRESENT-80 implementation.
pub const PRESENT80_ASM: &str = include_str!("../asm/present80.s");

/// The byte-wise combined S-box: `SP[b] = S[b >> 4] << 4 | S[b & 0xf]`.
pub fn present_sp_table() -> [u8; 256] {
    let mut sp = [0u8; 256];
    for (b, slot) in sp.iter_mut().enumerate() {
        *slot = PRESENT_SBOX[b >> 4] << 4 | PRESENT_SBOX[b & 0xf];
    }
    sp
}

/// The combined S-box, computed once — the attack models sit in the
/// CPA hot loop (one `predict` per trace × guess) and must not rebuild
/// the table per call.
fn sp_table_cached() -> &'static [u8; 256] {
    static SP: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    SP.get_or_init(present_sp_table)
}

/// The bit permutation: bit `i` moves to `16·i mod 63` (63 fixed).
#[inline]
pub fn present_p_layer(state: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= (state >> i & 1) << (16 * i % 63);
    }
    out | (state >> 63 & 1) << 63
}

/// Expands an 80-bit key (big-endian bytes: `key[0]` holds bits 79..72)
/// into the 32 round keys.
pub fn present_round_keys(key: &[u8; 10]) -> [u64; PRESENT_ROUNDS + 1] {
    let mut k: u128 = 0;
    for &byte in key {
        k = k << 8 | u128::from(byte);
    }
    let mut rk = [0u64; PRESENT_ROUNDS + 1];
    for (i, slot) in rk.iter_mut().enumerate() {
        *slot = (k >> 16) as u64;
        // Rotate the 80-bit register left by 61, S-box the top nibble,
        // XOR the round counter into bits 19..15.
        k = (k << 61 | k >> 19) & ((1u128 << 80) - 1);
        let top = (k >> 76) as usize & 0xf;
        k = (k & !(0xfu128 << 76)) | (u128::from(PRESENT_SBOX[top]) << 76);
        k ^= ((i as u128 + 1) & 0x1f) << 15;
    }
    rk
}

/// Encrypts one 64-bit state with pre-expanded round keys.
pub fn present_encrypt_u64(rk: &[u64; PRESENT_ROUNDS + 1], mut state: u64) -> u64 {
    for &k in rk.iter().take(PRESENT_ROUNDS) {
        state ^= k;
        let mut sub = 0u64;
        for nibble in 0..16 {
            let v = (state >> (4 * nibble)) as usize & 0xf;
            sub |= u64::from(PRESENT_SBOX[v]) << (4 * nibble);
        }
        state = present_p_layer(sub);
    }
    state ^ rk[PRESENT_ROUNDS]
}

/// Encrypts one 8-byte block (big-endian byte order, matching the hex
/// strings of the published vectors and the assembly memory layout).
pub fn present_encrypt(key: &[u8; 10], block: &[u8; 8]) -> [u8; 8] {
    let rk = present_round_keys(key);
    present_encrypt_u64(&rk, u64::from_be_bytes(*block)).to_be_bytes()
}

/// `HW(SP[pt[byte] ^ k])` — the value-level model over the combined
/// nibble S-box (one guess byte covers two round-key nibbles).
#[derive(Clone, Copy, Debug)]
pub struct PresentSboxHw {
    /// Targeted state byte index (0..8, big-endian order).
    pub byte: usize,
}

impl SelectionFunction for PresentSboxHw {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        let sp = sp_table_cached();
        f64::from(sp[usize::from(input[self.byte] ^ guess)].count_ones())
    }

    fn name(&self) -> String {
        format!("HW(sBoxLayer(pt[{}] ^ k))", self.byte)
    }
}

/// `HD(SP[pt[byte-1] ^ k_known], SP[pt[byte] ^ k])` — the consecutive
/// sub-word-store model: the S-box layer stores its substituted bytes
/// back to back, and the align buffer holds the byte-to-byte transition
/// (Table 2 row 7's remanence, driven by a cipher).
#[derive(Clone, Copy, Debug)]
pub struct PresentStoreHd {
    /// Targeted state byte index (1..8).
    pub byte: usize,
    /// Already-recovered round-key byte at `byte - 1`.
    pub prev_key: u8,
}

impl SelectionFunction for PresentStoreHd {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        let sp = sp_table_cached();
        let prev = sp[usize::from(input[self.byte - 1] ^ self.prev_key)];
        let cur = sp[usize::from(input[self.byte] ^ guess)];
        f64::from((prev ^ cur).count_ones())
    }

    fn name(&self) -> String {
        format!("HD(sBoxLayer stores {} -> {})", self.byte - 1, self.byte)
    }
}

/// Builds the pLayer nibble-spread tables the assembly implementation
/// indexes: for memory-nibble position `p` (byte `p/2`, high nibble
/// when `p` is even) and nibble value `v`, the entry holds the pLayer
/// image of those four bits, split into the low and high state words
/// (little-endian words over the big-endian byte layout).
pub fn present_spread_tables() -> ([u32; 256], [u32; 256]) {
    let mut lo = [0u32; 256];
    let mut hi = [0u32; 256];
    for p in 0..16usize {
        let byte = p / 2;
        // Bit position (PRESENT numbering, 0 = LSB) of the nibble's LSB.
        let base = if p % 2 == 0 {
            60 - 8 * byte
        } else {
            56 - 8 * byte
        };
        for v in 0..16u64 {
            let mut spread = 0u64;
            for bit in 0..4 {
                if v >> bit & 1 == 1 {
                    let i = base + bit;
                    let out = if i == 63 { 63 } else { 16 * i % 63 };
                    spread |= 1u64 << out;
                }
            }
            let bytes = spread.to_be_bytes();
            lo[p * 16 + v as usize] = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            hi[p * 16 + v as usize] = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        }
    }
    (lo, hi)
}

/// Assembles the PRESENT-80 program (memoized: assembled once per
/// process, then cloned).
///
/// # Errors
///
/// Propagates assembler errors (which would indicate a packaging bug, as
/// the source is embedded).
pub fn present80_program() -> Result<Program, sca_isa::IsaError> {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    sca_isa::assemble_cached(PRESENT80_ASM, &CACHE)
}

/// A PRESENT-80 instance running on the simulated superscalar CPU.
///
/// ```
/// use sca_target::{present_encrypt, PresentSim};
/// use sca_uarch::UarchConfig;
///
/// let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7";
/// let mut sim = PresentSim::new(UarchConfig::cortex_a7(), &key)?;
/// let pt = [0u8; 8];
/// assert_eq!(sim.encrypt(&pt)?, present_encrypt(&key, &pt));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PresentSim {
    cpu: Cpu,
    entry: u32,
}

impl PresentSim {
    /// Builds a CPU, loads the PRESENT program, stages the round keys
    /// and lookup tables, and runs one warm-up encryption.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    pub fn new(config: UarchConfig, key: &[u8; 10]) -> Result<PresentSim, UarchError> {
        let program = present80_program().expect("embedded PRESENT source assembles");
        let mut cpu = Cpu::new(config);
        cpu.load(&program)?;
        Self::stage_tables(&mut cpu)?;
        Self::stage_round_keys(&mut cpu, key)?;
        let mut sim = PresentSim {
            cpu,
            entry: program.entry(),
        };
        sim.encrypt(&[0u8; 8])?;
        Ok(sim)
    }

    /// Writes the combined S-box and pLayer spread tables into simulator
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn stage_tables(cpu: &mut Cpu) -> Result<(), UarchError> {
        cpu.mem_mut()
            .write_bytes(PRESENT_SP_ADDR, &present_sp_table())?;
        let (lo, hi) = present_spread_tables();
        let mut bytes = [0u8; 1024];
        for (i, w) in lo.iter().enumerate() {
            bytes[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        cpu.mem_mut().write_bytes(PRESENT_PLO_ADDR, &bytes)?;
        for (i, w) in hi.iter().enumerate() {
            bytes[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        cpu.mem_mut().write_bytes(PRESENT_PHI_ADDR, &bytes)
    }

    /// Writes the expanded round keys into simulator memory.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn stage_round_keys(cpu: &mut Cpu, key: &[u8; 10]) -> Result<(), UarchError> {
        let mut bytes = [0u8; (PRESENT_ROUNDS + 1) * 8];
        for (i, rk) in present_round_keys(key).iter().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&rk.to_be_bytes());
        }
        cpu.mem_mut().write_bytes(PRESENT_RK_ADDR, &bytes)
    }

    /// Encrypts one block on the simulator (no observer).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt(&mut self, plaintext: &[u8; 8]) -> Result<[u8; 8], UarchError> {
        self.encrypt_observed(plaintext, &mut NullObserver)
    }

    /// Encrypts one block while streaming pipeline activity to an
    /// observer.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt_observed(
        &mut self,
        plaintext: &[u8; 8],
        observer: &mut dyn PipelineObserver,
    ) -> Result<[u8; 8], UarchError> {
        self.cpu.restart(self.entry);
        self.cpu
            .mem_mut()
            .write_bytes(PRESENT_STATE_ADDR, plaintext)?;
        self.cpu.run(observer)?;
        let mut ct = [0u8; 8];
        ct.copy_from_slice(self.cpu.mem().read_bytes(PRESENT_STATE_ADDR, 8)?);
        Ok(ct)
    }

    /// The underlying CPU (e.g. as a template for trace acquisition).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Stages a plaintext into a (cloned) CPU — the campaign staging
    /// hook.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than 8 bytes.
    pub fn stage_plaintext(cpu: &mut Cpu, input: &[u8]) {
        cpu.mem_mut()
            .write_bytes(PRESENT_STATE_ADDR, &input[..8])
            .expect("state buffer is mapped");
    }
}

/// PRESENT-80 as a portfolio target.
#[derive(Clone, Debug)]
pub struct PresentTarget {
    key: [u8; 10],
    round1_key: [u8; 8],
    target_byte: usize,
    program: Program,
}

impl PresentTarget {
    /// Creates the target for an 80-bit key, attacking state byte
    /// `target_byte` (must be in `1..8`: the HD model needs the
    /// preceding store).
    pub fn new(key: [u8; 10], target_byte: usize) -> PresentTarget {
        assert!((1..8).contains(&target_byte));
        PresentTarget {
            key,
            round1_key: present_round_keys(&key)[0].to_be_bytes(),
            target_byte,
            program: present80_program().expect("embedded PRESENT source assembles"),
        }
    }
}

impl Default for PresentTarget {
    fn default() -> PresentTarget {
        PresentTarget::new(*b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7", 1)
    }
}

/// The round-1 S-box layer (`sbox`/`perm` are visited once per round;
/// visit 0 is round 1).
fn present_window() -> crate::WindowHint {
    crate::WindowHint::span("sbox", 0, 4, "perm", 0, 12)
}

impl crate::CipherTarget for PresentTarget {
    fn name(&self) -> &str {
        "present80"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn build(&self, uarch: &UarchConfig) -> Result<Cpu, UarchError> {
        Ok(PresentSim::new(uarch.clone(), &self.key)?.cpu().clone())
    }

    fn plaintext_len(&self) -> usize {
        8
    }

    fn input_len(&self) -> usize {
        8
    }

    fn stage(&self, cpu: &mut Cpu, input: &[u8]) {
        PresentSim::stage_plaintext(cpu, input);
    }

    fn stage_constants(&self, cpu: &mut Cpu) -> Result<(), UarchError> {
        PresentSim::stage_tables(cpu)?;
        PresentSim::stage_round_keys(cpu, &self.key)
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let mut pt = [0u8; 8];
        pt.copy_from_slice(&input[..8]);
        present_encrypt(&self.key, &pt).to_vec()
    }

    fn output(&self, cpu: &Cpu) -> Result<Vec<u8>, UarchError> {
        Ok(cpu.mem().read_bytes(PRESENT_STATE_ADDR, 8)?.to_vec())
    }

    fn models(&self) -> Vec<crate::TargetModel> {
        let byte = self.target_byte;
        vec![
            crate::TargetModel::new(
                crate::ModelKind::ValueHw,
                self.round1_key[byte],
                present_window(),
                PresentSboxHw { byte },
            ),
            crate::TargetModel::new(
                crate::ModelKind::TransitionHd,
                self.round1_key[byte],
                present_window(),
                PresentStoreHd {
                    byte,
                    prev_key: self.round1_key[byte - 1],
                },
            ),
        ]
    }

    fn primary_window(&self) -> crate::WindowHint {
        present_window()
    }

    fn lint_spec(&self) -> LintSpec {
        let mut rk_bytes = Vec::with_capacity((PRESENT_ROUNDS + 1) * 8);
        for rk in present_round_keys(&self.key) {
            rk_bytes.extend_from_slice(&rk.to_be_bytes());
        }
        let (lo, hi) = present_spread_tables();
        let words_le = |words: &[u32; 256]| {
            let mut bytes = Vec::with_capacity(1024);
            for w in words {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            bytes
        };
        LintSpec {
            mem_init: vec![
                (PRESENT_SP_ADDR, present_sp_table().to_vec()),
                (PRESENT_PLO_ADDR, words_le(&lo)),
                (PRESENT_PHI_ADDR, words_le(&hi)),
                (PRESENT_RK_ADDR, rk_bytes),
                (
                    PRESENT_STATE_ADDR,
                    vec![0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe],
                ),
            ],
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: PRESENT_RK_ADDR,
                    len: ((PRESENT_ROUNDS + 1) * 8) as u32,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: PRESENT_STATE_ADDR,
                    len: 8,
                    kind: RegionKind::Input,
                },
            ],
            ..LintSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four test vectors of the CHES 2007 paper's appendix.
    #[test]
    fn golden_matches_published_vectors() {
        let zero_key = [0u8; 10];
        let ff_key = [0xffu8; 10];
        let zero_pt = [0u8; 8];
        let ff_pt = [0xffu8; 8];
        assert_eq!(
            present_encrypt(&zero_key, &zero_pt),
            [0x55, 0x79, 0xc1, 0x38, 0x7b, 0x22, 0x84, 0x45]
        );
        assert_eq!(
            present_encrypt(&ff_key, &zero_pt),
            [0xe7, 0x2c, 0x46, 0xc0, 0xf5, 0x94, 0x50, 0x49]
        );
        assert_eq!(
            present_encrypt(&zero_key, &ff_pt),
            [0xa1, 0x12, 0xff, 0xc7, 0x2f, 0x68, 0x41, 0x7b]
        );
        assert_eq!(
            present_encrypt(&ff_key, &ff_pt),
            [0x33, 0x33, 0xdc, 0xd3, 0x21, 0x32, 0x10, 0xd2]
        );
    }

    #[test]
    fn p_layer_is_a_permutation() {
        assert_eq!(present_p_layer(u64::MAX), u64::MAX);
        assert_eq!(present_p_layer(0), 0);
        assert_eq!(present_p_layer(1 << 63), 1 << 63);
        // Bit 1 moves to position 16.
        assert_eq!(present_p_layer(0b10), 1 << 16);
    }

    #[test]
    fn spread_tables_reassemble_the_p_layer() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (lo, hi) = present_spread_tables();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let state: u64 = rng.gen();
            let bytes = state.to_be_bytes();
            let (mut wlo, mut whi) = (0u32, 0u32);
            for (i, &b) in bytes.iter().enumerate() {
                let hi_nibble = usize::from(b) >> 4;
                let lo_nibble = usize::from(b) & 0xf;
                wlo |= lo[2 * i * 16 + hi_nibble] | lo[(2 * i + 1) * 16 + lo_nibble];
                whi |= hi[2 * i * 16 + hi_nibble] | hi[(2 * i + 1) * 16 + lo_nibble];
            }
            let mut out = [0u8; 8];
            out[..4].copy_from_slice(&wlo.to_le_bytes());
            out[4..].copy_from_slice(&whi.to_le_bytes());
            assert_eq!(u64::from_be_bytes(out), present_p_layer(state));
        }
    }

    #[test]
    fn sim_matches_golden_on_random_blocks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7";
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sim = PresentSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key).unwrap();
        for _ in 0..4 {
            let mut pt = [0u8; 8];
            rng.fill(&mut pt);
            assert_eq!(
                sim.encrypt(&pt).unwrap(),
                present_encrypt(&key, &pt),
                "pt {pt:02x?}"
            );
        }
    }

    #[test]
    fn sim_timing_is_input_independent() {
        use sca_uarch::RecordingObserver;
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7";
        // The full memory model: the pre-trigger warm loop must make the
        // data-dependent table lookups constant-time.
        let mut sim = PresentSim::new(UarchConfig::cortex_a7(), &key).unwrap();
        let mut cycles = Vec::new();
        for pt in [[0u8; 8], [0xff; 8], [0x5a; 8]] {
            let mut obs = RecordingObserver::new();
            sim.encrypt_observed(&pt, &mut obs).unwrap();
            cycles.push(obs.triggers[1].0 - obs.triggers[0].0);
        }
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
    }

    #[test]
    fn models_reference_the_first_round_intermediates() {
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7";
        let rk = present_round_keys(&key);
        let k0 = rk[0].to_be_bytes();
        let pt = [0x10u8, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe];
        let sp = present_sp_table();
        let hw = PresentSboxHw { byte: 1 }.predict(&pt, k0[1]);
        assert_eq!(hw, f64::from(sp[usize::from(pt[1] ^ k0[1])].count_ones()));
        let hd = PresentStoreHd {
            byte: 1,
            prev_key: k0[0],
        }
        .predict(&pt, k0[1]);
        let expect = sp[usize::from(pt[0] ^ k0[0])] ^ sp[usize::from(pt[1] ^ k0[1])];
        assert_eq!(hd, f64::from(expect.count_ones()));
    }
}
