//! The AES-128 targets of the portfolio: the existing `sca-aes`
//! implementations (unprotected and first-order masked) wrapped behind
//! the [`CipherTarget`] trait, so the paper's baseline cipher runs
//! through exactly the same generic drivers as the new families.

use rand::rngs::StdRng;
use rand::Rng;

use sca_aes::{
    aes128_masked_program, aes128_program, encrypt_block, expand_key, AesSim, MaskedAesSim,
    SubBytesHw, SubBytesStoreHd, MASKED_INPUT_LEN, MASKS_ADDR, MASK_BYTES, RK_ADDR, SBOX,
    SBOX_ADDR, STATE_ADDR,
};
use sca_isa::Program;
use sca_lint::{LintRegion, LintSpec, RegionKind, ReleaseSpan};
use sca_uarch::{Cpu, UarchConfig, UarchError};

use crate::{CipherTarget, ModelKind, TargetModel, WindowHint};

/// The portfolio's AES key (the FIPS-197 example key, as in the other
/// experiments).
pub const PORTFOLIO_AES_KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// The round-1 window of the value-level HW model (trigger to the start
/// of round 2, where Figure 3's strongest leaks live).
fn aes_hw_window() -> WindowHint {
    WindowHint::from_trigger("round", 1, 16)
}

/// The SubBytes store window of the consecutive-store HD model.
fn aes_hd_window() -> WindowHint {
    WindowHint::span("subbytes", 0, 4, "shiftrows", 0, 12)
}

/// The canonical plaintext of the static lint staging (the FIPS-197
/// example block): varied bytes, so consecutive stores make non-trivial
/// concrete transitions for the linter's pair rules.
const LINT_PT: [u8; 16] = [
    0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
];

/// The canonical mask draw of the masked target's lint staging:
/// pairwise-distinct nonzero bytes, so no masked transition degenerates
/// to the trivial HD = 0 the linter skips.
const LINT_MASKS: [u8; MASK_BYTES] = [0x3d, 0x6b, 0xa5, 0x17, 0xc2, 0x59];

/// The shared (unprotected/masked) part of the AES lint spec: memory
/// contract staging plus the key/plaintext labelling.
fn aes_lint_spec(key: &[u8; 16]) -> LintSpec {
    LintSpec {
        mem_init: vec![
            (SBOX_ADDR, SBOX.to_vec()),
            (RK_ADDR, expand_key(key).to_vec()),
            (STATE_ADDR, LINT_PT.to_vec()),
        ],
        regions: vec![
            LintRegion {
                name: "K".into(),
                addr: RK_ADDR,
                len: 176,
                kind: RegionKind::Secret,
            },
            LintRegion {
                name: "PT".into(),
                addr: STATE_ADDR,
                len: 16,
                kind: RegionKind::Input,
            },
        ],
        ..LintSpec::default()
    }
}

fn aes_models(key: &[u8; 16], byte: usize) -> Vec<TargetModel> {
    vec![
        TargetModel::new(
            ModelKind::ValueHw,
            key[byte],
            aes_hw_window(),
            SubBytesHw { byte },
        ),
        TargetModel::new(
            ModelKind::TransitionHd,
            key[byte],
            aes_hd_window(),
            SubBytesStoreHd {
                byte,
                prev_key: key[byte - 1],
            },
        ),
    ]
}

/// The unprotected AES-128 implementation as a portfolio target.
#[derive(Clone, Debug)]
pub struct AesTarget {
    key: [u8; 16],
    target_byte: usize,
    program: Program,
}

impl AesTarget {
    /// Creates the target for a key, attacking state byte
    /// `target_byte` (must be in `1..16`: the HD model needs the
    /// preceding store).
    pub fn new(key: [u8; 16], target_byte: usize) -> AesTarget {
        assert!((1..16).contains(&target_byte));
        AesTarget {
            key,
            target_byte,
            program: aes128_program().expect("embedded AES source assembles"),
        }
    }
}

impl Default for AesTarget {
    fn default() -> AesTarget {
        AesTarget::new(PORTFOLIO_AES_KEY, 1)
    }
}

impl CipherTarget for AesTarget {
    fn name(&self) -> &str {
        "aes128"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn build(&self, uarch: &UarchConfig) -> Result<Cpu, UarchError> {
        Ok(AesSim::new(uarch.clone(), &self.key)?.cpu().clone())
    }

    fn plaintext_len(&self) -> usize {
        16
    }

    fn input_len(&self) -> usize {
        16
    }

    fn stage(&self, cpu: &mut Cpu, input: &[u8]) {
        AesSim::stage_plaintext(cpu, input);
    }

    fn stage_constants(&self, cpu: &mut Cpu) -> Result<(), UarchError> {
        cpu.mem_mut().write_bytes(SBOX_ADDR, &SBOX)?;
        cpu.mem_mut().write_bytes(RK_ADDR, &expand_key(&self.key))
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let mut pt = [0u8; 16];
        pt.copy_from_slice(&input[..16]);
        encrypt_block(&self.key, &pt).to_vec()
    }

    fn output(&self, cpu: &Cpu) -> Result<Vec<u8>, UarchError> {
        Ok(cpu.mem().read_bytes(STATE_ADDR, 16)?.to_vec())
    }

    fn models(&self) -> Vec<TargetModel> {
        aes_models(&self.key, self.target_byte)
    }

    fn primary_window(&self) -> WindowHint {
        aes_hd_window()
    }

    fn lint_spec(&self) -> LintSpec {
        aes_lint_spec(&self.key)
    }
}

/// The first-order masked AES-128 implementation as a portfolio target.
///
/// Campaign inputs are `plaintext ‖ masks` ([`MASKED_INPUT_LEN`]
/// bytes); the models only ever read the plaintext, exactly like a real
/// attacker who sees plaintexts but not the victim's mask RNG.
#[derive(Clone, Debug)]
pub struct MaskedAesTarget {
    key: [u8; 16],
    target_byte: usize,
    program: Program,
}

impl MaskedAesTarget {
    /// Creates the masked target for a key and attacked state byte.
    pub fn new(key: [u8; 16], target_byte: usize) -> MaskedAesTarget {
        assert!((1..16).contains(&target_byte));
        MaskedAesTarget {
            key,
            target_byte,
            program: aes128_masked_program().expect("embedded masked AES source assembles"),
        }
    }
}

impl Default for MaskedAesTarget {
    fn default() -> MaskedAesTarget {
        MaskedAesTarget::new(PORTFOLIO_AES_KEY, 1)
    }
}

impl CipherTarget for MaskedAesTarget {
    fn name(&self) -> &str {
        "aes128-masked"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn build(&self, uarch: &UarchConfig) -> Result<Cpu, UarchError> {
        Ok(MaskedAesSim::new(uarch.clone(), &self.key)?.cpu().clone())
    }

    fn plaintext_len(&self) -> usize {
        16
    }

    fn input_len(&self) -> usize {
        MASKED_INPUT_LEN
    }

    fn finish_input(&self, mut plaintext: Vec<u8>, rng: &mut StdRng) -> Vec<u8> {
        let mut masks = [0u8; MASK_BYTES];
        rng.fill(&mut masks[..]);
        plaintext.extend_from_slice(&masks);
        plaintext
    }

    fn stage(&self, cpu: &mut Cpu, input: &[u8]) {
        MaskedAesSim::stage_input(cpu, input);
    }

    fn stage_constants(&self, cpu: &mut Cpu) -> Result<(), UarchError> {
        cpu.mem_mut().write_bytes(SBOX_ADDR, &SBOX)?;
        cpu.mem_mut().write_bytes(RK_ADDR, &expand_key(&self.key))
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        // Masking is output-transparent: whatever masks ride along, the
        // ciphertext equals plain AES-128.
        let mut pt = [0u8; 16];
        pt.copy_from_slice(&input[..16]);
        encrypt_block(&self.key, &pt).to_vec()
    }

    fn output(&self, cpu: &Cpu) -> Result<Vec<u8>, UarchError> {
        Ok(cpu.mem().read_bytes(STATE_ADDR, 16)?.to_vec())
    }

    fn models(&self) -> Vec<TargetModel> {
        aes_models(&self.key, self.target_byte)
    }

    fn primary_window(&self) -> WindowHint {
        aes_hd_window()
    }

    fn lint_spec(&self) -> LintSpec {
        let mut spec = aes_lint_spec(&self.key);
        spec.mem_init.push((MASKS_ADDR, LINT_MASKS.to_vec()));
        spec.regions.push(LintRegion {
            name: "M".into(),
            addr: MASKS_ADDR,
            len: MASK_BYTES as u32,
            kind: RegionKind::Mask,
        });
        // The final unmask intentionally de-blinds the ciphertext: a
        // public output by definition, released rather than laundered
        // (taint still propagates through the span).
        spec.release.push(ReleaseSpan {
            start: "unmask".into(),
            end: "premc".into(),
        });
        spec
    }
}
