//! The portfolio registry.

use crate::{AesTarget, CipherTarget, MaskedAesTarget, PresentTarget, SpeckTarget};

/// The registered cipher portfolio, in presentation order: the paper's
/// AES baseline (unprotected, then masked), then the two new families.
///
/// Every target uses its default key and targeted byte; the `portfolio`
/// experiment binary iterates this list, and adding a cipher to the
/// portfolio means implementing [`CipherTarget`] and appending it here.
pub fn portfolio() -> Vec<Box<dyn CipherTarget>> {
    vec![
        Box::new(AesTarget::default()),
        Box::new(MaskedAesTarget::default()),
        Box::new(SpeckTarget::default()),
        Box::new(PresentTarget::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;

    #[test]
    fn every_target_declares_both_model_kinds() {
        for target in portfolio() {
            let models = target.models();
            assert!(
                models.iter().any(|m| m.kind == ModelKind::ValueHw),
                "{} lacks a value-level HW model",
                target.name()
            );
            assert!(
                models.iter().any(|m| m.kind == ModelKind::TransitionHd),
                "{} lacks a microarchitecture-aware HD model",
                target.name()
            );
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = vec!["aes128", "aes128-masked", "speck64128", "present80"];
        let targets = portfolio();
        assert_eq!(
            targets
                .iter()
                .map(|t| t.name().to_owned())
                .collect::<Vec<_>>(),
            names
        );
    }
}
