//! SPECK64/128 — the ARX member of the cipher portfolio.
//!
//! SPECK's round function is *add–rotate–xor*: it exercises exactly the
//! pipeline paths AES never touches — the barrel shifter (both rotates
//! of every round go through it) and the ALU adder's carry chain. The
//! attack surface is correspondingly different: there is no S-box to
//! make a key guess nonlinear, so the portfolio attacks the *last*
//! round from the ciphertext side, where the modular subtraction's
//! borrow chain supplies the nonlinearity (see [`SpeckStoreHd`]).
//!
//! Three pieces, mirroring `sca-aes`:
//!
//! * a host-side golden model ([`speck_encrypt`], [`speck_round_keys`])
//!   verified against the designers' published test vector;
//! * an assembly implementation for the simulated CPU ([`SpeckSim`],
//!   [`SPECK64128_ASM`]) with a byte-granular state commit per round —
//!   the consecutive-store sequence the HD model targets;
//! * the two attack models ([`SpeckLastRoundHw`], [`SpeckStoreHd`]).

use sca_isa::Program;
use sca_lint::{LintRegion, LintSpec, RegionKind};
use sca_uarch::{Cpu, NullObserver, PipelineObserver, UarchConfig, UarchError};

use sca_analysis::SelectionFunction;

/// Rounds of SPECK64/128.
pub const SPECK_ROUNDS: usize = 27;

/// Address of the 8-byte state block (x word, then y word, LE).
pub const SPECK_STATE_ADDR: u32 = 0x1000;
/// Address of the 27 staged round-key words.
pub const SPECK_RK_ADDR: u32 = 0x1100;

/// The embedded assembly source of the SPECK64/128 implementation.
pub const SPECK64128_ASM: &str = include_str!("../asm/speck64128.s");

/// One SPECK64 round: `x = (x ⋙ 8) + y ^ k`, `y = (y ⋘ 3) ^ x`.
#[inline]
pub fn speck_round(x: &mut u32, y: &mut u32, k: u32) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

/// Expands a 128-bit key (words `k0, l0, l1, l2`, little-endian bytes)
/// into the 27 round keys. The schedule reuses the round function over
/// the `l` words with the round index as "key".
pub fn speck_round_keys(key: &[u8; 16]) -> [u32; SPECK_ROUNDS] {
    let word =
        |i: usize| u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    let mut k = word(0);
    let mut l = [word(1), word(2), word(3)];
    let mut rk = [0u32; SPECK_ROUNDS];
    for (i, slot) in rk.iter_mut().enumerate() {
        *slot = k;
        let mut li = l[i % 3];
        let mut ki = k;
        speck_round(&mut li, &mut ki, i as u32);
        l[i % 3] = li;
        k = ki;
    }
    rk
}

/// Encrypts one `(x, y)` word pair with pre-expanded round keys.
pub fn speck_encrypt_words(rk: &[u32; SPECK_ROUNDS], mut x: u32, mut y: u32) -> (u32, u32) {
    for &k in rk {
        speck_round(&mut x, &mut y, k);
    }
    (x, y)
}

/// Encrypts one 8-byte block (x word at `[0..4]`, y word at `[4..8]`,
/// little-endian — the memory layout of the assembly implementation).
pub fn speck_encrypt(key: &[u8; 16], block: &[u8; 8]) -> [u8; 8] {
    let rk = speck_round_keys(key);
    let x = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
    let y = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
    let (x, y) = speck_encrypt_words(&rk, x, y);
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&x.to_le_bytes());
    out[4..].copy_from_slice(&y.to_le_bytes());
    out
}

/// The next-to-last-round state word `x₂₆` recovered from a ciphertext
/// under a last-round-key guess — the attacked intermediate.
///
/// Inverting the final round: `y₂₆ = (y₂₇ ^ x₂₇) ⋙ 3` is public, and
/// `x₂₆ = ((x₂₇ ^ k₂₆) − y₂₆) ⋘ 8`. The 32-bit subtraction's borrow
/// chain makes every byte of `x₂₆` a *nonlinear* function of the key
/// bytes below it — the ARX stand-in for AES's S-box.
#[inline]
pub fn speck_invert_last_round(ct_x: u32, ct_y: u32, last_key: u32) -> u32 {
    let y26 = (ct_y ^ ct_x).rotate_right(3);
    (ct_x ^ last_key).wrapping_sub(y26).rotate_left(8)
}

/// `HW(w₀)` where `w = (x₂₇ ^ k₂₆) − y₂₆` — the value-level model.
///
/// `w₀` is byte 1 of the stored `x₂₆` (the commit loop stores bytes in
/// little-endian order and `x₂₆ = w ⋘ 8`), so its Hamming weight rides
/// the ALU/shifter results, the MDR and the align buffer like any
/// stored byte. The guess is byte 0 of the last round key; no borrow
/// enters byte 0, so the model needs no other key material.
#[derive(Clone, Copy, Debug)]
pub struct SpeckLastRoundHw;

/// Byte `i` of `u − v (mod 2³²)` plus the borrow out of byte `i`.
#[inline]
fn sub_byte(u: u32, v: u32, byte: usize, borrow_in: u32) -> (u8, u32) {
    let ub = (u >> (8 * byte)) & 0xff;
    let vb = (v >> (8 * byte)) & 0xff;
    let d = ub.wrapping_sub(vb).wrapping_sub(borrow_in);
    ((d & 0xff) as u8, (d >> 31) & 1)
}

/// Ciphertext words from a campaign input (`pt[0..8] ‖ ct[8..16]`).
#[inline]
fn ct_words(input: &[u8]) -> (u32, u32) {
    let x = u32::from_le_bytes([input[8], input[9], input[10], input[11]]);
    let y = u32::from_le_bytes([input[12], input[13], input[14], input[15]]);
    (x, y)
}

impl SelectionFunction for SpeckLastRoundHw {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        let (ct_x, ct_y) = ct_words(input);
        let v = (ct_y ^ ct_x).rotate_right(3);
        let u = ct_x ^ u32::from(guess);
        let (w0, _) = sub_byte(u, v, 0, 0);
        f64::from(w0.count_ones())
    }

    fn name(&self) -> String {
        "HW(x26 commit byte 1)".to_owned()
    }
}

/// `HD(w₀, w₁)` — the microarchitecture-aware consecutive-store model.
///
/// The round-25 commit stores the bytes of `x₂₆` back to back, so the
/// LSU store-data path (MDR, align buffer) holds the transition between
/// adjacent bytes. Bytes 1 and 2 of `x₂₆` are bytes 0 and 1 of
/// `w = (x₂₇ ^ k₂₆) − y₂₆`; predicting byte 1 needs the borrow out of
/// byte 0, i.e. the previously recovered key byte — the same sequential
/// chain as the AES Figure 4 model.
#[derive(Clone, Copy, Debug)]
pub struct SpeckStoreHd {
    /// Already-recovered byte 0 of the last round key.
    pub prev_key: u8,
}

impl SelectionFunction for SpeckStoreHd {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        let (ct_x, ct_y) = ct_words(input);
        let v = (ct_y ^ ct_x).rotate_right(3);
        let u0 = ct_x ^ u32::from(self.prev_key);
        let (w0, borrow) = sub_byte(u0, v, 0, 0);
        let u1 = ct_x ^ (u32::from(guess) << 8);
        let (w1, _) = sub_byte(u1, v, 1, borrow);
        f64::from((w0 ^ w1).count_ones())
    }

    fn name(&self) -> String {
        "HD(x26 commit bytes 1 -> 2)".to_owned()
    }
}

/// Assembles the SPECK64/128 program (memoized: assembled once per
/// process, then cloned).
///
/// # Errors
///
/// Propagates assembler errors (which would indicate a packaging bug, as
/// the source is embedded).
pub fn speck64128_program() -> Result<Program, sca_isa::IsaError> {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    sca_isa::assemble_cached(SPECK64128_ASM, &CACHE)
}

/// A SPECK64/128 instance running on the simulated superscalar CPU.
///
/// ```
/// use sca_target::{speck_encrypt, SpeckSim};
/// use sca_uarch::UarchConfig;
///
/// let key = *b"\x00\x01\x02\x03\x08\x09\x0a\x0b\x10\x11\x12\x13\x18\x19\x1a\x1b";
/// let mut sim = SpeckSim::new(UarchConfig::cortex_a7(), &key)?;
/// let pt = [0u8; 8];
/// assert_eq!(sim.encrypt(&pt)?, speck_encrypt(&key, &pt));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SpeckSim {
    cpu: Cpu,
    entry: u32,
}

impl SpeckSim {
    /// Builds a CPU, loads the SPECK program, stages the round keys and
    /// runs one warm-up encryption so the caches are hot.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    pub fn new(config: UarchConfig, key: &[u8; 16]) -> Result<SpeckSim, UarchError> {
        let program = speck64128_program().expect("embedded SPECK source assembles");
        let mut cpu = Cpu::new(config);
        cpu.load(&program)?;
        Self::stage_round_keys(&mut cpu, key)?;
        let mut sim = SpeckSim {
            cpu,
            entry: program.entry(),
        };
        sim.encrypt(&[0u8; 8])?;
        Ok(sim)
    }

    /// Writes the expanded round keys into simulator memory.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn stage_round_keys(cpu: &mut Cpu, key: &[u8; 16]) -> Result<(), UarchError> {
        let mut bytes = [0u8; SPECK_ROUNDS * 4];
        for (i, rk) in speck_round_keys(key).iter().enumerate() {
            bytes[4 * i..4 * i + 4].copy_from_slice(&rk.to_le_bytes());
        }
        cpu.mem_mut().write_bytes(SPECK_RK_ADDR, &bytes)
    }

    /// Encrypts one block on the simulator (no observer).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt(&mut self, plaintext: &[u8; 8]) -> Result<[u8; 8], UarchError> {
        self.encrypt_observed(plaintext, &mut NullObserver)
    }

    /// Encrypts one block while streaming pipeline activity to an
    /// observer.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt_observed(
        &mut self,
        plaintext: &[u8; 8],
        observer: &mut dyn PipelineObserver,
    ) -> Result<[u8; 8], UarchError> {
        self.cpu.restart(self.entry);
        self.cpu
            .mem_mut()
            .write_bytes(SPECK_STATE_ADDR, plaintext)?;
        self.cpu.run(observer)?;
        let mut ct = [0u8; 8];
        ct.copy_from_slice(self.cpu.mem().read_bytes(SPECK_STATE_ADDR, 8)?);
        Ok(ct)
    }

    /// The underlying CPU (e.g. as a template for trace acquisition).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Stages a plaintext into a (cloned) CPU — the campaign staging
    /// hook. Only the first 8 input bytes are the plaintext; anything
    /// beyond (the attacker-visible ciphertext the models read) never
    /// enters the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than 8 bytes.
    pub fn stage_plaintext(cpu: &mut Cpu, input: &[u8]) {
        cpu.mem_mut()
            .write_bytes(SPECK_STATE_ADDR, &input[..8])
            .expect("state buffer is mapped");
    }
}

/// SPECK64/128 as a portfolio target.
///
/// Campaign inputs are `plaintext ‖ ciphertext` (8 + 8 bytes): the
/// ciphertext is computed by the golden model at generation time and
/// is what the last-round models read — public data for the
/// known-ciphertext attacker the portfolio assumes, never staged into
/// the simulator.
#[derive(Clone, Debug)]
pub struct SpeckTarget {
    key: [u8; 16],
    last_key: u32,
    program: Program,
}

impl SpeckTarget {
    /// Creates the target for a 128-bit key.
    pub fn new(key: [u8; 16]) -> SpeckTarget {
        SpeckTarget {
            key,
            last_key: speck_round_keys(&key)[SPECK_ROUNDS - 1],
            program: speck64128_program().expect("embedded SPECK source assembles"),
        }
    }
}

impl Default for SpeckTarget {
    /// The designers' test-vector key.
    fn default() -> SpeckTarget {
        SpeckTarget::new(*b"\x00\x01\x02\x03\x08\x09\x0a\x0b\x10\x11\x12\x13\x18\x19\x1a\x1b")
    }
}

/// The round-25 byte-granular commit of `x₂₆` — where both last-round
/// models leak (`commit` is visited once per round; the next-to-last
/// round's visit is index 25).
fn speck_window() -> crate::WindowHint {
    crate::WindowHint::span("commit", SPECK_ROUNDS - 2, 4, "commit", SPECK_ROUNDS - 1, 0)
}

impl crate::CipherTarget for SpeckTarget {
    fn name(&self) -> &str {
        "speck64128"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn build(&self, uarch: &UarchConfig) -> Result<Cpu, UarchError> {
        Ok(SpeckSim::new(uarch.clone(), &self.key)?.cpu().clone())
    }

    fn plaintext_len(&self) -> usize {
        8
    }

    fn input_len(&self) -> usize {
        16
    }

    fn finish_input(&self, mut plaintext: Vec<u8>, _rng: &mut rand::rngs::StdRng) -> Vec<u8> {
        let mut pt = [0u8; 8];
        pt.copy_from_slice(&plaintext[..8]);
        plaintext.extend_from_slice(&speck_encrypt(&self.key, &pt));
        plaintext
    }

    fn input_canonicalizer(&self) -> crate::InputCanonicalizer {
        // The suffix is the *derived* ciphertext, not free randomness:
        // recompute it from the plaintext prefix.
        let key = self.key;
        std::sync::Arc::new(move |raw: &[u8]| {
            let mut pt = [0u8; 8];
            pt.copy_from_slice(&raw[..8]);
            let mut input = pt.to_vec();
            input.extend_from_slice(&speck_encrypt(&key, &pt));
            input
        })
    }

    fn stage(&self, cpu: &mut Cpu, input: &[u8]) {
        SpeckSim::stage_plaintext(cpu, input);
    }

    fn stage_constants(&self, cpu: &mut Cpu) -> Result<(), UarchError> {
        SpeckSim::stage_round_keys(cpu, &self.key)
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let mut pt = [0u8; 8];
        pt.copy_from_slice(&input[..8]);
        speck_encrypt(&self.key, &pt).to_vec()
    }

    fn output(&self, cpu: &Cpu) -> Result<Vec<u8>, UarchError> {
        Ok(cpu.mem().read_bytes(SPECK_STATE_ADDR, 8)?.to_vec())
    }

    fn models(&self) -> Vec<crate::TargetModel> {
        vec![
            crate::TargetModel::new(
                crate::ModelKind::ValueHw,
                (self.last_key & 0xff) as u8,
                speck_window(),
                SpeckLastRoundHw,
            ),
            crate::TargetModel::new(
                crate::ModelKind::TransitionHd,
                ((self.last_key >> 8) & 0xff) as u8,
                speck_window(),
                SpeckStoreHd {
                    prev_key: (self.last_key & 0xff) as u8,
                },
            ),
        ]
    }

    fn primary_window(&self) -> crate::WindowHint {
        speck_window()
    }

    fn lint_spec(&self) -> LintSpec {
        let mut rk_bytes = Vec::with_capacity(SPECK_ROUNDS * 4);
        for rk in speck_round_keys(&self.key) {
            rk_bytes.extend_from_slice(&rk.to_le_bytes());
        }
        // The designers' test-vector plaintext: varied bytes, so the
        // concrete pair rules see non-trivial transitions.
        let pt = *b"\x74\x65\x72\x3b\x2d\x43\x75\x74";
        LintSpec {
            mem_init: vec![(SPECK_RK_ADDR, rk_bytes), (SPECK_STATE_ADDR, pt.to_vec())],
            regions: vec![
                LintRegion {
                    name: "K".into(),
                    addr: SPECK_RK_ADDR,
                    len: (SPECK_ROUNDS * 4) as u32,
                    kind: RegionKind::Secret,
                },
                LintRegion {
                    name: "PT".into(),
                    addr: SPECK_STATE_ADDR,
                    len: 8,
                    kind: RegionKind::Input,
                },
            ],
            ..LintSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The designers' Speck64/128 test vector (Beaulieu et al., "The
    /// SIMON and SPECK Families of Lightweight Block Ciphers"):
    /// key (k0, l0, l1, l2) = 03020100 0b0a0908 13121110 1b1a1918,
    /// pt (x, y) = 3b726574 7475432d, ct (x, y) = 8c6fa548 454e028b.
    const TV_KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b, 0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a,
        0x1b,
    ];

    #[test]
    fn golden_matches_published_vector() {
        let rk = speck_round_keys(&TV_KEY);
        assert_eq!(rk[0], 0x03020100);
        let (x, y) = speck_encrypt_words(&rk, 0x3b726574, 0x7475432d);
        assert_eq!((x, y), (0x8c6fa548, 0x454e028b));
    }

    #[test]
    fn byte_interface_matches_word_interface() {
        let mut block = [0u8; 8];
        block[..4].copy_from_slice(&0x3b726574u32.to_le_bytes());
        block[4..].copy_from_slice(&0x7475432du32.to_le_bytes());
        let ct = speck_encrypt(&TV_KEY, &block);
        assert_eq!(&ct[..4], &0x8c6fa548u32.to_le_bytes());
        assert_eq!(&ct[4..], &0x454e028bu32.to_le_bytes());
    }

    #[test]
    fn last_round_inversion_recovers_x26() {
        let rk = speck_round_keys(&TV_KEY);
        let (mut x, mut y) = (0x3b726574, 0x7475432d);
        for &k in &rk[..SPECK_ROUNDS - 1] {
            speck_round(&mut x, &mut y, k);
        }
        let x26 = x;
        speck_round(&mut x, &mut y, rk[SPECK_ROUNDS - 1]);
        assert_eq!(speck_invert_last_round(x, y, rk[SPECK_ROUNDS - 1]), x26);
    }

    #[test]
    fn canonicalizer_rederives_the_ciphertext_suffix() {
        use crate::CipherTarget;
        let target = SpeckTarget::default();
        let raw = [0x11u8; 16]; // suffix bytes are garbage
        let canon = target.input_canonicalizer()(&raw);
        assert_eq!(&canon[..8], &raw[..8]);
        assert_eq!(&canon[8..], &speck_encrypt(&TV_KEY, &[0x11u8; 8]));
    }

    #[test]
    fn sim_matches_golden_on_random_blocks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sim = SpeckSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &TV_KEY).unwrap();
        for _ in 0..8 {
            let mut pt = [0u8; 8];
            rng.fill(&mut pt);
            assert_eq!(
                sim.encrypt(&pt).unwrap(),
                speck_encrypt(&TV_KEY, &pt),
                "pt {pt:02x?}"
            );
        }
    }

    #[test]
    fn sim_timing_is_input_independent() {
        use sca_uarch::RecordingObserver;
        let mut sim = SpeckSim::new(UarchConfig::cortex_a7(), &TV_KEY).unwrap();
        let mut cycles = Vec::new();
        for pt in [[0u8; 8], [0xff; 8], [0x5a; 8]] {
            let mut obs = RecordingObserver::new();
            sim.encrypt_observed(&pt, &mut obs).unwrap();
            cycles.push(obs.triggers[1].0 - obs.triggers[0].0);
        }
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
    }

    #[test]
    fn models_predict_the_true_intermediate_bytes() {
        let rk = speck_round_keys(&TV_KEY);
        let last = rk[SPECK_ROUNDS - 1];
        let pt = [0x21u8, 0x43, 0x65, 0x87, 0xa9, 0xcb, 0xed, 0x0f];
        let ct = speck_encrypt(&TV_KEY, &pt);
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&pt);
        input[8..].copy_from_slice(&ct);
        let ct_x = u32::from_le_bytes([ct[0], ct[1], ct[2], ct[3]]);
        let ct_y = u32::from_le_bytes([ct[4], ct[5], ct[6], ct[7]]);
        let x26 = speck_invert_last_round(ct_x, ct_y, last);
        // x26 = w <<< 8: commit bytes 1 and 2 of x26 are w bytes 0 and 1.
        let w0 = ((x26 >> 8) & 0xff) as u8;
        let w1 = ((x26 >> 16) & 0xff) as u8;
        let hw = SpeckLastRoundHw.predict(&input, (last & 0xff) as u8);
        assert_eq!(hw, f64::from(w0.count_ones()));
        let hd = SpeckStoreHd {
            prev_key: (last & 0xff) as u8,
        }
        .predict(&input, ((last >> 8) & 0xff) as u8);
        assert_eq!(hd, f64::from((w0 ^ w1).count_ones()));
    }
}
