//! Target-generic campaigns: CPA and TVLA over any [`CipherTarget`],
//! through the `sca-campaign` streaming engine.
//!
//! This is the layer the portfolio adds between the targets and the
//! engine: sinks and shard plans never see the concrete cipher — they
//! receive a staging closure, an input generator and a selection
//! function, all derived from the trait object.

use sca_campaign::{Campaign, CampaignConfig, CpaSink, TtestSink};
use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig};
use sca_uarch::{Cpu, UarchConfig};

use crate::{resolve_window, CipherTarget, ModelKind, TargetError, TargetModel};

/// Parameters of one target's campaigns.
#[derive(Clone, Debug)]
pub struct TargetCampaignConfig {
    /// Averaged traces per campaign.
    pub traces: usize,
    /// Executions averaged into each trace.
    pub executions_per_trace: usize,
    /// Master seed (per-target salting is the caller's business).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between sink updates.
    pub batch: usize,
    /// Measurement noise.
    pub noise: GaussianNoise,
}

impl Default for TargetCampaignConfig {
    fn default() -> TargetCampaignConfig {
        TargetCampaignConfig {
            traces: 300,
            executions_per_trace: 8,
            seed: 0xdac_2018,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            noise: GaussianNoise::bare_metal(),
        }
    }
}

/// One CPA attack's verdict against one target.
#[derive(Clone, Debug)]
pub struct CpaVerdict {
    /// Attack model name.
    pub model: String,
    /// Model kind (value-level HW / microarchitecture-aware HD).
    pub kind: ModelKind,
    /// Best-ranked key guess.
    pub recovered: u8,
    /// The true key byte.
    pub correct: u8,
    /// Rank of the true key byte (0 = recovered).
    pub rank: usize,
    /// Peak |corr| of the true key byte.
    pub peak: f64,
    /// Peak |corr| over all wrong guesses.
    pub best_wrong: f64,
    /// Cycles in the analyzed window.
    pub window_cycles: u64,
}

impl CpaVerdict {
    /// Whether the attack recovered the key byte.
    pub fn success(&self) -> bool {
        self.rank == 0
    }

    /// The verdict line the portfolio binary prints and the regression
    /// tests pin.
    pub fn verdict(&self) -> String {
        format!(
            "{}: {} (recovered 0x{:02x}, true 0x{:02x}, rank {})",
            self.model,
            if self.success() { "SUCCESS" } else { "FAILURE" },
            self.recovered,
            self.correct,
            self.rank,
        )
    }
}

/// One fixed-vs-random TVLA assessment's verdict.
#[derive(Clone, Debug)]
pub struct TvlaVerdict {
    /// Largest |t| across the window.
    pub max_t: f64,
    /// Whether any sample crosses the TVLA threshold.
    pub leaks: bool,
    /// Traces in the (fixed, random) populations.
    pub counts: (u64, u64),
}

/// CPA and TVLA campaigns against one built target.
pub struct TargetCampaign<'a> {
    target: &'a dyn CipherTarget,
    cpu: Cpu,
    config: TargetCampaignConfig,
}

impl std::fmt::Debug for TargetCampaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetCampaign")
            .field("target", &self.target.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> TargetCampaign<'a> {
    /// Builds the target's template CPU for a microarchitecture.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the build's warm-up run.
    pub fn new(
        target: &'a dyn CipherTarget,
        uarch: &UarchConfig,
        config: TargetCampaignConfig,
    ) -> Result<TargetCampaign<'a>, TargetError> {
        Ok(TargetCampaign {
            cpu: target.build(uarch)?,
            target,
            config,
        })
    }

    /// The warmed template CPU (for audits and characterizations that
    /// want to reuse it).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    fn engine(&self, seed_salt: u64, window_cycles: (u64, u64)) -> Campaign {
        let sampling = SamplingConfig::picoscope_500msps_120mhz();
        // End-exclusive rounding shared with the characterization layer:
        // truncating `len * samples_per_cycle` here used to drop the
        // window's tail sample at the fractional sampling rate.
        let (start, len) = sampling.window_to_samples(window_cycles.0, window_cycles.1);
        Campaign::new(
            LeakageWeights::cortex_a7(),
            CampaignConfig {
                traces: self.config.traces,
                executions_per_trace: self.config.executions_per_trace,
                sampling,
                noise: self.config.noise,
                seed: self.config.seed ^ seed_salt,
                threads: self.config.threads,
                batch: self.config.batch,
            },
        )
        .with_window(start, len)
    }

    /// Runs one CPA campaign with one of the target's models, cropped
    /// to the model's window.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker, and window
    /// misconfiguration as [`TargetError::Window`].
    pub fn cpa(&self, model: &TargetModel) -> Result<CpaVerdict, TargetError> {
        let window = resolve_window(self.target, &self.cpu, &model.window)?;
        let target = self.target;
        let sink = self
            .engine(0x0, window.trigger_relative)
            .run(
                &self.cpu,
                target.program().entry(),
                |rng, index| target.generate(rng, index),
                |cpu, input| target.stage(cpu, input),
                |samples| CpaSink::new(model, 256, samples),
            )?
            .finish();
        let correct = usize::from(model.correct);
        Ok(CpaVerdict {
            model: model.name.clone(),
            kind: model.kind,
            recovered: sink.best_guess() as u8,
            correct: model.correct,
            rank: sink.rank_of(correct),
            peak: sink.peak(correct).1.abs(),
            best_wrong: sink.best_wrong_peak(correct),
            window_cycles: window.trigger_relative.1,
        })
    }

    /// Runs a fixed-vs-random TVLA campaign in the target's primary
    /// window (even trace indices form the fixed population; any
    /// victim-side randomness in the input suffix stays random in
    /// both).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker, and window
    /// misconfiguration as [`TargetError::Window`].
    pub fn tvla(&self) -> Result<TvlaVerdict, TargetError> {
        let window = resolve_window(self.target, &self.cpu, &self.target.primary_window())?;
        let target = self.target;
        let sink = self.engine(0x77e5, window.trigger_relative).run(
            &self.cpu,
            target.program().entry(),
            |rng, index| {
                if index != usize::MAX && index % 2 == 0 {
                    target.finish_input(target.fixed_plaintext(), rng)
                } else {
                    target.generate(rng, index)
                }
            },
            |cpu, input| target.stage(cpu, input),
            |samples| TtestSink::new(|input: &[u8]| target.is_fixed_class(input), samples),
        )?;
        Ok(TvlaVerdict {
            max_t: sink.max_t(),
            leaks: sink.leaks(),
            counts: sink.counts(),
        })
    }
}
