//! Target-generic campaigns: CPA and TVLA over any [`CipherTarget`],
//! through the `sca-campaign` streaming engine.
//!
//! This is the layer the portfolio adds between the targets and the
//! engine: sinks and shard plans never see the concrete cipher — they
//! receive a staging closure, an input generator and a selection
//! function, all derived from the trait object.

use std::path::{Path, PathBuf};

use sca_analysis::{CpaResult, StateReader};
use sca_campaign::{
    reanalyze_store, Campaign, CampaignConfig, CpaSink, KillPoint, StoreOptions, StoredRunReport,
    TtestSink, DEFAULT_BATCH,
};
use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig};
use sca_store::{analysis_tag, TraceStore};
use sca_uarch::{Cpu, UarchConfig};

use crate::{resolve_window, CipherTarget, ModelKind, TargetError, TargetModel};

/// Parameters of one target's campaigns.
#[derive(Clone, Debug)]
pub struct TargetCampaignConfig {
    /// Averaged traces per campaign.
    pub traces: usize,
    /// Executions averaged into each trace.
    pub executions_per_trace: usize,
    /// Master seed (per-target salting is the caller's business).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between sink updates.
    pub batch: usize,
    /// Lockstep lanes: consecutive traces simulated together through
    /// one `CpuBlock` pipeline walk (1 disables lockstep). Results are
    /// bit-identical at every setting.
    pub lanes: usize,
    /// Measurement noise.
    pub noise: GaussianNoise,
}

impl Default for TargetCampaignConfig {
    fn default() -> TargetCampaignConfig {
        TargetCampaignConfig {
            traces: 300,
            executions_per_trace: 8,
            seed: 0xdac_2018,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            lanes: sca_campaign::DEFAULT_LANES,
            noise: GaussianNoise::bare_metal(),
        }
    }
}

/// Persistent-store knobs of a target's campaigns: where the corpora
/// live and how often the sink state is checkpointed.
///
/// Each (target, analysis) pair gets its own store directory under
/// `root` (see [`store_dir_name`]) — CPA campaigns per model and the
/// TVLA campaign use different seeds/windows, so they are distinct
/// corpora by construction.
#[derive(Clone, Debug)]
pub struct TargetStoreConfig {
    /// Directory holding one store subdirectory per (target, analysis).
    pub root: PathBuf,
    /// Traces per checkpoint segment.
    pub checkpoint_every: u64,
    /// Resume from the last valid checkpoint instead of starting over.
    pub resume: bool,
    /// Fault injection for the crash-recovery tests and CI job.
    pub kill: KillPoint,
}

impl TargetStoreConfig {
    /// Store configuration rooted at `root`, checkpointing every 1024
    /// traces, not resuming, no fault injection.
    pub fn new(root: impl Into<PathBuf>) -> TargetStoreConfig {
        TargetStoreConfig {
            root: root.into(),
            checkpoint_every: 1024,
            resume: false,
            kill: KillPoint::None,
        }
    }
}

/// The store subdirectory for one (target, analysis) pair. Plain
/// analysis names pass through (`aes128-tvla`); names with punctuation
/// (model formulas) are replaced by their 64-bit FNV tag in hex, the
/// same tag that labels their checkpoints.
pub fn store_dir_name(label: &str, analysis: &str) -> String {
    let plain = !analysis.is_empty()
        && analysis
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if plain {
        format!("{label}-{analysis}")
    } else {
        format!("{label}-{:016x}", analysis_tag(analysis))
    }
}

/// One CPA attack's verdict against one target.
#[derive(Clone, Debug)]
pub struct CpaVerdict {
    /// Attack model name.
    pub model: String,
    /// Model kind (value-level HW / microarchitecture-aware HD).
    pub kind: ModelKind,
    /// Best-ranked key guess.
    pub recovered: u8,
    /// The true key byte.
    pub correct: u8,
    /// Rank of the true key byte (0 = recovered).
    pub rank: usize,
    /// Peak |corr| of the true key byte.
    pub peak: f64,
    /// Peak |corr| over all wrong guesses.
    pub best_wrong: f64,
    /// Cycles in the analyzed window.
    pub window_cycles: u64,
}

impl CpaVerdict {
    /// Whether the attack recovered the key byte.
    pub fn success(&self) -> bool {
        self.rank == 0
    }

    /// The verdict line the portfolio binary prints and the regression
    /// tests pin.
    pub fn verdict(&self) -> String {
        format!(
            "{}: {} (recovered 0x{:02x}, true 0x{:02x}, rank {})",
            self.model,
            if self.success() { "SUCCESS" } else { "FAILURE" },
            self.recovered,
            self.correct,
            self.rank,
        )
    }
}

/// One fixed-vs-random TVLA assessment's verdict.
#[derive(Clone, Debug)]
pub struct TvlaVerdict {
    /// Largest |t| across the window.
    pub max_t: f64,
    /// Whether any sample crosses the TVLA threshold.
    pub leaks: bool,
    /// Traces in the (fixed, random) populations.
    pub counts: (u64, u64),
}

fn cpa_verdict(model: &TargetModel, result: &CpaResult, window_cycles: u64) -> CpaVerdict {
    let correct = usize::from(model.correct);
    CpaVerdict {
        model: model.name.clone(),
        kind: model.kind,
        recovered: result.best_guess() as u8,
        correct: model.correct,
        rank: result.rank_of(correct),
        peak: result.peak(correct).1.abs(),
        best_wrong: result.best_wrong_peak(correct),
        window_cycles,
    }
}

/// CPA and TVLA campaigns against one built target.
pub struct TargetCampaign<'a> {
    target: &'a dyn CipherTarget,
    cpu: Cpu,
    config: TargetCampaignConfig,
}

impl std::fmt::Debug for TargetCampaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetCampaign")
            .field("target", &self.target.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> TargetCampaign<'a> {
    /// Builds the target's template CPU for a microarchitecture.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the build's warm-up run.
    pub fn new(
        target: &'a dyn CipherTarget,
        uarch: &UarchConfig,
        config: TargetCampaignConfig,
    ) -> Result<TargetCampaign<'a>, TargetError> {
        Ok(TargetCampaign {
            cpu: target.build(uarch)?,
            target,
            config,
        })
    }

    /// The warmed template CPU (for audits and characterizations that
    /// want to reuse it).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    fn engine(&self, seed_salt: u64, window_cycles: (u64, u64)) -> Campaign {
        let sampling = SamplingConfig::picoscope_500msps_120mhz();
        // End-exclusive rounding shared with the characterization layer:
        // truncating `len * samples_per_cycle` here used to drop the
        // window's tail sample at the fractional sampling rate.
        let (start, len) = sampling.window_to_samples(window_cycles.0, window_cycles.1);
        Campaign::new(
            LeakageWeights::cortex_a7(),
            CampaignConfig {
                traces: self.config.traces,
                executions_per_trace: self.config.executions_per_trace,
                sampling,
                noise: self.config.noise,
                seed: self.config.seed ^ seed_salt,
                threads: self.config.threads,
                batch: self.config.batch,
            },
        )
        .with_lanes(self.config.lanes)
        .with_window(start, len)
    }

    /// Runs one CPA campaign with one of the target's models, cropped
    /// to the model's window.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker, and window
    /// misconfiguration as [`TargetError::Window`].
    pub fn cpa(&self, model: &TargetModel) -> Result<CpaVerdict, TargetError> {
        let window = resolve_window(self.target, &self.cpu, &model.window)?;
        let target = self.target;
        let sink = self.engine(0x0, window.trigger_relative).run(
            &self.cpu,
            target.program().entry(),
            |rng, index| target.generate(rng, index),
            |cpu, input| target.stage(cpu, input),
            |samples| CpaSink::new(model, 256, samples),
        )?;
        Ok(cpa_verdict(
            model,
            &sink.finish(),
            window.trigger_relative.1,
        ))
    }

    /// Like [`TargetCampaign::cpa`], against a persistent trace store:
    /// traces land in `store.root/<label>-<model tag>` as they are
    /// simulated and the accumulator state is checkpointed every
    /// `store.checkpoint_every` traces, so a killed campaign resumes
    /// from the last checkpoint with a byte-identical verdict.
    ///
    /// # Errors
    ///
    /// As [`TargetCampaign::cpa`], plus store I/O/corruption and
    /// fault-injection kills as [`TargetError::Campaign`].
    pub fn cpa_stored(
        &self,
        model: &TargetModel,
        store: &TargetStoreConfig,
    ) -> Result<(CpaVerdict, StoredRunReport), TargetError> {
        self.cpa_stored_bounded(model, store, u64::MAX)
    }

    /// Like [`TargetCampaign::cpa_stored`], but simulates at most
    /// `max_new_traces` traces (whole checkpoint segments) before
    /// returning — the campaign server's job-slice unit. The verdict is
    /// computed from the partial accumulator, so callers get an
    /// *incremental* verdict (current rank, peak) after every slice;
    /// `report.complete()` says whether the campaign finished.
    ///
    /// # Errors
    ///
    /// As [`TargetCampaign::cpa_stored`].
    pub fn cpa_stored_bounded(
        &self,
        model: &TargetModel,
        store: &TargetStoreConfig,
        max_new_traces: u64,
    ) -> Result<(CpaVerdict, StoredRunReport), TargetError> {
        let window = resolve_window(self.target, &self.cpu, &model.window)?;
        let target = self.target;
        let opts = StoreOptions {
            dir: store.root.join(store_dir_name(target.name(), &model.name)),
            label: target.name().to_owned(),
            analysis: model.name.clone(),
            checkpoint_every: store.checkpoint_every,
            resume: store.resume,
            kill: store.kill,
            window_cycles: window.trigger_relative.1,
        };
        let (sink, report) = self
            .engine(0x0, window.trigger_relative)
            .run_stored_bounded(
                &self.cpu,
                target.program().entry(),
                |rng, index| target.generate(rng, index),
                |cpu, input| target.stage(cpu, input),
                |samples| CpaSink::new(model, 256, samples),
                &opts,
                max_new_traces,
            )
            .map_err(TargetError::from)?;
        Ok((
            cpa_verdict(model, &sink.finish(), window.trigger_relative.1),
            report,
        ))
    }

    /// Runs a fixed-vs-random TVLA campaign in the target's primary
    /// window (even trace indices form the fixed population; any
    /// victim-side randomness in the input suffix stays random in
    /// both).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker, and window
    /// misconfiguration as [`TargetError::Window`].
    pub fn tvla(&self) -> Result<TvlaVerdict, TargetError> {
        let window = resolve_window(self.target, &self.cpu, &self.target.primary_window())?;
        let target = self.target;
        let sink = self.engine(0x77e5, window.trigger_relative).run(
            &self.cpu,
            target.program().entry(),
            |rng, index| {
                if index != usize::MAX && index % 2 == 0 {
                    target.finish_input(target.fixed_plaintext(), rng)
                } else {
                    target.generate(rng, index)
                }
            },
            |cpu, input| target.stage(cpu, input),
            |samples| TtestSink::new(|input: &[u8]| target.is_fixed_class(input), samples),
        )?;
        Ok(TvlaVerdict {
            max_t: sink.max_t(),
            leaks: sink.leaks(),
            counts: sink.counts(),
        })
    }

    /// Like [`TargetCampaign::tvla`], against a persistent trace store
    /// in `store.root/<label>-tvla`; the fixed/random split is carried
    /// by the stored inputs themselves (the classifier re-derives each
    /// trace's population from its input bytes), so re-analysis needs no
    /// side table.
    ///
    /// # Errors
    ///
    /// As [`TargetCampaign::tvla`], plus store I/O/corruption and
    /// fault-injection kills as [`TargetError::Campaign`].
    pub fn tvla_stored(
        &self,
        store: &TargetStoreConfig,
    ) -> Result<(TvlaVerdict, StoredRunReport), TargetError> {
        self.tvla_stored_bounded(store, u64::MAX)
            .map(|(verdict, report)| {
                (
                    verdict.expect("an unbounded run absorbs both populations"),
                    report,
                )
            })
    }

    /// Like [`TargetCampaign::tvla_stored`], but simulates at most
    /// `max_new_traces` traces (whole checkpoint segments) before
    /// returning. The verdict is `None` until both TVLA populations
    /// hold at least two traces (the Welch statistic is undefined
    /// before that).
    ///
    /// # Errors
    ///
    /// As [`TargetCampaign::tvla_stored`].
    pub fn tvla_stored_bounded(
        &self,
        store: &TargetStoreConfig,
        max_new_traces: u64,
    ) -> Result<(Option<TvlaVerdict>, StoredRunReport), TargetError> {
        let window = resolve_window(self.target, &self.cpu, &self.target.primary_window())?;
        let target = self.target;
        let opts = StoreOptions {
            dir: store.root.join(store_dir_name(target.name(), "tvla")),
            label: target.name().to_owned(),
            analysis: "tvla".to_owned(),
            checkpoint_every: store.checkpoint_every,
            resume: store.resume,
            kill: store.kill,
            window_cycles: window.trigger_relative.1,
        };
        let (sink, report) = self
            .engine(0x77e5, window.trigger_relative)
            .run_stored_bounded(
                &self.cpu,
                target.program().entry(),
                |rng, index| {
                    if index != usize::MAX && index % 2 == 0 {
                        target.finish_input(target.fixed_plaintext(), rng)
                    } else {
                        target.generate(rng, index)
                    }
                },
                |cpu, input| target.stage(cpu, input),
                |samples| TtestSink::new(|input: &[u8]| target.is_fixed_class(input), samples),
                &opts,
                max_new_traces,
            )
            .map_err(TargetError::from)?;
        Ok((tvla_verdict(&sink), report))
    }
}

/// The TVLA verdict of a (possibly partial) t-test sink, or `None`
/// while either population holds fewer than two traces.
fn tvla_verdict<F: Fn(&[u8]) -> bool + Send>(sink: &TtestSink<F>) -> Option<TvlaVerdict> {
    let counts = sink.counts();
    (counts.0 >= 2 && counts.1 >= 2).then(|| TvlaVerdict {
        max_t: sink.max_t(),
        leaks: sink.leaks(),
        counts,
    })
}

/// Re-runs a CPA attack over a stored corpus by streaming its pages
/// into a fresh accumulator — zero simulator invocations, any model
/// (including ones the corpus was not originally collected for).
///
/// The result is byte-identical to a single-threaded, non-segmented
/// campaign over the same traces; verdict fields (recovered byte, rank)
/// always match the stored run that produced the corpus.
///
/// # Errors
///
/// Store I/O/corruption as [`TargetError::Campaign`].
pub fn reanalyze_cpa(dir: &Path, model: &TargetModel) -> Result<CpaVerdict, TargetError> {
    let store = TraceStore::open_any(dir)?;
    let (samples, window_cycles) = {
        let meta = store.meta();
        (meta.samples as usize, meta.window_cycles)
    };
    let sink = reanalyze_store(&store, DEFAULT_BATCH, CpaSink::new(model, 256, samples))
        .map_err(TargetError::from)?;
    Ok(cpa_verdict(model, &sink.finish(), window_cycles))
}

/// Restores a CPA verdict from a *finished* stored campaign's last
/// checkpoint — zero simulator invocations and zero page reads: the
/// exact accumulator snapshot the campaign wrote through the
/// [`sca_campaign::Checkpointable`] codecs is loaded back into a fresh
/// sink. Returns `None` when the directory holds no store or its
/// checkpoints do not yet cover the full trace budget (the caller
/// should then run or resume the campaign).
///
/// This is how the campaign server serves a resubmitted spec after a
/// restart: the verdict is byte-identical to the one the stored run
/// printed, and `sca_power::simulator_runs` does not move.
///
/// # Errors
///
/// Store I/O/corruption and snapshot mismatches as
/// [`TargetError::Campaign`].
pub fn restore_cpa(dir: &Path, model: &TargetModel) -> Result<Option<CpaVerdict>, TargetError> {
    let Some((state, samples, window_cycles)) = load_complete_checkpoint(dir, &model.name)? else {
        return Ok(None);
    };
    let mut sink = CpaSink::new(model, 256, samples);
    load_sink_state(&mut sink, &state)?;
    Ok(Some(cpa_verdict(model, &sink.finish(), window_cycles)))
}

/// Restores a TVLA verdict from a finished stored campaign's last
/// checkpoint — the fixed-vs-random counterpart of [`restore_cpa`],
/// with the same zero-simulation contract.
///
/// # Errors
///
/// Store I/O/corruption and snapshot mismatches as
/// [`TargetError::Campaign`].
pub fn restore_tvla(
    dir: &Path,
    target: &dyn CipherTarget,
) -> Result<Option<TvlaVerdict>, TargetError> {
    let Some((state, samples, _)) = load_complete_checkpoint(dir, "tvla")? else {
        return Ok(None);
    };
    let mut sink = TtestSink::new(|input: &[u8]| target.is_fixed_class(input), samples);
    load_sink_state(&mut sink, &state)?;
    Ok(tvla_verdict(&sink))
}

/// The last checkpoint of `dir` for `analysis`, if the store exists and
/// the checkpoint covers the full trace budget: `(state bytes, samples,
/// window cycles)`.
fn load_complete_checkpoint(
    dir: &Path,
    analysis: &str,
) -> Result<Option<(Vec<u8>, usize, u64)>, TargetError> {
    if !dir.join(sca_store::META_FILE).exists() {
        return Ok(None);
    }
    let store = TraceStore::open_any(dir)?;
    let (samples, window_cycles, total) = {
        let meta = store.meta();
        (meta.samples as usize, meta.window_cycles, meta.total_traces)
    };
    let checkpoint = store
        .last_checkpoint(analysis_tag(analysis))
        .map_err(sca_campaign::CampaignError::from)?;
    Ok(checkpoint
        .filter(|ck| ck.high_water >= total)
        .map(|ck| (ck.state, samples, window_cycles)))
}

/// Loads a checkpoint snapshot into a freshly built sink.
fn load_sink_state<K: sca_campaign::Checkpointable>(
    sink: &mut K,
    state: &[u8],
) -> Result<(), TargetError> {
    let mut reader = StateReader::new(state);
    sink.load_state(&mut reader)
        .and_then(|()| reader.finish())
        .map_err(sca_campaign::CampaignError::from)
        .map_err(TargetError::from)
}

/// Re-runs the fixed-vs-random TVLA assessment over a stored corpus —
/// zero simulator invocations; the population split is re-derived from
/// each stored input via the target's classifier.
///
/// # Errors
///
/// Store I/O/corruption as [`TargetError::Campaign`].
pub fn reanalyze_tvla(dir: &Path, target: &dyn CipherTarget) -> Result<TvlaVerdict, TargetError> {
    let store = TraceStore::open_any(dir)?;
    let samples = store.meta().samples as usize;
    let sink = reanalyze_store(
        &store,
        DEFAULT_BATCH,
        TtestSink::new(|input: &[u8]| target.is_fixed_class(input), samples),
    )
    .map_err(TargetError::from)?;
    Ok(TvlaVerdict {
        max_t: sink.max_t(),
        leaks: sink.leaks(),
        counts: sink.counts(),
    })
}
