//! The [`CipherTarget`] contract: everything a campaign, an audit or a
//! characterization needs from a cipher implementation, with the
//! concrete cipher behind a trait object.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use sca_analysis::SelectionFunction;
use sca_isa::Program;
use sca_uarch::{Cpu, UarchConfig, UarchError};

/// How a leakage model relates to the microarchitecture.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelKind {
    /// Value-level Hamming weight of an architectural intermediate —
    /// microarchitecture-*unaware* (the Figure 3 style).
    ValueHw,
    /// Hamming distance of a microarchitectural transition (consecutive
    /// stores through the LSU data path) — microarchitecture-*aware*
    /// (the Figure 4 style).
    TransitionHd,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::ValueHw => f.write_str("HW"),
            ModelKind::TransitionHd => f.write_str("HD"),
        }
    }
}

/// A symbol visit: the `visit`-th retirement of the instruction at
/// `symbol` after the trigger rises (programs under test are
/// constant-time, so one probe run resolves it for every execution).
#[derive(Clone, Debug)]
pub struct SymbolVisit {
    /// Program symbol name.
    pub symbol: String,
    /// 0-based visit index (loops revisit their labels).
    pub visit: usize,
}

impl SymbolVisit {
    /// Convenience constructor.
    pub fn new(symbol: impl Into<String>, visit: usize) -> SymbolVisit {
        SymbolVisit {
            symbol: symbol.into(),
            visit,
        }
    }
}

/// A campaign windowing hint, expressed over program symbols so it
/// survives re-assembly and `sca-sched` relocation.
#[derive(Clone, Debug)]
pub struct WindowHint {
    /// Window start; `None` anchors at the rising trigger edge.
    pub start: Option<SymbolVisit>,
    /// Cycles of slack subtracted before `start` (in-flight stores).
    pub lead: u64,
    /// Window end (exclusive, plus `tail`).
    pub end: SymbolVisit,
    /// Cycles of slack added after `end`.
    pub tail: u64,
}

impl WindowHint {
    /// A window from `start` (visit `start_visit`) to `end`
    /// (visit `end_visit`), widened by the given slacks.
    pub fn span(
        start: impl Into<String>,
        start_visit: usize,
        lead: u64,
        end: impl Into<String>,
        end_visit: usize,
        tail: u64,
    ) -> WindowHint {
        WindowHint {
            start: Some(SymbolVisit::new(start, start_visit)),
            lead,
            end: SymbolVisit::new(end, end_visit),
            tail,
        }
    }

    /// A window from the trigger edge to `end`, plus `tail` cycles.
    pub fn from_trigger(end: impl Into<String>, end_visit: usize, tail: u64) -> WindowHint {
        WindowHint {
            start: None,
            lead: 0,
            end: SymbolVisit::new(end, end_visit),
            tail,
        }
    }
}

type PredictFn = Arc<dyn Fn(&[u8], u8) -> f64 + Send + Sync>;

/// An owned input-canonicalization closure (see
/// [`CipherTarget::input_canonicalizer`]).
pub type InputCanonicalizer = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// One attack model of a target: a CPA selection function plus the
/// metadata the generic drivers need (what kind of model it is, the
/// true value of the attacked key byte, and where in the execution its
/// leakage lives).
#[derive(Clone)]
pub struct TargetModel {
    /// Model name, as printed in verdicts.
    pub name: String,
    /// Microarchitecture-aware or not.
    pub kind: ModelKind,
    /// The true value of the targeted key byte (for ranking).
    pub correct: u8,
    /// Where this model's leakage lives.
    pub window: WindowHint,
    predict: PredictFn,
}

impl TargetModel {
    /// Wraps a selection function (any `sca-analysis` model) with the
    /// portfolio metadata.
    pub fn new(
        kind: ModelKind,
        correct: u8,
        window: WindowHint,
        model: impl SelectionFunction + 'static,
    ) -> TargetModel {
        TargetModel {
            name: model.name(),
            kind,
            correct,
            window,
            predict: Arc::new(move |input, guess| model.predict(input, guess)),
        }
    }

    /// The model's prediction at the *true* key — the secret expression
    /// audits and characterizations correlate against.
    pub fn predict_true(&self, input: &[u8]) -> f64 {
        (self.predict)(input, self.correct)
    }
}

impl SelectionFunction for TargetModel {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        (self.predict)(input, guess)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for TargetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TargetModel({} / {:?})", self.name, self.kind)
    }
}

/// A cipher implementation the portfolio can attack.
///
/// The contract splits a campaign input into a *plaintext* prefix (what
/// the staging writes into simulator memory) and an optional suffix of
/// attacker-side knowledge or victim-side randomness appended by
/// [`CipherTarget::finish_input`] — the SPECK target appends the
/// golden-model ciphertext its last-round models read (public data for
/// a known-ciphertext attacker), the masked AES target appends the mask
/// bytes its implementation draws (never read by any model).
///
/// Everything downstream — the `sca-campaign` sinks and shard plans,
/// the TVLA classification, the node-level audits, the Table-2-style
/// characterization — runs against `&dyn CipherTarget` and never names
/// a concrete cipher.
pub trait CipherTarget: Send + Sync {
    /// Registry name (stable: verdict lines key off it).
    fn name(&self) -> &str;

    /// The program image under attack.
    fn program(&self) -> &Program;

    /// Builds a loaded, constant-staged and cache-warmed template CPU.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    fn build(&self, uarch: &UarchConfig) -> Result<Cpu, UarchError>;

    /// Bytes of plaintext the staging writes per execution.
    fn plaintext_len(&self) -> usize;

    /// Total campaign input length (plaintext plus any finished
    /// suffix).
    fn input_len(&self) -> usize;

    /// The fixed plaintext of TVLA fixed-vs-random campaigns.
    fn fixed_plaintext(&self) -> Vec<u8> {
        vec![0x5a; self.plaintext_len()]
    }

    /// Completes a plaintext into a full campaign input (appending
    /// derived public data or victim randomness). Defaults to identity.
    fn finish_input(&self, plaintext: Vec<u8>, _rng: &mut StdRng) -> Vec<u8> {
        plaintext
    }

    /// Draws one campaign input: a uniform random plaintext, finished.
    fn generate(&self, rng: &mut StdRng, _index: usize) -> Vec<u8> {
        let mut plaintext = vec![0u8; self.plaintext_len()];
        rng.fill(&mut plaintext[..]);
        self.finish_input(plaintext, rng)
    }

    /// Whether an input belongs to the TVLA fixed population.
    fn is_fixed_class(&self, input: &[u8]) -> bool {
        input[..self.plaintext_len()] == self.fixed_plaintext()[..]
    }

    /// An owned closure canonicalizing a buffer of raw random bytes
    /// (length [`CipherTarget::input_len`]) into a *valid* campaign
    /// input, re-deriving any computed suffix from the plaintext
    /// prefix — for drivers like the node-level audit that draw inputs
    /// themselves instead of going through [`CipherTarget::generate`]
    /// (owned so it can live inside `'static` audit expressions). The
    /// default treats the raw bytes as already valid (true whenever
    /// the suffix is independent randomness, e.g. the masked-AES mask
    /// bytes); targets with a *derived* suffix (SPECK's appended
    /// ciphertext) must override it, or their models would read
    /// garbage.
    fn input_canonicalizer(&self) -> InputCanonicalizer {
        Arc::new(|raw: &[u8]| raw.to_vec())
    }

    /// Stages one input into a (cloned) CPU before an execution.
    fn stage(&self, cpu: &mut Cpu, input: &[u8]);

    /// Stages the execution-invariant memory contract (tables, round
    /// keys) — what [`CipherTarget::build`] does once, exposed for
    /// audits that construct their own bare CPUs.
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    fn stage_constants(&self, cpu: &mut Cpu) -> Result<(), UarchError>;

    /// Golden-model ciphertext for an input (reference for conformance
    /// checks).
    fn reference(&self, input: &[u8]) -> Vec<u8>;

    /// Reads the ciphertext from a finished execution's memory.
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    fn output(&self, cpu: &Cpu) -> Result<Vec<u8>, UarchError>;

    /// The target's attack models (at least one [`ModelKind::ValueHw`]
    /// and one [`ModelKind::TransitionHd`]).
    fn models(&self) -> Vec<TargetModel>;

    /// The window TVLA and the per-component characterization analyze
    /// (usually the primary HD model's window).
    fn primary_window(&self) -> WindowHint;

    /// What the static leakage linter (`sca-lint`) needs to know about
    /// this target: the canonical concrete staging of its memory
    /// contract (tables, round keys, one representative plaintext and
    /// mask draw), the taint labelling of the secret / input / mask
    /// regions, and any diagnostic-release spans where the program
    /// intentionally de-blinds public outputs.
    fn lint_spec(&self) -> sca_lint::LintSpec;
}
