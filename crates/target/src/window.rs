//! Resolving symbol-level [`WindowHint`]s into cycle windows — and,
//! for the static linter, into instruction-address windows.

use sca_isa::{decode, Insn, InsnKind, Program};
use sca_uarch::{Cpu, PipelineObserver};

use crate::{CipherTarget, SymbolVisit, TargetError, WindowError, WindowHint};

/// A hint resolved against one probe execution.
#[derive(Clone, Copy, Debug)]
pub struct ResolvedWindow {
    /// `(start, len)` in trigger-relative cycles — what campaigns crop
    /// to (after sampling-rate expansion).
    pub trigger_relative: (u64, u64),
    /// `[start, end)` in absolute cycles — what node-level audits
    /// record in.
    pub absolute: (u64, u64),
}

/// Observer extracting the first rising-trigger cycle and every
/// retirement `(cycle, addr)`.
#[derive(Default, Debug)]
struct RetireProbe {
    start: Option<u64>,
    retirements: Vec<(u64, u32)>,
}

impl PipelineObserver for RetireProbe {
    fn trigger(&mut self, cycle: u64, high: bool) {
        if high {
            self.start.get_or_insert(cycle);
        }
    }

    fn retire(&mut self, cycle: u64, addr: u32, _insn: Insn) {
        self.retirements.push((cycle, addr));
    }
}

fn nth_visit(
    target: &dyn CipherTarget,
    probe: &RetireProbe,
    t0: u64,
    at: &SymbolVisit,
) -> Result<u64, WindowError> {
    let addr = target
        .program()
        .symbol(&at.symbol)
        .ok_or_else(|| WindowError::MissingSymbol {
            target: target.name().to_owned(),
            symbol: at.symbol.clone(),
        })?;
    probe
        .retirements
        .iter()
        .filter(|&&(cycle, a)| a == addr && cycle >= t0)
        .nth(at.visit)
        .map(|&(cycle, _)| cycle - t0)
        .ok_or_else(|| WindowError::MissingVisit {
            target: target.name().to_owned(),
            symbol: at.symbol.clone(),
            visit: at.visit,
        })
}

/// Resolves a window hint by probing one execution of the target on a
/// clone of `cpu` (the targets are constant-time, so one probe stands
/// for all executions).
///
/// # Errors
///
/// Propagates simulator faults as [`TargetError::Uarch`]; a hint naming
/// a symbol the program lacks, a visit that never happens, a probe run
/// without a trigger, or an empty resolved span — all packaging bugs in
/// the target definition — surface as [`TargetError::Window`] naming
/// the misconfigured target instead of aborting the campaign.
pub fn resolve_window(
    target: &dyn CipherTarget,
    cpu: &Cpu,
    hint: &WindowHint,
) -> Result<ResolvedWindow, TargetError> {
    use rand::SeedableRng;
    let mut probe_cpu = cpu.clone();
    probe_cpu.restart(target.program().entry());
    let input = target.generate(&mut rand::rngs::StdRng::seed_from_u64(0x77aa), 0);
    target.stage(&mut probe_cpu, &input);
    let mut probe = RetireProbe::default();
    probe_cpu.run(&mut probe)?;
    let t0 = probe.start.ok_or_else(|| WindowError::NoTrigger {
        target: target.name().to_owned(),
    })?;

    let start = match &hint.start {
        Some(at) => nth_visit(target, &probe, t0, at)?.saturating_sub(hint.lead),
        None => 0,
    };
    let end = nth_visit(target, &probe, t0, &hint.end)? + hint.tail;
    if end <= start {
        return Err(WindowError::Empty {
            target: target.name().to_owned(),
        }
        .into());
    }
    Ok(ResolvedWindow {
        trigger_relative: (start, end - start),
        absolute: (t0 + start, t0 + end),
    })
}

/// Resolves a [`WindowHint`] into a *static* instruction-address window
/// `[start, end)` over the program text — where the hint's dynamic
/// cycle window retires — so the differential validation can join the
/// dynamic Table-2 characterization against `sca-lint` diagnostics
/// (which carry instruction addresses) without running the simulator.
///
/// Symbols resolve directly; the hint's cycle slacks convert at one
/// instruction per cycle (a superset on a dual-issue core, which only
/// retires *faster*). Visit counts cannot be resolved statically, so
/// whenever the hint needs dynamic context — it revisits a loop label
/// (`end.visit > 0`), anchors at the trigger edge (where the end symbol
/// heads the traced loop), or resolves empty — the end widens to the
/// enclosing loop: the first backward non-link branch at or after the
/// end symbol whose target is at or before it, inclusive.
///
/// Returns `None` if a symbol is missing, no `trig #1` exists for a
/// trigger-anchored hint, or the window still resolves empty.
pub fn static_window(program: &Program, hint: &WindowHint) -> Option<(u32, u32)> {
    let base = program.base();
    let limit = base + program.len_bytes();
    let start = match &hint.start {
        Some(at) => program
            .symbol(&at.symbol)?
            .saturating_sub(u32::try_from(hint.lead).ok()?.saturating_mul(4))
            .max(base),
        None => program.words().iter().enumerate().find_map(|(i, &w)| {
            matches!(decode(w).ok()?.kind, InsnKind::Trig { high: true })
                .then(|| base + 4 * i as u32)
        })?,
    };
    let end_sym = program.symbol(&hint.end.symbol)?;
    let mut end = end_sym
        .saturating_add(u32::try_from(hint.tail).ok()?.saturating_mul(4))
        .min(limit);
    if hint.end.visit > 0 || hint.start.is_none() || end <= start {
        let mut addr = end_sym;
        while addr < limit {
            if let Ok(insn) = program.insn_at(addr) {
                if let InsnKind::Branch {
                    link: false,
                    offset,
                } = insn.kind
                {
                    let target = addr
                        .wrapping_add(4)
                        .wrapping_add((offset as u32).wrapping_mul(4));
                    if target <= end_sym {
                        end = end.max(addr + 4);
                        break;
                    }
                }
            }
            addr += 4;
        }
    }
    (end > start).then_some((start, end))
}
