; PRESENT-80 encryption for the simulated Cortex-A7-like core.
;
; The 4-bit-S-box member of the cipher portfolio. The software shape is
; the classic byte-serial embedded implementation:
;   * sBoxLayer: one combined two-nibble table lookup per state byte,
;     loads and stores walking the 8 state bytes in order — the
;     substituted bytes stream through the LSU as back-to-back sub-word
;     stores, driving the align-buffer remanence of Table 2 row 7;
;   * pLayer: the 64-bit bit permutation assembled from per-nibble
;     spread tables (16 positions x 16 values, low/high output words),
;     precomputed by the Rust harness;
;   * addRoundKey: word-wise XOR against staged round keys.
;
; The code is constant-time given warm tables: the pre-trigger warm
; loop touches every table cache line, so the in-window table lookups
; (the only data-dependent addresses) always hit.
;
; Memory contract with the Rust harness (crates/target/src/present.rs):
;   STATE  0x1000  8-byte block, in/out, big-endian byte order
;   RK     0x1100  32 x 8-byte round keys (big-endian bytes)
;   SP     0x1300  256-byte combined two-nibble S-box table
;   PLO    0x1400  pLayer spread tables, low output words (16x16 x u32)
;   PHI    0x1800  pLayer spread tables, high output words
; The harness stages RK/SP/PLO/PHI once and rewrites STATE per run.

        .equ  STATE, 0x1000
        .equ  RK,    0x1100
        .equ  SP,    0x1300
        .equ  PLO,   0x1400
        .equ  PHI,   0x1800
        .equ  TEND,  0x1c00

start:  mov   r3, #STATE
        mov   r2, #RK
        mov   r4, #SP
        mov   r6, #PLO
        mov   r7, #PHI
; Pre-trigger table warm: one load per cache line over SP/PLO/PHI so
; the data-dependent in-window lookups never miss.
        mov   r0, r4
        mov   r1, #TEND
warm:   ldr   r8, [r0]
        add   r0, r0, #32
        cmp   r0, r1
        bne   warm
        trig  #1
        mov   r5, #31
; --- one substitution-permutation round ------------------------------
round:  ldr   r0, [r3]          ; addRoundKey, word-wise
        ldr   r1, [r2], #4
        eor   r0, r0, r1
        str   r0, [r3]
        ldr   r0, [r3, #4]
        ldr   r1, [r2], #4
        eor   r0, r0, r1
        str   r0, [r3, #4]
; sBoxLayer: state[i] = SP[state[i]], i = 0..7 in order. Software-
; pipelined pairs: both outputs of a pair store back to back — the
; consecutive sub-word stores the HD model targets (`sbox` visit 0 is
; the round-1 analysis window).
sbox:   mov   r0, r3            ; read pointer
        mov   r12, r3           ; write pointer
        mov   r9, #4            ; four byte pairs
sb_loop:
        ldrb  r1, [r0], #1
        ldrb  r11, [r0], #1
        ldrb  r1, [r4, r1]      ; SP[b(i)]
        ldrb  r11, [r4, r11]    ; SP[b(i+1)]
        strb  r1, [r12], #1     ; store, back to back
        strb  r11, [r12], #1
        subs  r9, r9, #1
        bne   sb_loop
; pLayer: OR together the spread-table images of all 16 nibbles.
; Offsets: hi nibble of byte i sits at position 2i -> i*128 + v*4;
; lo nibble at position 2i+1 -> i*128 + 64 + v*4.
perm:   mov   r8, #0            ; low output word
        mov   r9, #0            ; high output word
        mov   r0, #0            ; byte index
pl_loop:
        ldrb  r1, [r3, r0]      ; substituted byte i
        lsr   r11, r1, #4       ; hi nibble value
        lsl   r11, r11, #2
        lsl   r12, r0, #7
        add   r11, r11, r12     ; i*128 + v*4
        ldr   r12, [r6, r11]
        orr   r8, r8, r12
        ldr   r12, [r7, r11]
        orr   r9, r9, r12
        and   r11, r1, #0x0f    ; lo nibble value
        lsl   r11, r11, #2
        add   r11, r11, #64
        lsl   r12, r0, #7
        add   r11, r11, r12     ; i*128 + 64 + v*4
        ldr   r12, [r6, r11]
        orr   r8, r8, r12
        ldr   r12, [r7, r11]
        orr   r9, r9, r12
        add   r0, r0, #1
        cmp   r0, #8
        bne   pl_loop
        str   r8, [r3]
        str   r9, [r3, #4]
        subs  r5, r5, #1
        bne   round
; --- final addRoundKey ------------------------------------------------
        ldr   r0, [r3]
        ldr   r1, [r2], #4
        eor   r0, r0, r1
        str   r0, [r3]
        ldr   r0, [r3, #4]
        ldr   r1, [r2]
        eor   r0, r0, r1
        str   r0, [r3, #4]
        trig  #0
        halt
