; SPECK64/128 encryption for the simulated Cortex-A7-like core.
;
; The ARX member of the cipher portfolio: every round is one modular
; add, two rotates and two xors, so the secret-dependent values ride
; precisely the pipeline paths AES never touches — the barrel-shifter
; buffer (both rotates) and the ALU adder's carry chain. The state is
; committed to memory with a byte-granular store loop each round (the
; idiom of code feeding a byte-wide peripheral buffer), which is the
; consecutive sub-word store sequence the portfolio's HD model targets,
; exactly like the SubBytes stores of the AES implementation.
;
; The code is constant-time by construction: no data-dependent branches
; or addresses anywhere (the cipher has no tables at all).
;
; Memory contract with the Rust harness (crates/target/src/speck.rs):
;   STATE  0x1000  8-byte block, in/out: x word at +0, y word at +4 (LE)
;   RK     0x1100  27 round-key words, staged by the harness
; The harness stages RK once and rewrites STATE before each run.

        .equ  STATE, 0x1000
        .equ  RK,    0x1100

start:  mov   r3, #STATE
        mov   r2, #RK
        trig  #1
        ldr   r0, [r3]          ; x
        ldr   r1, [r3, #4]      ; y
        mov   r5, #27
round:  ror   r0, r0, #8        ; x >>> 8        (shifter path)
        add   r0, r0, r1        ; + y            (adder carry chain)
        ldr   r8, [r2], #4      ; round key
        eor   r0, r0, r8        ; ^ k
        ror   r1, r1, #29       ; y <<< 3        (shifter path)
        eor   r1, r1, r0        ; ^ x
; byte-granular state commit: eight sub-word stores, back to back per
; word — the next-to-last round's x commit is the portfolio's analysis
; window (`commit` visit 25).
commit: strb  r0, [r3]          ; x byte 0
        lsr   r8, r0, #8
        strb  r8, [r3, #1]      ; x byte 1   <- HW model target
        lsr   r8, r0, #16
        strb  r8, [r3, #2]      ; x byte 2   <- HD pair (byte 1 -> 2)
        lsr   r8, r0, #24
        strb  r8, [r3, #3]      ; x byte 3
        strb  r1, [r3, #4]      ; y byte 0
        lsr   r8, r1, #8
        strb  r8, [r3, #5]      ; y byte 1
        lsr   r8, r1, #16
        strb  r8, [r3, #6]      ; y byte 2
        lsr   r8, r1, #24
        strb  r8, [r3, #7]      ; y byte 3
        subs  r5, r5, #1
        bne   round
        trig  #0
        halt
