//! The acceptance-critical portfolio attacks at test scale: the
//! microarchitecture-aware HD model must recover the targeted key byte
//! (rank 0) for the two new, unprotected cipher families, through the
//! fully generic `TargetCampaign` path.

use sca_power::GaussianNoise;
use sca_target::{
    CipherTarget, ModelKind, PresentTarget, SpeckTarget, TargetCampaign, TargetCampaignConfig,
};
use sca_uarch::UarchConfig;

fn quick_config() -> TargetCampaignConfig {
    TargetCampaignConfig {
        traces: 200,
        executions_per_trace: 2,
        threads: 4,
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 30.0,
        },
        ..TargetCampaignConfig::default()
    }
}

fn assert_hd_recovers(target: &dyn CipherTarget) {
    let campaign = TargetCampaign::new(target, &UarchConfig::cortex_a7(), quick_config())
        .expect("target builds");
    let models = target.models();
    let hd = models
        .iter()
        .find(|m| m.kind == ModelKind::TransitionHd)
        .expect("target has an HD model");
    let verdict = campaign.cpa(hd).expect("campaign runs");
    assert!(
        verdict.success(),
        "[{}] {} (peak {:.4}, best wrong {:.4})",
        target.name(),
        verdict.verdict(),
        verdict.peak,
        verdict.best_wrong,
    );
}

#[test]
fn speck_hd_model_recovers_the_key_byte() {
    assert_hd_recovers(&SpeckTarget::default());
}

#[test]
fn present_hd_model_recovers_the_key_byte() {
    assert_hd_recovers(&PresentTarget::default());
}
