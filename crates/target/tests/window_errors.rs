//! Misconfigured window hints must surface as typed [`WindowError`]s
//! naming the target — not as panics that abort a portfolio run
//! mid-campaign.

use sca_target::{resolve_window, CipherTarget, SpeckTarget, TargetError, WindowError, WindowHint};
use sca_uarch::UarchConfig;

fn built_speck() -> (SpeckTarget, sca_uarch::Cpu) {
    let target = SpeckTarget::default();
    let cpu = target
        .build(&UarchConfig::cortex_a7().with_ideal_memory())
        .expect("target builds");
    (target, cpu)
}

#[test]
fn missing_symbol_is_a_typed_error() {
    let (target, cpu) = built_speck();
    let hint = WindowHint::from_trigger("no_such_label", 0, 4);
    match resolve_window(&target, &cpu, &hint) {
        Err(TargetError::Window(WindowError::MissingSymbol {
            target: name,
            symbol,
        })) => {
            assert_eq!(name, target.name());
            assert_eq!(symbol, "no_such_label");
        }
        other => panic!("expected a MissingSymbol window error, got {other:?}"),
    }
}

#[test]
fn impossible_visit_count_is_a_typed_error() {
    let (target, cpu) = built_speck();
    // The primary window's end symbol exists, but nothing retires a
    // million times.
    let mut hint = target.primary_window();
    hint.end.visit = 1_000_000;
    match resolve_window(&target, &cpu, &hint) {
        Err(TargetError::Window(WindowError::MissingVisit { target: name, .. })) => {
            assert_eq!(name, target.name());
        }
        other => panic!("expected a MissingVisit window error, got {other:?}"),
    }
}

#[test]
fn window_errors_render_the_target_name() {
    let (target, cpu) = built_speck();
    let hint = WindowHint::from_trigger("nowhere", 0, 0);
    let error = resolve_window(&target, &cpu, &hint).unwrap_err();
    let text = error.to_string();
    assert!(
        text.contains(target.name()) && text.contains("nowhere"),
        "error must say which target is misconfigured: {text}"
    );
}

#[test]
fn well_formed_hints_still_resolve() {
    let (target, cpu) = built_speck();
    let window = resolve_window(&target, &cpu, &target.primary_window()).expect("resolves");
    assert!(window.trigger_relative.1 > 0);
    assert!(window.absolute.1 > window.absolute.0);
}
