//! Differential conformance of the new cipher implementations: the ISA
//! programs, executed on the `sca-isa` architectural reference
//! interpreter, must agree with the Rust golden models over random
//! keys and plaintexts. (The pipeline simulator is separately pinned to
//! the same interpreter by the workspace `uarch_conformance` proptest,
//! closing the chain program → interpreter → pipeline.)

use proptest::prelude::*;

fn arb_bytes(len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), len..len + 1)
}

use sca_isa::Interp;
use sca_target::{
    present80_program, present_encrypt, present_round_keys, present_sp_table,
    present_spread_tables, speck64128_program, speck_encrypt, speck_round_keys, PRESENT_PHI_ADDR,
    PRESENT_PLO_ADDR, PRESENT_RK_ADDR, PRESENT_ROUNDS, PRESENT_SP_ADDR, PRESENT_STATE_ADDR,
    SPECK_RK_ADDR, SPECK_ROUNDS, SPECK_STATE_ADDR,
};

const MEM: u32 = 0x8000;
const STEPS: u64 = 200_000;

fn run_speck(key: &[u8; 16], pt: &[u8; 8]) -> [u8; 8] {
    let program = speck64128_program().expect("embedded SPECK source assembles");
    let mut interp = Interp::new(MEM);
    interp.load(&program).expect("image fits");
    let mut rk_bytes = [0u8; SPECK_ROUNDS * 4];
    for (i, rk) in speck_round_keys(key).iter().enumerate() {
        rk_bytes[4 * i..4 * i + 4].copy_from_slice(&rk.to_le_bytes());
    }
    interp
        .write_bytes(SPECK_RK_ADDR, &rk_bytes)
        .expect("mapped");
    interp.write_bytes(SPECK_STATE_ADDR, pt).expect("mapped");
    interp.run(STEPS).expect("halts");
    let mut ct = [0u8; 8];
    ct.copy_from_slice(interp.read_bytes(SPECK_STATE_ADDR, 8).expect("mapped"));
    ct
}

fn run_present(key: &[u8; 10], pt: &[u8; 8]) -> [u8; 8] {
    let program = present80_program().expect("embedded PRESENT source assembles");
    let mut interp = Interp::new(MEM);
    interp.load(&program).expect("image fits");
    interp
        .write_bytes(PRESENT_SP_ADDR, &present_sp_table())
        .expect("mapped");
    let (lo, hi) = present_spread_tables();
    let mut words = [0u8; 1024];
    for (i, w) in lo.iter().enumerate() {
        words[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    interp
        .write_bytes(PRESENT_PLO_ADDR, &words)
        .expect("mapped");
    for (i, w) in hi.iter().enumerate() {
        words[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    interp
        .write_bytes(PRESENT_PHI_ADDR, &words)
        .expect("mapped");
    let mut rk_bytes = [0u8; (PRESENT_ROUNDS + 1) * 8];
    for (i, rk) in present_round_keys(key).iter().enumerate() {
        rk_bytes[8 * i..8 * i + 8].copy_from_slice(&rk.to_be_bytes());
    }
    interp
        .write_bytes(PRESENT_RK_ADDR, &rk_bytes)
        .expect("mapped");
    interp.write_bytes(PRESENT_STATE_ADDR, pt).expect("mapped");
    interp.run(STEPS).expect("halts");
    let mut ct = [0u8; 8];
    ct.copy_from_slice(interp.read_bytes(PRESENT_STATE_ADDR, 8).expect("mapped"));
    ct
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn speck_program_matches_golden_model(
        key_bytes in arb_bytes(16),
        pt_bytes in arb_bytes(8),
    ) {
        let mut key = [0u8; 16];
        key.copy_from_slice(&key_bytes);
        let mut pt = [0u8; 8];
        pt.copy_from_slice(&pt_bytes);
        prop_assert_eq!(run_speck(&key, &pt), speck_encrypt(&key, &pt));
    }

    #[test]
    fn present_program_matches_golden_model(
        key_bytes in arb_bytes(10),
        pt_bytes in arb_bytes(8),
    ) {
        let mut key = [0u8; 10];
        key.copy_from_slice(&key_bytes);
        let mut pt = [0u8; 8];
        pt.copy_from_slice(&pt_bytes);
        prop_assert_eq!(run_present(&key, &pt), present_encrypt(&key, &pt));
    }
}
