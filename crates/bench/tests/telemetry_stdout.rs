//! Telemetry must be invisible on stdout: the experiment binaries print
//! byte-identical verdicts whether span timing is enabled (the default)
//! or disabled via `SCA_TELEMETRY=0`. Counters are always on, so this
//! also proves the counter hot paths never print.
//!
//! The check spawns a real binary rather than calling the library:
//! the invariant is about *process* stdout, including anything a
//! dependency might write.

use std::process::Command;

/// One spawned `figure3` run at test scale.
fn run_figure3(telemetry: &str) -> (Vec<u8>, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_figure3"))
        .args(["--quick", "--traces", "80"])
        .env("SCA_TELEMETRY", telemetry)
        .output()
        .expect("figure3 spawns");
    (output.stdout, output.status.success())
}

#[test]
fn stdout_is_byte_identical_with_and_without_telemetry() {
    let (enabled, ok_enabled) = run_figure3("1");
    let (disabled, ok_disabled) = run_figure3("0");
    assert!(ok_enabled, "figure3 with telemetry failed");
    assert!(ok_disabled, "figure3 without telemetry failed");
    assert!(!enabled.is_empty(), "figure3 printed nothing");
    assert_eq!(
        enabled, disabled,
        "telemetry changed stdout: the verdict pins are void"
    );
}
