//! The `lint` binary's CLI contract: byte-determinism and strict args.
//!
//! The report is computed by a single-threaded, simulation-free
//! analysis, so its stdout must be byte-identical run to run and match
//! the committed `LINT_PINS.txt` exactly (the CI lint-smoke job diffs
//! the release build against the same file). Campaign flags that
//! cannot change the output are rejected with exit 2, like the other
//! strict-args binaries.

use std::path::Path;
use std::process::{Command, Output};

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("lint binary runs")
}

#[test]
fn stdout_is_byte_identical_across_runs_and_matches_the_pins() {
    let first = run_lint(&[]);
    assert!(first.status.success(), "full run must exit 0");
    let second = run_lint(&[]);
    assert_eq!(
        first.stdout, second.stdout,
        "lint stdout must be byte-identical run to run"
    );

    let pins = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../LINT_PINS.txt");
    let pinned = std::fs::read(&pins).expect("LINT_PINS.txt is committed");
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&pinned),
        "lint stdout diverged from LINT_PINS.txt — regenerate the pins \
         alongside the rule or program change that explains it"
    );
}

#[test]
fn campaign_flags_are_rejected_with_exit_2() {
    for args in [
        &["--threads", "4"][..],
        &["--threads=4"][..],
        &["--lanes", "2"][..],
        &["--lanes=2"][..],
        &["--unknown"][..],
        &["no-such-target"][..],
    ] {
        let out = run_lint(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "lint {args:?} must exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            out.stdout.is_empty(),
            "rejected invocations must not print a partial report"
        );
    }
}

#[test]
fn narrowing_to_the_hardened_target_exits_clean() {
    let out = run_lint(&["aes128-masked+sched"]);
    assert!(
        out.status.success(),
        "the hardened masked AES must lint clean (exit 0), got {:?}",
        out.status.code()
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean: no diagnostics"), "{stdout}");

    let dirty = run_lint(&["aes128"]);
    assert_eq!(
        dirty.status.code(),
        Some(3),
        "naming an expected-dirty target must report exit 3"
    );
}
