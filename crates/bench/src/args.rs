//! Minimal command-line parsing shared by the regeneration binaries.

/// Common knobs: `--traces N`, `--seed N`, `--threads N`, `--full`.
///
/// `--full` raises trace counts to the paper's scale (100k traces for
/// the characterizations, Figure 3); without it the defaults are sized
/// for a quick run with the same qualitative outcome.
#[derive(Clone, Copy, Debug)]
pub struct CommonArgs {
    /// Trace count override.
    pub traces: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Paper-scale campaign.
    pub full: bool,
}

impl Default for CommonArgs {
    fn default() -> CommonArgs {
        CommonArgs {
            traces: None,
            seed: 0xdac_2018,
            threads: 8,
            full: false,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> CommonArgs {
        let mut out = CommonArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--traces" => {
                    out.traces = args.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        out.threads = v;
                    }
                }
                "--full" => out.full = true,
                _ => {}
            }
        }
        out
    }

    /// Picks the trace count: explicit override, else `full_default` when
    /// `--full`, else `quick_default`.
    pub fn trace_count(&self, quick_default: usize, full_default: usize) -> usize {
        self.traces.unwrap_or(if self.full {
            full_default
        } else {
            quick_default
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_count_precedence() {
        let mut args = CommonArgs::default();
        assert_eq!(args.trace_count(100, 100_000), 100);
        args.full = true;
        assert_eq!(args.trace_count(100, 100_000), 100_000);
        args.traces = Some(42);
        assert_eq!(args.trace_count(100, 100_000), 42);
    }
}
