//! Minimal command-line parsing shared by the regeneration binaries.

use std::fmt;

/// Common knobs: `--traces N`, `--seed N`, `--threads N`, `--batch N`,
/// `--lanes N`, `--quick`, `--full`, `--bench-json PATH`, plus the
/// persistent-store family `--store DIR`, `--checkpoint-every N`,
/// `--resume`, `--reanalyze`, `--kill-after N` (only `portfolio`
/// accepts it).
///
/// `--full` raises trace counts to the paper's scale (100k traces for
/// the characterizations, Figure 3); without it the defaults are sized
/// for a quick run with the same qualitative outcome. `--batch` sets how
/// many traces each campaign worker buffers between accumulator updates
/// (it bounds transient memory and never changes results).
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Trace count override.
    pub traces: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between sink updates.
    pub batch: usize,
    /// Lockstep lanes per simulation group (1 = scalar path). Results
    /// are bit-identical at every setting; only throughput changes.
    pub lanes: usize,
    /// Paper-scale campaign.
    pub full: bool,
    /// Write per-kernel wall-clock timings to this path, as a JSON
    /// array in the `customSmallerIsBetter` shape
    /// (`[{"name", "value", "unit"}]`) that CI benchmark trackers
    /// ingest. Timings are machine-dependent and go to the file only —
    /// stdout stays byte-deterministic.
    pub bench_json: Option<String>,
    /// Write the run's telemetry snapshot (span phase times, work
    /// counters, gauges, histograms) to this path as a
    /// `customSmallerIsBetter` JSON array. Like `--bench-json`, the file
    /// is the only output touched — stdout stays byte-deterministic.
    pub metrics_json: Option<String>,
    /// Persist campaign traces under this directory (one store per
    /// target/analysis pair) and checkpoint accumulator state as the
    /// campaigns run.
    pub store: Option<String>,
    /// Traces per checkpoint segment in stored campaigns.
    pub checkpoint_every: u64,
    /// Resume stored campaigns from their last valid checkpoint.
    pub resume: bool,
    /// Skip simulation entirely: stream the stored corpora back through
    /// the attack accumulators and print the CPA/TVLA verdicts.
    pub reanalyze: bool,
    /// Fault injection for the crash-recovery CI job: abort the run
    /// (exit 3) after this many traces have been persisted, counting
    /// across every stored campaign of the run in execution order.
    pub kill_after: Option<u64>,
}

impl CommonArgs {
    /// Whether the quick defaults are in effect (no `--full`); `--quick`
    /// states it explicitly, which is what CI and the docs spell out for
    /// the `masked` countermeasure suite.
    pub fn quick(&self) -> bool {
        !self.full
    }
}

impl Default for CommonArgs {
    fn default() -> CommonArgs {
        CommonArgs {
            traces: None,
            seed: 0xdac_2018,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            lanes: sca_campaign::DEFAULT_LANES,
            full: false,
            bench_json: None,
            metrics_json: None,
            store: None,
            checkpoint_every: 1024,
            resume: false,
            reanalyze: false,
            kill_after: None,
        }
    }
}

/// A rejected command line: the offending argument and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgsError(String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

const USAGE: &str = "known flags: --traces N, --seed N, --threads N, --batch N, --lanes N, \
     --quick, --full, --bench-json PATH, --metrics-json PATH, --store DIR, \
     --checkpoint-every N, --resume, --reanalyze, --kill-after N";

impl CommonArgs {
    /// Parses `std::env::args`, exiting with status 2 on anything it
    /// does not recognize — a typo like `--trace` must fail loudly, not
    /// silently run the default campaign. `--help`/`-h` print the flag
    /// list and exit 0.
    pub fn parse() -> CommonArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match CommonArgs::parse_from(args) {
            Ok(args) => args,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns an error for an unrecognized flag, a flag missing its
    /// value, or a value that does not parse.
    pub fn parse_from<I>(args: I) -> Result<CommonArgs, ArgsError>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut out = CommonArgs::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| -> Result<String, ArgsError> {
                args.next()
                    .ok_or_else(|| ArgsError(format!("flag '{flag}' expects a value")))
            };
            match arg.as_str() {
                "--traces" => out.traces = Some(parse_value(&arg, &value(&arg)?)?),
                "--seed" => out.seed = parse_value(&arg, &value(&arg)?)?,
                "--threads" => out.threads = parse_value(&arg, &value(&arg)?)?,
                "--batch" => out.batch = parse_value(&arg, &value(&arg)?)?,
                "--lanes" => out.lanes = parse_value(&arg, &value(&arg)?)?,
                "--quick" => out.full = false,
                "--full" => out.full = true,
                "--bench-json" => out.bench_json = Some(value(&arg)?),
                "--metrics-json" => out.metrics_json = Some(value(&arg)?),
                "--store" => out.store = Some(value(&arg)?),
                "--checkpoint-every" => out.checkpoint_every = parse_value(&arg, &value(&arg)?)?,
                "--resume" => out.resume = true,
                "--reanalyze" => out.reanalyze = true,
                "--kill-after" => out.kill_after = Some(parse_value(&arg, &value(&arg)?)?),
                unknown => {
                    return Err(ArgsError(format!("unrecognized argument '{unknown}'")));
                }
            }
        }
        if out.threads == 0 {
            return Err(ArgsError("'--threads' must be at least 1".to_owned()));
        }
        if out.batch == 0 {
            return Err(ArgsError("'--batch' must be at least 1".to_owned()));
        }
        validate_lanes(out.lanes)?;
        if out.checkpoint_every == 0 {
            return Err(ArgsError(
                "'--checkpoint-every' must be at least 1".to_owned(),
            ));
        }
        if out.store.is_none() {
            // The strict-args contract: a flag must act or fail, never be
            // silently ignored — every store-family flag implies a store.
            let orphan = [
                (out.resume, "--resume"),
                (out.reanalyze, "--reanalyze"),
                (out.kill_after.is_some(), "--kill-after"),
            ]
            .into_iter()
            .find_map(|(set, flag)| set.then_some(flag));
            if let Some(flag) = orphan {
                return Err(ArgsError(format!("'{flag}' requires '--store DIR'")));
            }
        }
        if out.reanalyze && (out.resume || out.kill_after.is_some()) {
            return Err(ArgsError(
                "'--reanalyze' streams an existing corpus; it cannot be combined with \
                 '--resume' or '--kill-after'"
                    .to_owned(),
            ));
        }
        Ok(out)
    }

    /// Rejects `--bench-json` in binaries that emit no benchmark
    /// timings (`portfolio`, `figure4` and `table2` do), exiting with
    /// status 2 — the strict-args contract: a flag must never be
    /// silently ignored.
    pub fn reject_bench_json(&self, binary: &str) {
        if self.bench_json.is_some() {
            eprintln!(
                "error: '--bench-json' is not supported by '{binary}' \
                 (only 'portfolio', 'figure4' and 'table2')"
            );
            std::process::exit(2);
        }
    }

    /// Rejects the persistent-store flag family in binaries whose
    /// campaigns do not run against a trace store (only `portfolio`
    /// does), exiting with status 2. `--store` gates the whole family,
    /// so rejecting it suffices: the parser already refuses `--resume`,
    /// `--reanalyze` and `--kill-after` without it.
    pub fn reject_store_flags(&self, binary: &str) {
        if self.store.is_some() {
            eprintln!("error: '--store' is not supported by '{binary}' (only 'portfolio')");
            std::process::exit(2);
        }
    }

    /// Rejects `--metrics-json` in binaries that do not export a
    /// telemetry snapshot (only `portfolio` does), exiting with status 2
    /// — the same never-silently-ignored contract as
    /// [`reject_bench_json`](CommonArgs::reject_bench_json).
    pub fn reject_metrics_json(&self, binary: &str) {
        if self.metrics_json.is_some() {
            eprintln!("error: '--metrics-json' is not supported by '{binary}' (only 'portfolio')");
            std::process::exit(2);
        }
    }

    /// Picks the trace count: explicit override, else `full_default` when
    /// `--full`, else `quick_default`.
    pub fn trace_count(&self, quick_default: usize, full_default: usize) -> usize {
        self.traces.unwrap_or(if self.full {
            full_default
        } else {
            quick_default
        })
    }
}

/// Validates a `--lanes` value against the lockstep engine's bounds:
/// zero lanes is meaningless and more than [`sca_uarch::MAX_LANES`]
/// overruns the SIMD group width. Shared by every binary that accepts
/// the flag (`CommonArgs` and the `serve` front end), so the bound is
/// enforced — and reported — identically everywhere.
///
/// # Errors
///
/// Returns the canonical `'--lanes' must be in 1..=MAX` rejection for
/// an out-of-range value.
pub fn validate_lanes(lanes: usize) -> Result<(), ArgsError> {
    if lanes == 0 || lanes > sca_uarch::MAX_LANES {
        return Err(ArgsError(format!(
            "'--lanes' must be in 1..={}",
            sca_uarch::MAX_LANES
        )));
    }
    Ok(())
}

fn parse_value<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, ArgsError> {
    raw.parse()
        .map_err(|_| ArgsError(format!("flag '{flag}' got unparsable value '{raw}'")))
}

/// Writes a single wall-clock timing entry to `path` in the
/// `customSmallerIsBetter` JSON shape CI benchmark trackers ingest —
/// the one-entry counterpart of
/// [`crate::PortfolioResult::timings_json`], used by the `figure4` and
/// `table2` binaries' `--bench-json`. Timings are machine-dependent and
/// go to the file only; stdout stays byte-deterministic.
///
/// # Errors
///
/// Propagates file-write failures.
pub fn write_total_timing(path: &str, name: &str, seconds: f64) -> std::io::Result<()> {
    std::fs::write(
        path,
        format!("[\n  {{ \"name\": \"{name}\", \"unit\": \"s\", \"value\": {seconds:.6} }}\n]\n"),
    )?;
    eprintln!("wrote 1 kernel timing to {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, ArgsError> {
        CommonArgs::parse_from(args.iter().copied().map(str::to_owned))
    }

    #[test]
    fn trace_count_precedence() {
        let mut args = CommonArgs::default();
        assert_eq!(args.trace_count(100, 100_000), 100);
        args.full = true;
        assert_eq!(args.trace_count(100, 100_000), 100_000);
        args.traces = Some(42);
        assert_eq!(args.trace_count(100, 100_000), 42);
    }

    #[test]
    fn parses_all_flags() {
        let args = parse(&[
            "--traces",
            "500",
            "--seed",
            "9",
            "--threads",
            "3",
            "--batch",
            "32",
            "--lanes",
            "4",
            "--full",
            "--bench-json",
            "out.json",
            "--metrics-json",
            "metrics.json",
            "--store",
            "corpus/",
            "--checkpoint-every",
            "64",
            "--resume",
            "--kill-after",
            "123",
        ])
        .unwrap();
        assert_eq!(args.traces, Some(500));
        assert_eq!(args.seed, 9);
        assert_eq!(args.threads, 3);
        assert_eq!(args.batch, 32);
        assert_eq!(args.lanes, 4);
        assert!(args.full);
        assert_eq!(args.bench_json.as_deref(), Some("out.json"));
        assert_eq!(args.metrics_json.as_deref(), Some("metrics.json"));
        assert_eq!(args.store.as_deref(), Some("corpus/"));
        assert_eq!(args.checkpoint_every, 64);
        assert!(args.resume);
        assert_eq!(args.kill_after, Some(123));
    }

    #[test]
    fn empty_args_yield_defaults() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.traces, None);
        assert_eq!(args.seed, 0xdac_2018);
        assert_eq!(args.threads, 8);
        assert_eq!(args.batch, sca_campaign::DEFAULT_BATCH);
        assert_eq!(args.lanes, sca_campaign::DEFAULT_LANES);
        assert!(!args.full);
        assert!(args.bench_json.is_none());
        assert!(args.metrics_json.is_none());
        assert!(args.store.is_none());
        assert_eq!(args.checkpoint_every, 1024);
        assert!(!args.resume);
        assert!(!args.reanalyze);
        assert!(args.kill_after.is_none());
    }

    #[test]
    fn quick_is_the_default_and_overrides_full() {
        assert!(parse(&[]).unwrap().quick());
        assert!(parse(&["--quick"]).unwrap().quick());
        // Later flags win, in either order.
        assert!(parse(&["--full", "--quick"]).unwrap().quick());
        assert!(!parse(&["--quick", "--full"]).unwrap().quick());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let error = parse(&["--trace", "500"]).unwrap_err();
        assert!(error.to_string().contains("--trace"), "{error}");
    }

    #[test]
    fn missing_and_bad_values_are_rejected() {
        assert!(parse(&["--traces"]).is_err());
        assert!(parse(&["--bench-json"]).is_err());
        assert!(parse(&["--metrics-json"]).is_err());
        assert!(parse(&["--seed", "not-a-number"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--batch", "0"]).is_err());
        assert!(parse(&["--lanes", "0"]).is_err());
        assert!(parse(&["--lanes", "9"]).is_err());
        assert_eq!(parse(&["--lanes", "8"]).unwrap().lanes, 8);
        assert!(parse(&["--store"]).is_err());
        assert!(parse(&["--store", "d", "--checkpoint-every", "0"]).is_err());
        assert!(parse(&["--store", "d", "--kill-after", "many"]).is_err());
    }

    #[test]
    fn store_family_flags_require_a_store() {
        for orphan in ["--resume", "--reanalyze"] {
            let error = parse(&[orphan]).unwrap_err();
            assert!(error.to_string().contains("--store"), "{error}");
        }
        let error = parse(&["--kill-after", "5"]).unwrap_err();
        assert!(error.to_string().contains("--store"), "{error}");
        // With a store they all parse.
        assert!(parse(&["--store", "d", "--resume"]).unwrap().resume);
        assert!(parse(&["--store", "d", "--reanalyze"]).unwrap().reanalyze);
    }

    #[test]
    fn lanes_bounds_are_enforced_and_reported() {
        // Regression: `--lanes 0` and `--lanes > MAX_LANES` must be
        // rejected (exit 2 at the CLI), never silently clamped — a
        // zero-lane campaign would divide by zero in the shard plan and
        // an over-wide one would overrun the SIMD group.
        for bad in [0, sca_uarch::MAX_LANES + 1, usize::MAX] {
            let error = validate_lanes(bad).unwrap_err();
            assert!(error.to_string().contains("--lanes"), "{error}");
            assert!(
                parse(&["--lanes", &bad.to_string()]).is_err(),
                "parser accepted --lanes {bad}"
            );
        }
        // Every in-range width parses, including both edges.
        for good in 1..=sca_uarch::MAX_LANES {
            assert!(validate_lanes(good).is_ok());
            assert_eq!(parse(&["--lanes", &good.to_string()]).unwrap().lanes, good);
        }
    }

    #[test]
    fn reanalyze_excludes_mutating_store_flags() {
        assert!(parse(&["--store", "d", "--reanalyze", "--resume"]).is_err());
        assert!(parse(&["--store", "d", "--reanalyze", "--kill-after", "5"]).is_err());
    }
}
