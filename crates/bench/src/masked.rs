//! The countermeasure evaluation suite: masked AES-128 with and without
//! scheduling defenses, attacked with the paper's two CPA models plus a
//! fixed-vs-random TVLA assessment, and audited at the node level.
//!
//! Three targets run through the same campaign engine:
//!
//! 1. **unprotected** — the Figure 3/4 AES implementation;
//! 2. **masked** — the first-order table-recomputation masking of
//!    `sca_aes::MaskedAesSim` (ISA-level first-order secure);
//! 3. **masked + scheduled** — the same program hardened by the
//!    `sca-sched` share-distance scheduler (public scrub stores between
//!    the SubBytes share stores).
//!
//! The paper's story, reproduced end to end: the microarchitecture-
//! unaware `HW(SubBytes out)` model breaks the unprotected target and
//! *fails* against masking; the microarchitecture-aware consecutive-
//! store `HD` model keeps breaking the masked target — the shared store
//! mask cancels in the LSU's operand-path transitions (IS/EX buffers,
//! operand buses, align buffer) — until scheduling distance scrubs
//! those buffers, which restores the masking's security.

use rand::Rng;

use sca_aes::{
    aes128_masked_program, aes128_program, expand_key, AesSim, MaskedAesSim, SubBytesHw,
    SubBytesStoreHd, MASKED_INPUT_LEN, RK_ADDR, SBOX, SBOX_ADDR,
};
use sca_campaign::{Campaign, CampaignConfig, CpaSink, TtestSink};
use sca_core::{audit_program, AuditConfig, SecretModel};
use sca_isa::{Program, Reg};
use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig};
use sca_sched::{harden_program, HardenConfig, HardenReport, SharePolicy};
use sca_uarch::{Cpu, Node, UarchConfig};

use crate::probe::RetireLog;

/// The fixed plaintext of the TVLA fixed-vs-random populations.
pub const TVLA_FIXED_PT: [u8; 16] =
    *b"\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a";

/// Countermeasure-suite campaign parameters.
#[derive(Clone, Debug)]
pub struct MaskedConfig {
    /// Averaged traces per CPA / TVLA campaign.
    pub traces: usize,
    /// Executions averaged per trace.
    pub executions_per_trace: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between accumulator updates.
    pub batch: usize,
    /// The AES key under attack.
    pub key: [u8; 16],
    /// Targeted state byte (attacked with `HD(store byte-1 -> byte)`;
    /// the byte pair must be a SubBytes store pair, i.e. `byte` odd).
    pub target_byte: usize,
    /// Measurement noise.
    pub noise: GaussianNoise,
    /// Executions for the node-level audits.
    pub audit_executions: usize,
    /// Whether to re-attack the masked target under uarch ablations
    /// (the verdict-regression tests skip this section for speed).
    pub ablations: bool,
}

impl Default for MaskedConfig {
    fn default() -> MaskedConfig {
        MaskedConfig {
            traces: 400,
            executions_per_trace: 8,
            seed: 0x3a5ced,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            key: *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c",
            target_byte: 1,
            noise: GaussianNoise::bare_metal(),
            audit_executions: 250,
            ablations: true,
        }
    }
}

/// One CPA attack's verdict against one target.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Attack model name.
    pub model: String,
    /// Best-ranked key guess.
    pub recovered: u8,
    /// The true key byte.
    pub correct: u8,
    /// Rank of the true key byte (0 = recovered).
    pub rank: usize,
    /// Peak |corr| of the true key byte.
    pub peak: f64,
    /// Peak |corr| over all wrong guesses.
    pub best_wrong: f64,
}

impl AttackOutcome {
    /// Whether the attack recovered the key byte.
    pub fn success(&self) -> bool {
        self.rank == 0
    }

    /// The verdict line the binary prints and the regression tests pin.
    pub fn verdict(&self) -> String {
        format!(
            "{}: {} (recovered 0x{:02x}, true 0x{:02x}, rank {})",
            self.model,
            if self.success() { "SUCCESS" } else { "FAILURE" },
            self.recovered,
            self.correct,
            self.rank,
        )
    }
}

/// All assessments against one target.
#[derive(Clone, Debug)]
pub struct TargetResult {
    /// Target name (`unprotected`, `masked`, `masked+sched`).
    pub name: String,
    /// The microarchitecture-unaware Figure 3 model.
    pub hw: AttackOutcome,
    /// The microarchitecture-aware Figure 4 consecutive-store model.
    pub hd: AttackOutcome,
    /// Largest |t| of the fixed-vs-random assessment.
    pub tvla_max_t: f64,
    /// Whether the t-test crosses the TVLA threshold anywhere.
    pub tvla_leaks: bool,
    /// Traces in the (fixed, random) populations.
    pub tvla_counts: (u64, u64),
    /// Cycles in the analyzed round-1 window.
    pub window_cycles: u64,
}

/// One masked-target attack under an ablated microarchitecture.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Feature description.
    pub name: String,
    /// The HD-store attack outcome against the *masked* target.
    pub hd: AttackOutcome,
}

/// Node-level audit summary for a masked target.
#[derive(Clone, Debug)]
pub struct AuditSummary {
    /// Findings on operand-path nodes (operand buses, IS/EX buffers)
    /// for the share-recombination model.
    pub operand_path: usize,
    /// Findings on the memory data path (MDR, align buffer).
    pub memory_path: usize,
    /// Findings for the value-level `HW(SubBytes out)` model — zero for
    /// a sound first-order masking.
    pub hw_findings: usize,
    /// All findings.
    pub total: usize,
}

/// The countermeasure suite's outputs.
#[derive(Clone, Debug)]
pub struct MaskedResult {
    /// Unprotected, masked, and masked+scheduled targets, in order.
    pub targets: Vec<TargetResult>,
    /// Audit of the masked (unscheduled) target.
    pub audit_masked: AuditSummary,
    /// Audit of the masked+scheduled target.
    pub audit_scheduled: AuditSummary,
    /// What the scheduler inserted.
    pub harden: HardenReport,
    /// The masked target re-attacked under microarchitectural ablations.
    pub ablations: Vec<AblationRow>,
}

impl MaskedResult {
    /// The result by target name.
    pub fn target(&self, name: &str) -> &TargetResult {
        self.targets
            .iter()
            .find(|t| t.name == name)
            .expect("known target name")
    }

    /// The headline verdict lines (printed by the binary, pinned by the
    /// verdict-regression tests).
    pub fn verdict_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for target in &self.targets {
            lines.push(format!("[{}] {}", target.name, target.hw.verdict()));
            lines.push(format!("[{}] {}", target.name, target.hd.verdict()));
            lines.push(format!(
                "[{}] TVLA fixed-vs-random: {}",
                target.name,
                if target.tvla_leaks { "LEAKS" } else { "clean" },
            ));
        }
        lines.push(format!(
            "[masked] audit: {} operand-path leak(s), {} HW-model leak(s)",
            self.audit_masked.operand_path, self.audit_masked.hw_findings,
        ));
        lines.push(format!(
            "[masked+sched] audit: {} operand-path leak(s), {} HW-model leak(s)",
            self.audit_scheduled.operand_path, self.audit_scheduled.hw_findings,
        ));
        lines
    }
}

/// One attackable target: a warmed CPU template plus its program.
struct Target {
    name: &'static str,
    cpu: Cpu,
    entry: u32,
    input_len: usize,
    stage: fn(&mut Cpu, &[u8]),
    program: Program,
}

fn probe_retirements(target: &Target) -> Result<RetireLog, Box<dyn std::error::Error>> {
    let mut probe = target.cpu.clone();
    probe.restart(target.entry);
    let mut log = RetireLog::default();
    probe.run(&mut log)?;
    log.start.ok_or("no trigger in AES run")?;
    Ok(log)
}

/// Trigger-relative cycles of the `n`-th retirement at `symbol` (the
/// program is constant-time, so one probe run stands for all).
fn nth_visit(
    target: &Target,
    log: &RetireLog,
    symbol: &str,
    n: usize,
) -> Result<u64, Box<dyn std::error::Error>> {
    let addr = target
        .program
        .symbol(symbol)
        .ok_or_else(|| format!("no '{symbol}' symbol in {}", target.name))?;
    let t0 = log.start.expect("probed");
    log.retirements
        .iter()
        .filter(|&&(cycle, a)| a == addr && cycle >= t0)
        .nth(n)
        .map(|&(cycle, _)| cycle - t0)
        .ok_or_else(|| format!("fewer than {} visits to '{symbol}'", n + 1).into())
}

/// The round-1 SubBytes analysis window: `trigger_relative` is the
/// `(start_cycle, len_cycles)` the campaigns crop to, `absolute` the
/// `[start, end)` cycle window the audit records in. Both run from the
/// first visit of `subbytes` to the first visit of `shiftrows`, widened
/// so the in-flight stores' buffer updates stay inside — the span both
/// attack models peak in, exactly like Figure 4's 0.7 µs crop.
struct SubBytesWindow {
    trigger_relative: (u64, u64),
    absolute: (u64, u64),
    /// Trigger to the start of round 2 — the whole first round, where
    /// the value-level HW model hunts (its strongest leaks sit in the
    /// MixColumns manipulations, as in Figure 3).
    round1: (u64, u64),
}

fn subbytes_window(target: &Target) -> Result<SubBytesWindow, Box<dyn std::error::Error>> {
    let log = probe_retirements(target)?;
    let t0 = log.start.expect("probed");
    let start = nth_visit(target, &log, "subbytes", 0)?.saturating_sub(4);
    let end = nth_visit(target, &log, "shiftrows", 0)? + 12;
    let round1_end = nth_visit(target, &log, "round", 1)? + 16;
    Ok(SubBytesWindow {
        trigger_relative: (start, end - start),
        absolute: (t0 + start, t0 + end),
        round1: (0, round1_end),
    })
}

fn stage_unprotected(cpu: &mut Cpu, input: &[u8]) {
    AesSim::stage_plaintext(cpu, input);
}

fn stage_masked(cpu: &mut Cpu, input: &[u8]) {
    MaskedAesSim::stage_input(cpu, input);
}

/// Hardens the masked AES program with the countermeasure suite's
/// share-distance policy, returning the scheduled program and the
/// scheduler's report. Exposed so the `lint` binary and the
/// static-vs-dynamic differential validation analyze the *same*
/// program text the dynamic verdicts here run against.
///
/// The scrub scope covers the whole masked span that moves SubBytes
/// outputs: [subbytes, mixcolumns) — SubBytes past its internal
/// sb_loop label *and* ShiftRows, whose byte shuffle drags same-mask
/// bytes through the align buffer back to back. The scoped secret
/// registers extend it to the ALU `mov` pair shuttling the table
/// outputs into the next iteration's stores (`r1/r9` fed from
/// `r5/r11`): its back-to-back same-pipe reads recombine the shared
/// output mask on the IS/EX operand path — the residual the TVLA
/// assessment used to flag.
///
/// # Errors
///
/// Propagates assembler and scheduler faults.
pub fn masked_sched_program() -> Result<(Program, HardenReport), Box<dyn std::error::Error>> {
    let masked_program = aes128_masked_program()?;
    let policy = SharePolicy::new()
        .with_span(&masked_program, "subbytes", "mixcolumns")?
        .with_scoped_secret_regs(
            &masked_program,
            "subbytes",
            "shiftrows",
            [Reg::R1, Reg::R5, Reg::R9, Reg::R11],
        )?;
    let hardened = harden_program(&masked_program, &policy, &HardenConfig::default())?;
    Ok((hardened.program, hardened.report))
}

/// Builds the three targets (and reports what the scheduler did).
fn build_targets(
    config: &MaskedConfig,
    uarch: &UarchConfig,
) -> Result<(Vec<Target>, HardenReport), Box<dyn std::error::Error>> {
    let unprotected = AesSim::new(uarch.clone(), &config.key)?;
    let masked = MaskedAesSim::new(uarch.clone(), &config.key)?;
    let masked_program = aes128_masked_program()?;
    let (sched_program, harden_report) = masked_sched_program()?;
    let scheduled = MaskedAesSim::from_program(uarch.clone(), &config.key, &sched_program)?;
    let targets = vec![
        Target {
            name: "unprotected",
            cpu: unprotected.cpu().clone(),
            entry: unprotected.entry(),
            input_len: 16,
            stage: stage_unprotected,
            program: aes128_program()?,
        },
        Target {
            name: "masked",
            cpu: masked.cpu().clone(),
            entry: masked.entry(),
            input_len: MASKED_INPUT_LEN,
            stage: stage_masked,
            program: masked_program,
        },
        Target {
            name: "masked+sched",
            cpu: scheduled.cpu().clone(),
            entry: scheduled.entry(),
            input_len: MASKED_INPUT_LEN,
            stage: stage_masked,
            program: sched_program,
        },
    ];
    Ok((targets, harden_report))
}

fn campaign(config: &MaskedConfig, seed_salt: u64, window_cycles: (u64, u64)) -> Campaign {
    let sampling = SamplingConfig::picoscope_500msps_120mhz();
    let start = (window_cycles.0 as f64 * sampling.samples_per_cycle) as usize;
    let len = (window_cycles.1 as f64 * sampling.samples_per_cycle) as usize;
    Campaign::new(
        LeakageWeights::cortex_a7(),
        CampaignConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling,
            noise: config.noise,
            seed: config.seed ^ seed_salt,
            threads: config.threads,
            batch: config.batch,
        },
    )
    .with_window(start, len)
}

fn random_input(rng: &mut rand::rngs::StdRng, input_len: usize) -> Vec<u8> {
    let mut input = vec![0u8; input_len];
    rng.fill(&mut input[..]);
    input
}

fn cpa_outcome<S>(
    config: &MaskedConfig,
    target: &Target,
    window: (u64, u64),
    seed_salt: u64,
    model: S,
    correct: u8,
) -> Result<AttackOutcome, Box<dyn std::error::Error>>
where
    S: sca_analysis::SelectionFunction + Send + Sync,
{
    let input_len = target.input_len;
    let name = model.name();
    let sink = campaign(config, seed_salt, window).run(
        &target.cpu,
        target.entry,
        |rng, _| random_input(rng, input_len),
        target.stage,
        |samples| CpaSink::new(&model, 256, samples),
    )?;
    let result = sink.finish();
    Ok(AttackOutcome {
        model: name,
        recovered: result.best_guess() as u8,
        correct,
        rank: result.rank_of(usize::from(correct)),
        peak: result.peak(usize::from(correct)).1.abs(),
        best_wrong: result.best_wrong_peak(usize::from(correct)),
    })
}

/// `(max |t|, leaks, (fixed, random) trace counts)`.
type TvlaOutcome = (f64, bool, (u64, u64));

fn tvla_outcome(
    config: &MaskedConfig,
    target: &Target,
    window: (u64, u64),
) -> Result<TvlaOutcome, Box<dyn std::error::Error>> {
    let input_len = target.input_len;
    let sink = campaign(config, 0x77e5, window).run(
        &target.cpu,
        target.entry,
        |rng, index| {
            let mut input = random_input(rng, input_len);
            // Even trace indices form the fixed population; masks (any
            // bytes past 16) stay random in both.
            if index != usize::MAX && index % 2 == 0 {
                input[..16].copy_from_slice(&TVLA_FIXED_PT);
            }
            input
        },
        target.stage,
        |samples| TtestSink::new(|input: &[u8]| input[..16] == TVLA_FIXED_PT, samples),
    )?;
    Ok((sink.max_t(), sink.leaks(), sink.counts()))
}

fn assess_target(
    config: &MaskedConfig,
    target: &Target,
    windows: &SubBytesWindow,
) -> Result<TargetResult, Box<dyn std::error::Error>> {
    let window = windows.trigger_relative;
    let hw = cpa_outcome(
        config,
        target,
        windows.round1,
        0x0,
        SubBytesHw {
            byte: config.target_byte,
        },
        config.key[config.target_byte],
    )?;
    let hd = cpa_outcome(
        config,
        target,
        window,
        0x0,
        SubBytesStoreHd {
            byte: config.target_byte,
            prev_key: config.key[config.target_byte - 1],
        },
        config.key[config.target_byte],
    )?;
    let (tvla_max_t, tvla_leaks, tvla_counts) = tvla_outcome(config, target, window)?;
    Ok(TargetResult {
        name: target.name.to_owned(),
        hw,
        hd,
        tvla_max_t,
        tvla_leaks,
        tvla_counts,
        window_cycles: window.1,
    })
}

/// The audit's share-recombination model: the HD between the two
/// SubBytes outputs of the attacked store pair — predictable from the
/// (public) plaintext and the key the auditor knows, never computed
/// architecturally by the masked program.
fn audit_models(config: &MaskedConfig) -> [SecretModel; 2] {
    let byte = config.target_byte;
    let key = config.key;
    [
        SecretModel::new(
            format!("HD(SubBytes out {} , {})", byte - 1, byte),
            move |input: &[u8]| {
                let prev = SBOX[usize::from(input[byte - 1] ^ key[byte - 1])];
                let cur = SBOX[usize::from(input[byte] ^ key[byte])];
                f64::from((prev ^ cur).count_ones())
            },
        ),
        SecretModel::new(format!("HW(SubBytes out {byte})"), move |input: &[u8]| {
            f64::from(SBOX[usize::from(input[byte] ^ key[byte])].count_ones())
        }),
    ]
}

fn audit_target(
    config: &MaskedConfig,
    target: &Target,
    uarch: &UarchConfig,
    windows: &SubBytesWindow,
) -> Result<AuditSummary, Box<dyn std::error::Error>> {
    let window = windows.absolute;
    let models = audit_models(config);
    // The audit builds its own bare CPU, so the stage closure must set
    // up the whole memory contract: S-box and round keys, then the
    // per-execution input (state + masks).
    let rk = expand_key(&config.key);
    let stage = move |cpu: &mut Cpu, input: &[u8]| {
        cpu.mem_mut()
            .write_bytes(SBOX_ADDR, &SBOX)
            .expect("S-box is mapped");
        cpu.mem_mut()
            .write_bytes(RK_ADDR, &rk)
            .expect("round keys are mapped");
        stage_masked(cpu, input);
    };
    let report = audit_program(
        uarch,
        &target.program,
        target.input_len,
        stage,
        &models,
        &AuditConfig {
            executions: config.audit_executions,
            window: Some(window),
            seed: config.seed ^ 0xa0d17,
            ..AuditConfig::default()
        },
    )?;
    let hd_model = models[0].name.clone();
    let hw_model = models[1].name.clone();
    let operand_path = report
        .findings
        .iter()
        .filter(|f| {
            f.model == hd_model && matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. })
        })
        .count();
    let memory_path = report
        .findings
        .iter()
        .filter(|f| f.model == hd_model && matches!(f.node, Node::Mdr | Node::AlignBuf))
        .count();
    Ok(AuditSummary {
        operand_path,
        memory_path,
        hw_findings: report.findings_for(&hw_model).len(),
        total: report.findings.len(),
    })
}

/// Runs the full countermeasure suite.
///
/// # Errors
///
/// Propagates simulator, scheduler and campaign faults.
pub fn run_masked(config: &MaskedConfig) -> Result<MaskedResult, Box<dyn std::error::Error>> {
    let uarch = UarchConfig::cortex_a7();
    let (targets, harden) = build_targets(config, &uarch)?;

    // One pipeline probe per target resolves every analysis window.
    let windows = targets
        .iter()
        .map(subbytes_window)
        .collect::<Result<Vec<_>, _>>()?;

    let mut results = Vec::new();
    for (target, window) in targets.iter().zip(&windows) {
        results.push(assess_target(config, target, window)?);
    }

    let audit_masked = audit_target(config, &targets[1], &uarch, &windows[1])?;
    let audit_scheduled = audit_target(config, &targets[2], &uarch, &windows[2])?;

    // Re-attack the *masked* target under the uarch ablations the paper
    // singles out: scalar issue and the align buffer.
    let mut ablations = Vec::new();
    let ablation_matrix: Vec<(&str, UarchConfig)> = if config.ablations {
        vec![
            ("dual-issue off (scalar)", UarchConfig::scalar()),
            ("align buffer off", {
                let mut c = uarch.clone();
                c.align_buffer = false;
                c
            }),
        ]
    } else {
        Vec::new()
    };
    for (name, ablated) in &ablation_matrix {
        let masked = MaskedAesSim::new(ablated.clone(), &config.key)?;
        let target = Target {
            name: "masked",
            cpu: masked.cpu().clone(),
            entry: masked.entry(),
            input_len: MASKED_INPUT_LEN,
            stage: stage_masked,
            program: aes128_masked_program()?,
        };
        let window = subbytes_window(&target)?.trigger_relative;
        let hd = cpa_outcome(
            config,
            &target,
            window,
            0x0,
            SubBytesStoreHd {
                byte: config.target_byte,
                prev_key: config.key[config.target_byte - 1],
            },
            config.key[config.target_byte],
        )?;
        ablations.push(AblationRow {
            name: (*name).to_owned(),
            hd,
        });
    }

    Ok(MaskedResult {
        targets: results,
        audit_masked,
        audit_scheduled,
        harden,
        ablations,
    })
}
