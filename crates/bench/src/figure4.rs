//! Figure 4: CPA against AES running as a userspace process on a loaded
//! Linux system.
//!
//! Apache serves 1000 requests/s on the second core, the GUI runs, the
//! victim has no affinity or priority. The attack switches to the
//! microarchitecture-*aware* model — the Hamming distance between two
//! consecutively stored SubBytes output bytes (the MDR/align-buffer leak
//! characterized in Table 2) — and succeeds on the order of a hundred
//! averaged traces despite a ~5x lower correlation amplitude.

use rand::Rng;

use sca_aes::{AesSim, SubBytesStoreHd};
use sca_analysis::SelectionFunction;
use sca_campaign::{Campaign, CampaignConfig, CorrSink, CpaSink};
use sca_osnoise::LinuxEnvironment;
use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig};
use sca_uarch::UarchConfig;

/// Figure 4 campaign parameters.
#[derive(Clone, Debug)]
pub struct Figure4Config {
    /// Number of averaged traces (the paper succeeds with 100).
    pub traces: usize,
    /// Executions averaged per trace (paper: 16).
    pub executions_per_trace: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between accumulator updates.
    pub batch: usize,
    /// The AES key under attack.
    pub key: [u8; 16],
    /// Target byte (its predecessor's key byte is assumed recovered).
    pub target_byte: usize,
    /// Measurement noise (bare-metal probe chain by default; the OS
    /// environment adds its own on top).
    pub noise: GaussianNoise,
}

impl Default for Figure4Config {
    fn default() -> Figure4Config {
        Figure4Config {
            traces: 2500,
            executions_per_trace: 16,
            seed: 0xf1947,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            key: *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c",
            target_byte: 1,
            noise: GaussianNoise::bare_metal(),
        }
    }
}

/// Figure 4 outputs.
#[derive(Clone, Debug)]
pub struct Figure4Result {
    /// Correlation of the correct key guess, per sample.
    pub series_correct: Vec<f64>,
    /// Per-sample maximum |correlation| over all wrong guesses.
    pub series_best_wrong: Vec<f64>,
    /// Recovered key byte.
    pub recovered: u8,
    /// True key byte.
    pub correct: u8,
    /// Confidence that the correct guess beats the best wrong one (the
    /// paper reports > 99%).
    pub success_confidence: f64,
    /// Peak |correlation| of the same model measured on bare metal (no
    /// OS, no co-resident load) — the reference the paper's ~5x
    /// amplitude reduction is relative to.
    pub bare_metal_peak: f64,
    /// Traces used.
    pub traces: usize,
}

impl Figure4Result {
    /// Whether the attack recovered the key byte.
    pub fn success(&self) -> bool {
        self.recovered == self.correct
    }

    /// Peak |correlation| of the correct key.
    pub fn peak(&self) -> f64 {
        self.series_correct
            .iter()
            .map(|c| c.abs())
            .fold(0.0, f64::max)
    }

    /// How much the OS environment reduced the correlation amplitude
    /// (the paper reports roughly 5x between Figures 3 and 4).
    pub fn amplitude_reduction(&self) -> f64 {
        if self.peak() <= 0.0 {
            f64::INFINITY
        } else {
            self.bare_metal_peak / self.peak()
        }
    }
}

/// Runs the Figure 4 experiment through the streaming campaign engine:
/// the loaded-Linux acquisition and the bare-metal reference are both
/// sharded campaigns whose traces fold straight into online accumulators
/// — no trace matrix is ever materialized.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_figure4(config: &Figure4Config) -> Result<Figure4Result, Box<dyn std::error::Error>> {
    let sim = AesSim::new(UarchConfig::cortex_a7(), &config.key)?;
    let sampling = SamplingConfig::picoscope_500msps_120mhz();
    let environment = LinuxEnvironment::loaded_apache(&sampling)?;

    // Focus the analysis on the round-1 SubBytes region, as the paper's
    // 0.7 µs Figure 4 span does; a narrow window both localizes the
    // targeted stores and keeps the wrong-guess extreme-value floor low.
    let (window_start, window_len) = {
        let regions = crate::figure3::round1_regions(&sim)?;
        let sb = regions
            .iter()
            .find(|(name, _, _)| name == "SB")
            .map_or((40, 340), |&(_, s, e)| (s, e));
        let spc = 500.0 / 120.0;
        let start = (sb.0 as f64 * spc) as usize;
        let len = ((sb.1 - sb.0 + 24) as f64 * spc) as usize;
        (start.saturating_sub(8), len + 16)
    };

    let generate = |rng: &mut rand::rngs::StdRng, _| {
        let mut pt = vec![0u8; 16];
        rng.fill(&mut pt[..]);
        pt
    };
    let model = SubBytesStoreHd {
        byte: config.target_byte,
        prev_key: config.key[config.target_byte - 1],
    };

    // Bare-metal reference: same model, same window, quiet environment —
    // quantifies the amplitude the OS noise costs.
    let bare_metal_peak = {
        let quiet = Campaign::new(
            LeakageWeights::cortex_a7(),
            CampaignConfig {
                traces: 300,
                executions_per_trace: config.executions_per_trace,
                sampling: SamplingConfig::picoscope_500msps_120mhz(),
                noise: config.noise,
                seed: config.seed ^ 0xbabe,
                threads: config.threads,
                batch: config.batch,
            },
        )
        .with_window(window_start, window_len);
        let reference = quiet.run(
            sim.cpu(),
            sim.entry(),
            generate,
            AesSim::stage_plaintext,
            |samples| {
                CorrSink::new(
                    move |input: &[u8]| model.predict(input, config.key[config.target_byte]),
                    samples,
                )
            },
        )?;
        reference.peak()
    };

    let campaign = Campaign::new(
        LeakageWeights::cortex_a7(),
        CampaignConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling,
            noise: config.noise,
            seed: config.seed,
            threads: config.threads,
            batch: config.batch,
        },
    )
    .with_window(window_start, window_len);
    let sink = campaign.run_with(
        sim.cpu(),
        sim.entry(),
        generate,
        AesSim::stage_plaintext,
        |rng, samples| environment.apply(rng, samples),
        |samples| CpaSink::new(model, 256, samples),
    )?;
    let traces_used = sink.len() as usize;
    let result = sink.finish();

    let correct = config.key[config.target_byte];
    let series_correct = result.series(usize::from(correct)).to_vec();
    let mut series_best_wrong = vec![0.0f64; series_correct.len()];
    for guess in 0..256usize {
        if guess == usize::from(correct) {
            continue;
        }
        for (b, &r) in series_best_wrong.iter_mut().zip(result.series(guess)) {
            if r.abs() > *b {
                *b = r.abs();
            }
        }
    }

    Ok(Figure4Result {
        series_correct,
        series_best_wrong,
        recovered: result.best_guess() as u8,
        correct,
        success_confidence: result.success_confidence(usize::from(correct)),
        bare_metal_peak,
        traces: traces_used,
    })
}
