//! The cipher-portfolio experiment: the paper's methodology — Table-2
//! style per-component characterization, value-level HW and
//! microarchitecture-aware HD CPA, fixed-vs-random TVLA, node-level
//! audit — run against every registered [`sca_target::CipherTarget`].
//!
//! The point is the generalization claim: the leakage characterization
//! and the microarchitecture-aware attack models are properties of the
//! *pipeline*, not of AES. The portfolio therefore spans cipher
//! families the baseline never exercises — SPECK64/128's ARX rounds
//! drive the barrel shifter and the adder's carry chain, PRESENT-80's
//! nibble S-box layer drives sub-word align-buffer remanence — and
//! every driver below is generic over the trait: no cipher is named
//! outside the registry.

use std::path::{Path, PathBuf};
use std::time::Instant;

use sca_campaign::KillPoint;
use sca_core::{audit_cipher_target, leak_paths, AuditConfig};
use sca_power::GaussianNoise;
use sca_target::{
    characterize_target, portfolio, reanalyze_cpa, reanalyze_tvla, resolve_window, store_dir_name,
    CipherTarget, CpaVerdict, ModelKind, TargetCampaign, TargetCampaignConfig,
    TargetCharacterization, TargetStoreConfig, TvlaVerdict,
};
use sca_uarch::UarchConfig;

/// Portfolio campaign parameters.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// Averaged traces per CPA / TVLA campaign.
    pub traces: usize,
    /// Executions averaged per trace.
    pub executions_per_trace: usize,
    /// Master seed (salted per target).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between accumulator updates.
    pub batch: usize,
    /// Lockstep lanes per simulation group (`--lanes`; 1 = scalar).
    pub lanes: usize,
    /// Measurement noise.
    pub noise: GaussianNoise,
    /// Traces for the per-component characterization.
    pub charz_traces: usize,
    /// Executions for the node-level audit.
    pub audit_executions: usize,
    /// When set, every CPA/TVLA campaign runs against a persistent
    /// trace store under this configuration (characterizations and
    /// audits stay unstored — they are cheap and deterministic).
    pub store: Option<PortfolioStoreConfig>,
}

/// Persistent-store knobs of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioStoreConfig {
    /// Directory holding one store per (target, analysis) pair.
    pub root: PathBuf,
    /// Traces per checkpoint segment.
    pub checkpoint_every: u64,
    /// Resume each stored campaign from its last valid checkpoint.
    pub resume: bool,
    /// Abort the run (a [`sca_campaign::CampaignError::Killed`] fault)
    /// after this many traces have been persisted, counted across the
    /// whole run's stored campaigns in execution order — the crash-
    /// recovery CI job kills a run roughly halfway with this.
    pub kill_after: Option<u64>,
}

impl PortfolioStoreConfig {
    /// Store configuration rooted at `root`: checkpoint every 1024
    /// traces, no resume, no fault injection.
    pub fn new(root: impl Into<PathBuf>) -> PortfolioStoreConfig {
        PortfolioStoreConfig {
            root: root.into(),
            checkpoint_every: 1024,
            resume: false,
            kill_after: None,
        }
    }

    /// The kill point for the next stored campaign, given how many
    /// traces previous campaigns planned, and advances the counter.
    /// Campaign-local trace `t` is global trace `planned + t`, so a
    /// `--kill-after G` inside this campaign's range becomes
    /// [`KillPoint::AfterTrace`]`(G - planned)`.
    fn next_kill(&self, planned: &mut u64, traces: u64) -> KillPoint {
        let start = *planned;
        *planned += traces;
        match self.kill_after {
            Some(global) if (start..*planned).contains(&global) => {
                KillPoint::AfterTrace(global - start)
            }
            _ => KillPoint::None,
        }
    }
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            traces: 300,
            executions_per_trace: 8,
            seed: 0xdac_2018,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            lanes: sca_campaign::DEFAULT_LANES,
            noise: GaussianNoise::bare_metal(),
            charz_traces: 200,
            audit_executions: 250,
            store: None,
        }
    }
}

/// Everything measured against one target.
#[derive(Clone, Debug)]
pub struct TargetReport {
    /// Registry name.
    pub name: String,
    /// One CPA verdict per declared model, in declaration order.
    pub cpa: Vec<CpaVerdict>,
    /// The fixed-vs-random assessment.
    pub tvla: TvlaVerdict,
    /// Table-2-style RED/black row per model.
    pub charz: Vec<TargetCharacterization>,
    /// Node-audit findings on the operand path (operand bus / IS-EX).
    pub audit_operand: usize,
    /// Node-audit findings on the memory data path (MDR / align).
    pub audit_memory: usize,
    /// Cycles in the primary analysis window.
    pub window_cycles: u64,
}

impl TargetReport {
    /// The verdict for a model kind (first match).
    pub fn cpa_for(&self, kind: ModelKind) -> &CpaVerdict {
        self.cpa
            .iter()
            .find(|v| v.kind == kind)
            .expect("every target declares both model kinds")
    }
}

/// One phase's wall-clock timing, for `--bench-json`.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// `portfolio/<target>/<phase>` key.
    pub name: String,
    /// Seconds elapsed.
    pub seconds: f64,
}

/// The portfolio run's outputs.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// Per-target reports, in registry order.
    pub targets: Vec<TargetReport>,
    /// Wall-clock timings per campaign phase (machine-dependent; never
    /// printed to stdout).
    pub timings: Vec<PhaseTiming>,
}

impl PortfolioResult {
    /// The report by target name.
    pub fn target(&self, name: &str) -> &TargetReport {
        self.targets
            .iter()
            .find(|t| t.name == name)
            .expect("known target name")
    }

    /// The headline verdict lines (printed by the binary, pinned by the
    /// regression tests).
    pub fn verdict_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for target in &self.targets {
            for verdict in &target.cpa {
                lines.push(format!("[{}] {}", target.name, verdict.verdict()));
            }
            lines.push(format!(
                "[{}] TVLA fixed-vs-random: {}",
                target.name,
                if target.tvla.leaks { "LEAKS" } else { "clean" },
            ));
            for row in &target.charz {
                lines.push(format!("[{}] charz {}", target.name, row.verdict_line()));
            }
            lines.push(format!(
                "[{}] audit: {} operand-path leak(s), {} memory-path leak(s)",
                target.name, target.audit_operand, target.audit_memory,
            ));
        }
        lines
    }

    /// Renders the timings in the `customSmallerIsBetter` JSON shape
    /// CI benchmark trackers ingest.
    pub fn timings_json(&self) -> String {
        let entries: Vec<String> = self
            .timings
            .iter()
            .map(|t| {
                format!(
                    "  {{ \"name\": \"{}\", \"unit\": \"s\", \"value\": {:.6} }}",
                    t.name, t.seconds
                )
            })
            .collect();
        format!("[\n{}\n]\n", entries.join(",\n"))
    }
}

fn assess_target(
    target: &dyn CipherTarget,
    uarch: &UarchConfig,
    config: &PortfolioConfig,
    salt: u64,
    timings: &mut Vec<PhaseTiming>,
    planned: &mut u64,
) -> Result<TargetReport, Box<dyn std::error::Error>> {
    let time = |phase: &str, timings: &mut Vec<PhaseTiming>, start: Instant| {
        timings.push(PhaseTiming {
            name: format!("portfolio/{}/{}", target.name(), phase),
            seconds: start.elapsed().as_secs_f64(),
        });
    };

    let campaign_config = TargetCampaignConfig {
        traces: config.traces,
        executions_per_trace: config.executions_per_trace,
        seed: config.seed ^ (salt << 24),
        threads: config.threads,
        batch: config.batch,
        lanes: config.lanes,
        noise: config.noise,
    };
    let campaign = TargetCampaign::new(target, uarch, campaign_config.clone())?;
    let window = resolve_window(target, campaign.cpu(), &target.primary_window())?;

    // One campaign ⇒ one TargetStoreConfig: the kill counter advances
    // per campaign, so each gets its own kill point (usually None).
    let store_for = |store: &PortfolioStoreConfig, planned: &mut u64| TargetStoreConfig {
        root: store.root.clone(),
        checkpoint_every: store.checkpoint_every,
        resume: store.resume,
        kill: store.next_kill(planned, config.traces as u64),
    };

    let models = target.models();
    let mut cpa = Vec::new();
    for model in &models {
        let start = Instant::now();
        let phase = format!("cpa-{}", model.kind.to_string().to_lowercase());
        {
            let _span = sca_telemetry::span!("{phase}");
            cpa.push(match &config.store {
                Some(store) => campaign.cpa_stored(model, &store_for(store, planned))?.0,
                None => campaign.cpa(model)?,
            });
        }
        time(&phase, timings, start);
    }

    let start = Instant::now();
    let tvla = {
        let _span = sca_telemetry::span!("tvla");
        match &config.store {
            Some(store) => campaign.tvla_stored(&store_for(store, planned))?.0,
            None => campaign.tvla()?,
        }
    };
    time("tvla", timings, start);

    let start = Instant::now();
    let charz = {
        let _span = sca_telemetry::span!("charz");
        characterize_target(
            target,
            campaign.cpu(),
            &models,
            &TargetCampaignConfig {
                traces: config.charz_traces,
                ..campaign_config
            },
            0.995,
        )?
    };
    time("charz", timings, start);

    let start = Instant::now();
    let audit = {
        let _span = sca_telemetry::span!("audit");
        audit_cipher_target(
            target,
            uarch,
            &AuditConfig {
                executions: config.audit_executions,
                seed: config.seed ^ 0xa0d17 ^ salt,
                ..AuditConfig::default()
            },
        )?
    };
    time("audit", timings, start);
    let (audit_operand, audit_memory) = leak_paths(&audit);

    Ok(TargetReport {
        name: target.name().to_owned(),
        cpa,
        tvla,
        charz,
        audit_operand,
        audit_memory,
        window_cycles: window.trigger_relative.1,
    })
}

/// Runs the full portfolio.
///
/// # Errors
///
/// Propagates simulator and campaign faults.
pub fn run_portfolio(
    config: &PortfolioConfig,
) -> Result<PortfolioResult, Box<dyn std::error::Error>> {
    let started = Instant::now();
    // Root of the telemetry span tree; every target/phase/worker span
    // nests under it, so `span/portfolio` is the run's wall clock.
    let _root = sca_telemetry::span!("portfolio");
    let uarch = UarchConfig::cortex_a7();
    let mut targets = Vec::new();
    let mut timings = Vec::new();
    let mut planned = 0u64;
    for (i, target) in portfolio().iter().enumerate() {
        let _span = sca_telemetry::span!("{}", target.name());
        targets.push(assess_target(
            target.as_ref(),
            &uarch,
            config,
            i as u64 + 1,
            &mut timings,
            &mut planned,
        )?);
    }
    // The headline number CI's perf-regression gate tracks: one wall
    // clock over every target's campaigns, characterizations and
    // audits.
    timings.push(PhaseTiming {
        name: "portfolio/total".to_owned(),
        seconds: started.elapsed().as_secs_f64(),
    });
    Ok(PortfolioResult { targets, timings })
}

/// One target's verdicts from re-analyzing stored corpora — the subset
/// of a [`TargetReport`] a corpus can answer without simulating
/// (characterizations and audits need live multi-channel runs).
#[derive(Clone, Debug)]
pub struct ReanalyzeReport {
    /// Registry name.
    pub name: String,
    /// One CPA verdict per declared model, in declaration order.
    pub cpa: Vec<CpaVerdict>,
    /// The fixed-vs-random assessment.
    pub tvla: TvlaVerdict,
}

impl ReanalyzeReport {
    /// The verdict lines, in the same format as the corresponding
    /// subset of [`PortfolioResult::verdict_lines`] — a stored run and
    /// its re-analysis print identical CPA/TVLA lines.
    pub fn verdict_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for verdict in &self.cpa {
            lines.push(format!("[{}] {}", self.name, verdict.verdict()));
        }
        lines.push(format!(
            "[{}] TVLA fixed-vs-random: {}",
            self.name,
            if self.tvla.leaks { "LEAKS" } else { "clean" },
        ));
        lines
    }
}

/// Re-runs every registered target's CPA and TVLA analyses by streaming
/// the corpora under `root` — zero simulator invocations, no
/// characterization or audit phases.
///
/// # Errors
///
/// Propagates store I/O/corruption faults, including a missing corpus
/// for any registered target.
pub fn run_portfolio_reanalyze(
    root: &Path,
) -> Result<Vec<ReanalyzeReport>, Box<dyn std::error::Error>> {
    let mut reports = Vec::new();
    for target in &portfolio() {
        let target = target.as_ref();
        let mut cpa = Vec::new();
        for model in &target.models() {
            let dir = root.join(store_dir_name(target.name(), &model.name));
            cpa.push(reanalyze_cpa(&dir, model)?);
        }
        let tvla = reanalyze_tvla(&root.join(store_dir_name(target.name(), "tvla")), target)?;
        reports.push(ReanalyzeReport {
            name: target.name().to_owned(),
            cpa,
            tvla,
        });
    }
    Ok(reports)
}
