//! Figure 3: CPA against AES on bare metal.
//!
//! The attack uses a microarchitecture-*unaware* model — the Hamming
//! weight of a SubBytes output byte — and still localizes leakage across
//! the first round: the S-box table load/store inside SubBytes, the
//! byte-shift composition in ShiftRows, the xtime manipulation (plus
//! spill/fill) inside MixColumns. The driver reproduces the correlation-
//! versus-time series with the round-primitive regions annotated.

use std::collections::BTreeMap;

use rand::Rng;

use sca_aes::{aes128_program, AesSim, SubBytesHw};
use sca_campaign::{Campaign, CampaignConfig, CpaSink};
use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig};
use sca_uarch::UarchConfig;

use crate::probe::RetireLog;

/// Figure 3 campaign parameters.
#[derive(Clone, Debug)]
pub struct Figure3Config {
    /// Number of averaged traces (paper: 100k; a few thousand suffice in
    /// simulation).
    pub traces: usize,
    /// Executions averaged per trace (paper: 16).
    pub executions_per_trace: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between accumulator updates.
    pub batch: usize,
    /// The AES key under attack.
    pub key: [u8; 16],
    /// Which SubBytes output byte the model targets.
    pub target_byte: usize,
    /// Measurement noise (bare-metal probe chain by default).
    pub noise: GaussianNoise,
}

impl Default for Figure3Config {
    fn default() -> Figure3Config {
        Figure3Config {
            traces: 1500,
            executions_per_trace: 4,
            seed: 0xf1931,
            threads: 8,
            batch: sca_campaign::DEFAULT_BATCH,
            key: *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c",
            target_byte: 0,
            noise: GaussianNoise::bare_metal(),
        }
    }
}

/// A labeled region in cycles: `(primitive name, start cycle, end cycle)`.
pub type CycleRegion = (String, u64, u64);

/// A labeled region of the trace (one AES round primitive).
#[derive(Clone, Debug)]
pub struct PhaseRegion {
    /// Primitive name (ARK, SB, ShR, MC…).
    pub name: String,
    /// First sample of the region.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
}

/// Figure 3 outputs.
#[derive(Clone, Debug)]
pub struct Figure3Result {
    /// Correlation of the correct key guess, per sample.
    pub series_correct: Vec<f64>,
    /// Per-sample maximum |correlation| over all wrong guesses.
    pub series_best_wrong: Vec<f64>,
    /// Round-1 primitive regions (sample indices).
    pub regions: Vec<PhaseRegion>,
    /// Key byte recovered by the attack.
    pub recovered: u8,
    /// The true key byte.
    pub correct: u8,
    /// Oscilloscope samples per core cycle.
    pub samples_per_cycle: f64,
    /// Traces used.
    pub traces: usize,
}

impl Figure3Result {
    /// Whether the attack recovered the key byte.
    pub fn success(&self) -> bool {
        self.recovered == self.correct
    }

    /// Peak |correlation| of the correct key inside a named region.
    pub fn peak_in(&self, region_name: &str) -> f64 {
        self.regions
            .iter()
            .filter(|r| r.name == region_name)
            .flat_map(|r| {
                self.series_correct
                    [r.start.min(self.series_correct.len())..r.end.min(self.series_correct.len())]
                    .iter()
                    .map(|c| c.abs())
            })
            .fold(0.0, f64::max)
    }

    /// Global peak |correlation| of the correct key.
    pub fn peak(&self) -> f64 {
        self.series_correct
            .iter()
            .map(|c| c.abs())
            .fold(0.0, f64::max)
    }
}

/// Maps retirement addresses to AES primitive names using the program's
/// symbol table, and returns the round-1 regions in cycles relative to
/// the trigger: ARK, SB, ShR, MC and the closing ARK of round 1.
pub fn round1_regions(sim: &AesSim) -> Result<Vec<CycleRegion>, Box<dyn std::error::Error>> {
    let program = aes128_program()?;
    let mut symbols: Vec<(u32, String)> = program
        .symbols()
        .map(|(name, addr)| (addr, name.to_owned()))
        .collect();
    symbols.sort();
    let function_of = |addr: u32| -> String {
        let mut current = "start".to_owned();
        for (sym_addr, name) in &symbols {
            if *sym_addr <= addr {
                current = name.clone();
            } else {
                break;
            }
        }
        current
    };
    let label_of = |function: &str| -> Option<&'static str> {
        match function {
            "add_round_key" => Some("ARK"),
            "sub_bytes" => Some("SB"),
            "shift_rows" => Some("ShR"),
            "mix_columns" | "mc_col" | "xtime" => Some("MC"),
            _ => None,
        }
    };

    let mut probe = sim.clone();
    let mut log = RetireLog::default();
    probe.encrypt_observed(&[0u8; 16], &mut log)?;
    let t0 = log.start.ok_or("no trigger in AES run")?;

    // Collapse consecutive retirements with the same label into regions.
    let mut regions: Vec<CycleRegion> = Vec::new();
    for (cycle, addr) in log.retirements {
        if cycle < t0 {
            continue;
        }
        let Some(label) = label_of(&function_of(addr)) else {
            continue;
        };
        let rel = cycle - t0;
        match regions.last_mut() {
            Some((name, _, end)) if name == label && rel <= *end + 6 => *end = rel + 1,
            _ => regions.push((label.to_owned(), rel, rel + 1)),
        }
    }
    // Keep round 1 only: ARK0, SB1, ShR1, MC1 and the closing ARK1.
    let mut kept = Vec::new();
    let mut arks = 0;
    for region in regions {
        let is_ark = region.0 == "ARK";
        if is_ark {
            arks += 1;
        }
        kept.push(region);
        if is_ark && arks == 2 {
            break;
        }
    }
    Ok(kept)
}

/// Runs the Figure 3 experiment through the streaming campaign engine:
/// traces are synthesized in sharded batches and folded straight into an
/// online CPA accumulator, so memory stays `O(guesses × samples)` at any
/// trace count.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_figure3(config: &Figure3Config) -> Result<Figure3Result, Box<dyn std::error::Error>> {
    let sim = AesSim::new(UarchConfig::cortex_a7(), &config.key)?;
    let sampling = SamplingConfig::picoscope_500msps_120mhz();
    let samples_per_cycle = sampling.samples_per_cycle;

    let regions_cycles = round1_regions(&sim)?;
    let analysis_end_cycle = regions_cycles.last().map_or(1200, |(_, _, e)| *e + 16);
    let analysis_samples = (analysis_end_cycle as f64 * samples_per_cycle) as usize;

    let campaign = Campaign::new(
        LeakageWeights::cortex_a7(),
        CampaignConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling,
            noise: config.noise,
            seed: config.seed,
            threads: config.threads,
            batch: config.batch,
        },
    )
    .with_window(0, analysis_samples);

    let model = SubBytesHw {
        byte: config.target_byte,
    };
    let sink = campaign.run(
        sim.cpu(),
        sim.entry(),
        |rng, _| {
            let mut pt = vec![0u8; 16];
            rng.fill(&mut pt[..]);
            pt
        },
        AesSim::stage_plaintext,
        |samples| CpaSink::new(model, 256, samples),
    )?;
    let traces_used = sink.len() as usize;
    let result = sink.finish();

    let correct = config.key[config.target_byte];
    let series_correct = result.series(usize::from(correct)).to_vec();
    let samples = series_correct.len();
    let mut series_best_wrong = vec![0.0f64; samples];
    for guess in 0..256usize {
        if guess == usize::from(correct) {
            continue;
        }
        for (b, &r) in series_best_wrong.iter_mut().zip(result.series(guess)) {
            if r.abs() > *b {
                *b = r.abs();
            }
        }
    }

    // Regions in samples. Merge duplicates (MC quarters stay separate, as
    // in the paper's "1/4 MC" annotations).
    let mut name_counts: BTreeMap<String, usize> = BTreeMap::new();
    let regions = regions_cycles
        .into_iter()
        .map(|(name, start, end)| {
            let n = name_counts.entry(name.clone()).or_insert(0);
            *n += 1;
            PhaseRegion {
                name,
                start: (start as f64 * samples_per_cycle) as usize,
                end: (end as f64 * samples_per_cycle) as usize,
            }
        })
        .collect();

    Ok(Figure3Result {
        series_correct,
        series_best_wrong,
        regions,
        recovered: result.best_guess() as u8,
        correct,
        samples_per_cycle,
        traces: traces_used,
    })
}
