//! Shared pipeline probing for the experiment drivers.

use sca_uarch::PipelineObserver;

/// Observer extracting the first rising-trigger cycle and every
/// retirement `(cycle, addr)` — the probe `figure3`'s region labeling
/// and `masked`'s window resolution both run over one warm execution
/// (the targets are constant-time, so one probe stands for all).
#[derive(Default)]
pub(crate) struct RetireLog {
    /// Cycle of the first rising trigger edge.
    pub start: Option<u64>,
    /// Retirements in order.
    pub retirements: Vec<(u64, u32)>,
}

impl PipelineObserver for RetireLog {
    fn trigger(&mut self, cycle: u64, high: bool) {
        if high {
            self.start.get_or_insert(cycle);
        }
    }

    fn retire(&mut self, cycle: u64, addr: u32, _insn: sca_isa::Insn) {
        self.retirements.push((cycle, addr));
    }
}
