//! Terminal plotting for the figure reproductions.

/// Renders a series as a fixed-height ASCII plot with a y-axis in the
/// data's units and an x-axis in the given unit label.
pub fn ascii_plot(
    series: &[f64],
    height: usize,
    width: usize,
    x_label: &str,
    x_scale: f64,
) -> String {
    if series.is_empty() || height == 0 || width == 0 {
        return String::new();
    }
    let max = series.iter().copied().fold(f64::MIN, f64::max);
    let min = series.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-12);
    // Downsample to `width` columns, keeping each column's extreme value.
    let bucket = series.len().div_ceil(width);
    let columns: Vec<f64> = series
        .chunks(bucket)
        .map(|chunk| {
            chunk
                .iter()
                .copied()
                .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"))
                .unwrap_or(0.0)
        })
        .collect();
    let mut out = String::new();
    for row in 0..height {
        let level = max - span * row as f64 / (height - 1).max(1) as f64;
        let cell = span / (height - 1).max(1) as f64;
        out.push_str(&format!("{level:+8.3} |"));
        for &v in &columns {
            out.push(if (v - level).abs() <= cell / 2.0 {
                '*'
            } else if v > level && level > 0.0 && v > 0.0 {
                '.'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("         +{}\n", "-".repeat(columns.len())));
    out.push_str(&format!(
        "          0{}{:.2} {x_label}\n",
        " ".repeat(columns.len().saturating_sub(12)),
        series.len() as f64 * x_scale
    ));
    out
}

/// Renders series values as a two-column table (x, y), decimated to at
/// most `rows` rows — the machine-readable companion to the plot.
pub fn series_table(
    series: &[f64],
    rows: usize,
    x_scale: f64,
    x_label: &str,
    y_label: &str,
) -> String {
    let mut out = format!("{x_label:>12} {y_label:>12}\n");
    if series.is_empty() {
        return out;
    }
    let step = series.len().div_ceil(rows.max(1)).max(1);
    for (i, &v) in series.iter().enumerate().step_by(step) {
        out.push_str(&format!("{:>12.4} {v:>12.5}\n", i as f64 * x_scale));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_is_nonempty_and_peaks_marked() {
        let mut series = vec![0.0; 100];
        series[50] = 1.0;
        let plot = ascii_plot(&series, 8, 60, "us", 0.01);
        assert!(plot.contains('*'));
        assert!(plot.contains("us"));
    }

    #[test]
    fn empty_series_is_safe() {
        assert!(ascii_plot(&[], 5, 10, "x", 1.0).is_empty());
    }

    #[test]
    fn table_decimates() {
        let series: Vec<f64> = (0..1000).map(f64::from).collect();
        let table = series_table(&series, 10, 1.0, "t", "v");
        assert!(table.lines().count() <= 12);
    }
}
