//! Cipher-portfolio evaluation: Table-2-style characterization, HW and
//! HD CPA, TVLA and node audits for every registered cipher target —
//! AES-128 (unprotected and masked), SPECK64/128 and PRESENT-80.
//!
//! Usage: `cargo run --release -p sca-bench --bin portfolio
//! [--traces N] [--quick|--full] [--bench-json PATH] [--metrics-json PATH]
//! [--store DIR [--checkpoint-every N] [--resume] [--kill-after N]]
//! [--store DIR --reanalyze]`
//!
//! `--metrics-json` additionally writes the run's telemetry snapshot
//! (span phase times, work counters) as a `customSmallerIsBetter` JSON
//! array and prints the human-readable tree to stderr. Telemetry never
//! touches stdout: the verdict lines stay byte-identical with or
//! without it.
//!
//! With `--store`, every CPA/TVLA campaign persists its traces and
//! checkpoints its accumulator state; a run killed mid-campaign (or by
//! `--kill-after`, which exits 3) is picked up by `--resume` with
//! byte-identical stdout. `--reanalyze` skips simulation entirely and
//! streams the stored corpora back through the attack statistics.

use std::path::Path;

use sca_bench::{
    run_portfolio, run_portfolio_reanalyze, CommonArgs, PortfolioConfig, PortfolioStoreConfig,
};
use sca_target::{ModelKind, TargetError};

fn reanalyze(root: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("Cipher portfolio — re-analysis of the stored corpora under {root:?}\n");
    let reports = run_portfolio_reanalyze(root)?;
    println!("verdicts:");
    for report in &reports {
        for line in report.verdict_lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    if args.reanalyze {
        let root = args.store.as_deref().expect("parser requires --store");
        return reanalyze(Path::new(root));
    }
    let config = PortfolioConfig {
        traces: args.trace_count(700, 4_000),
        executions_per_trace: if args.quick() { 8 } else { 16 },
        charz_traces: if args.quick() { 400 } else { 2_000 },
        audit_executions: if args.quick() { 250 } else { 600 },
        seed: args.seed,
        threads: args.threads,
        batch: args.batch,
        lanes: args.lanes,
        store: args.store.as_ref().map(|root| PortfolioStoreConfig {
            root: root.into(),
            checkpoint_every: args.checkpoint_every,
            resume: args.resume,
            kill_after: args.kill_after,
        }),
        ..PortfolioConfig::default()
    };
    println!(
        "Cipher portfolio — the paper's methodology across cipher families, \
         {} traces per campaign\n",
        config.traces
    );
    let result = match run_portfolio(&config) {
        Ok(result) => result,
        // The --kill-after fault injection fired: everything up to the
        // last checkpoint is durable. Exit 3 so the crash-recovery CI
        // job can tell "killed as planned" from a real failure.
        Err(e) if matches!(e.downcast_ref::<TargetError>(), Some(e) if e.is_killed()) => {
            eprintln!("killed by --kill-after fault injection: {e}");
            std::process::exit(3);
        }
        Err(e) => return Err(e),
    };

    for target in &result.targets {
        println!(
            "== {} (primary window {} cycles) ==",
            target.name, target.window_cycles
        );
        for verdict in &target.cpa {
            println!(
                "  {:<44} peak correct |corr| {:.4}, best wrong {:.4}",
                verdict.verdict(),
                verdict.peak,
                verdict.best_wrong,
            );
        }
        println!(
            "  TVLA fixed-vs-random: max |t| {:.2} -> {} ({} fixed / {} random traces)",
            target.tvla.max_t,
            if target.tvla.leaks { "LEAKS" } else { "clean" },
            target.tvla.counts.0,
            target.tvla.counts.1,
        );
        println!(
            "  Table-2-style characterization ({} traces, 99.5% confidence):",
            config.charz_traces
        );
        for row in &target.charz {
            println!("    model {}", row.model);
            for cell in &row.cells {
                println!(
                    "      {:<14} corr {:+.4} -> {}",
                    cell.component.label(),
                    cell.peak_corr,
                    if cell.significant { "RED" } else { "black" },
                );
            }
        }
        println!(
            "  node audit: {} operand-path leak(s), {} memory-path leak(s)\n",
            target.audit_operand, target.audit_memory,
        );
    }

    println!("verdicts:");
    for line in result.verdict_lines() {
        println!("  {line}");
    }

    let speck = result.target("speck64128");
    let present = result.target("present80");
    println!();
    println!(
        "portfolio claim: the microarchitecture-aware HD models generalize beyond AES — \
         SPECK64/128 (ARX: shifter + adder carry chains) key byte recovered: {}; \
         PRESENT-80 (4-bit S-box: sub-word align remanence) key byte recovered: {}",
        speck.cpa_for(ModelKind::TransitionHd).success(),
        present.cpa_for(ModelKind::TransitionHd).success(),
    );

    if let Some(path) = &args.bench_json {
        std::fs::write(path, result.timings_json())?;
        eprintln!("wrote {} kernel timings to {path}", result.timings.len());
    }
    if let Some(path) = &args.metrics_json {
        let snap = sca_telemetry::global().snapshot();
        std::fs::write(path, sca_telemetry::render_metrics_json(&snap))?;
        // The human-readable tree goes to stderr: stdout carries only
        // the byte-deterministic verdicts.
        eprintln!("{}", sca_telemetry::render_summary(&snap));
        eprintln!(
            "wrote {} metrics to {path}",
            snap.counters.len() + snap.spans.len()
        );
    }
    Ok(())
}
