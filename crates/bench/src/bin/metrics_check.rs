//! CI validator for `portfolio --metrics-json` output.
//!
//! Two modes, both strict (any deviation exits 1; bad arguments exit 2):
//!
//! ```text
//! metrics_check check FILE
//! metrics_check diff-counters FILE_A FILE_B
//! ```
//!
//! `check` validates the `customSmallerIsBetter` schema (an array of
//! `{"name", "unit", "value"}` objects with string names, `"s"` or
//! `"count"` units and numeric values), asserts the campaign simulated
//! exactly what it planned (`campaign/traces_planned ==
//! campaign/traces_simulated`), and asserts the span tree accounts for
//! the wall clock: the direct children of `span/portfolio` must sum to
//! at least 90% of it.
//!
//! `diff-counters` compares the *work counters* of two metrics files —
//! the name prefixes the determinism contract declares thread- and
//! lane-invariant — and fails on the first differing value. Span times,
//! batch counts and pool statistics are observability, not work, and
//! are ignored.

/// One parsed `{"name", "unit", "value"}` entry.
#[derive(Clone, Debug, PartialEq)]
struct Entry {
    name: String,
    unit: String,
    value: f64,
    /// The value's raw text, for byte-exact counter comparison.
    raw: String,
}

/// Counter-name prefixes that are work, not observability: byte-equal
/// across `--threads` and `--lanes` settings by the determinism
/// contract (see ARCHITECTURE.md, "Telemetry").
const WORK_PREFIXES: &[&str] = &[
    "campaign/traces_",
    "power/",
    "uarch/",
    "store/slots_written",
    "store/checkpoint_bytes",
];

fn fail(message: &str) -> ! {
    eprintln!("metrics_check: FAIL: {message}");
    std::process::exit(1);
}

/// Extracts the JSON string field `key` from an object's text.
fn string_field(object: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\"");
    let rest = &object[object.find(&tag)? + tag.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts the raw text of the numeric field `key`.
fn number_field(object: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\"");
    let rest = &object[object.find(&tag)? + tag.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    (end > 0).then(|| rest[..end].to_owned())
}

/// Parses a `customSmallerIsBetter` array, validating the schema as it
/// goes. The format is the fixed one `render_metrics_json` (and
/// `timings_json`) emit: one object per `{ ... }` pair.
fn parse(path: &str) -> Vec<Entry> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read '{path}': {e}")),
    };
    let body = text.trim();
    let Some(body) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) else {
        fail(&format!("'{path}' is not a JSON array"));
    };
    let mut entries = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            fail(&format!("'{path}': unterminated object"));
        };
        let object = &rest[open + 1..open + close];
        rest = &rest[open + close + 1..];
        let Some(name) = string_field(object, "name") else {
            fail(&format!("'{path}': entry without a \"name\" string"));
        };
        let Some(unit) = string_field(object, "unit") else {
            fail(&format!(
                "'{path}': entry '{name}' without a \"unit\" string"
            ));
        };
        if unit != "s" && unit != "count" {
            fail(&format!(
                "'{path}': entry '{name}' has unknown unit '{unit}'"
            ));
        }
        let Some(raw) = number_field(object, "value") else {
            fail(&format!(
                "'{path}': entry '{name}' without a numeric \"value\""
            ));
        };
        let Ok(value) = raw.parse::<f64>() else {
            fail(&format!(
                "'{path}': entry '{name}' value '{raw}' is not a number"
            ));
        };
        entries.push(Entry {
            name,
            unit,
            value,
            raw,
        });
    }
    if entries.is_empty() {
        fail(&format!("'{path}' holds no entries"));
    }
    entries
}

fn lookup<'e>(entries: &'e [Entry], name: &str) -> Option<&'e Entry> {
    entries.iter().find(|e| e.name == name)
}

fn check(path: &str) {
    let entries = parse(path);

    // The campaign must have simulated exactly what it planned — a
    // shortfall means a worker died or a batch was dropped silently.
    let planned = lookup(&entries, "campaign/traces_planned")
        .unwrap_or_else(|| fail("no campaign/traces_planned entry"));
    let simulated = lookup(&entries, "campaign/traces_simulated")
        .unwrap_or_else(|| fail("no campaign/traces_simulated entry"));
    if planned.raw != simulated.raw {
        fail(&format!(
            "planned {} traces but simulated {}",
            planned.raw, simulated.raw
        ));
    }

    // The span tree must account for the run: the direct children of
    // the root span cover at least 90% of its wall clock.
    let root = lookup(&entries, "span/portfolio")
        .unwrap_or_else(|| fail("no span/portfolio entry (was telemetry disabled?)"));
    let children: f64 = entries
        .iter()
        .filter(|e| {
            e.name
                .strip_prefix("span/portfolio/")
                .is_some_and(|rest| !rest.contains('/'))
        })
        .map(|e| e.value)
        .sum();
    if children < 0.9 * root.value {
        fail(&format!(
            "span coverage: children sum to {children:.3}s of {:.3}s root (<90%)",
            root.value
        ));
    }

    println!(
        "metrics_check: OK: {} entries, {} traces, span coverage {:.1}%",
        entries.len(),
        simulated.raw,
        100.0 * children / root.value.max(f64::MIN_POSITIVE),
    );
}

fn diff_counters(path_a: &str, path_b: &str) {
    let a = parse(path_a);
    let b = parse(path_b);
    let work = |entries: &[Entry]| -> Vec<Entry> {
        entries
            .iter()
            .filter(|e| e.unit == "count" && WORK_PREFIXES.iter().any(|p| e.name.starts_with(p)))
            .cloned()
            .collect()
    };
    let (wa, wb) = (work(&a), work(&b));
    if wa.is_empty() {
        fail(&format!("'{path_a}' holds no work counters"));
    }
    for ea in &wa {
        let Some(eb) = lookup(&wb, &ea.name) else {
            fail(&format!("'{}' missing from '{path_b}'", ea.name));
        };
        if ea.raw != eb.raw {
            fail(&format!(
                "work counter '{}' differs: {} vs {}",
                ea.name, ea.raw, eb.raw
            ));
        }
    }
    if wa.len() != wb.len() {
        fail(&format!(
            "work counter sets differ: {} in '{path_a}', {} in '{path_b}'",
            wa.len(),
            wb.len()
        ));
    }
    println!(
        "metrics_check: OK: {} work counters byte-identical across '{path_a}' and '{path_b}'",
        wa.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, file] if mode == "check" => check(file),
        [mode, a, b] if mode == "diff-counters" => diff_counters(a, b),
        _ => {
            eprintln!(
                "usage: metrics_check check FILE | metrics_check diff-counters FILE_A FILE_B"
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_the_emitted_shape() {
        let object = " \"name\": \"campaign/traces_planned\", \"unit\": \"count\", \"value\": 700 ";
        assert_eq!(
            string_field(object, "name").as_deref(),
            Some("campaign/traces_planned")
        );
        assert_eq!(string_field(object, "unit").as_deref(), Some("count"));
        assert_eq!(number_field(object, "value").as_deref(), Some("700"));
        let float = " \"name\": \"span/portfolio\", \"unit\": \"s\", \"value\": 12.345678 ";
        assert_eq!(number_field(float, "value").as_deref(), Some("12.345678"));
        assert!(string_field(object, "missing").is_none());
        assert!(number_field(object, "missing").is_none());
    }

    #[test]
    fn work_prefixes_select_counters_only() {
        let entry = |name: &str, unit: &str| Entry {
            name: name.to_owned(),
            unit: unit.to_owned(),
            value: 1.0,
            raw: "1".to_owned(),
        };
        let is_work =
            |e: &Entry| e.unit == "count" && WORK_PREFIXES.iter().any(|p| e.name.starts_with(p));
        assert!(is_work(&entry("campaign/traces_simulated", "count")));
        assert!(is_work(&entry("uarch/l1d/accesses", "count")));
        assert!(is_work(&entry("store/slots_written", "count")));
        assert!(!is_work(&entry("campaign/batches", "count")));
        assert!(!is_work(&entry("store/page_hits", "count")));
        assert!(!is_work(&entry("span/portfolio", "s")));
    }
}
