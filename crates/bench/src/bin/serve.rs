//! The campaign-service socket front end.
//!
//! Binds a unix-domain socket and maps the wire protocol
//! ([`sca_server::parse_request`]) onto a [`sca_server::CampaignServer`]: each
//! connection scripts `submit`/`stats`/`shutdown` lines and gets the
//! corresponding event lines back. A `submit` streams that job's whole
//! event lifecycle (accepted, per-slice progress, final verdict, done)
//! before the next line on the same connection is read; the `submit`
//! binary is the matching client.
//!
//! `shutdown` drains every live job to its verdict, prints the final
//! stats line to stderr, removes the socket and exits 0 — CI treats any
//! other exit status as a failed smoke run.
//!
//! Flags are strict, exactly as the other regeneration binaries: an
//! unknown flag or out-of-range value (`--lanes 0`, `--lanes 9`, …)
//! exits with status 2 before the server starts.

use sca_bench::validate_lanes;

const USAGE: &str = "known flags: --socket PATH (required), --store DIR (required), \
     --workers N, --queue-limit N, --slice-traces N, --threads N, --lanes N, \
     --checkpoint-every N";

/// Strictly parsed `serve` arguments.
#[derive(Clone, Debug)]
struct ServeArgs {
    socket: String,
    store: String,
    workers: usize,
    queue_limit: usize,
    slice_traces: u64,
    threads: usize,
    lanes: usize,
    checkpoint_every: u64,
}

impl ServeArgs {
    fn parse() -> ServeArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match ServeArgs::parse_from(args) {
            Ok(args) => args,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    fn parse_from<I>(args: I) -> Result<ServeArgs, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut socket = None;
        let mut store = None;
        let mut out = ServeArgs {
            socket: String::new(),
            store: String::new(),
            workers: 2,
            queue_limit: 64,
            slice_traces: 64,
            threads: 4,
            lanes: sca_campaign::DEFAULT_LANES,
            checkpoint_every: 64,
        };
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                args.next()
                    .ok_or_else(|| format!("flag '{flag}' expects a value"))
            };
            match arg.as_str() {
                "--socket" => socket = Some(value(&arg)?),
                "--store" => store = Some(value(&arg)?),
                "--workers" => out.workers = parse_value(&arg, &value(&arg)?)?,
                "--queue-limit" => out.queue_limit = parse_value(&arg, &value(&arg)?)?,
                "--slice-traces" => out.slice_traces = parse_value(&arg, &value(&arg)?)?,
                "--threads" => out.threads = parse_value(&arg, &value(&arg)?)?,
                "--lanes" => out.lanes = parse_value(&arg, &value(&arg)?)?,
                "--checkpoint-every" => out.checkpoint_every = parse_value(&arg, &value(&arg)?)?,
                unknown => return Err(format!("unrecognized argument '{unknown}'")),
            }
        }
        out.socket = socket.ok_or("'--socket PATH' is required")?;
        out.store = store.ok_or("'--store DIR' is required")?;
        if out.workers == 0 {
            return Err("'--workers' must be at least 1".to_owned());
        }
        if out.queue_limit == 0 {
            return Err("'--queue-limit' must be at least 1".to_owned());
        }
        if out.slice_traces == 0 {
            return Err("'--slice-traces' must be at least 1".to_owned());
        }
        if out.threads == 0 {
            return Err("'--threads' must be at least 1".to_owned());
        }
        // The same bound, and the same message, as every other binary's
        // `--lanes` — enforced by the shared helper.
        validate_lanes(out.lanes).map_err(|e| e.to_string())?;
        if out.checkpoint_every == 0 {
            return Err("'--checkpoint-every' must be at least 1".to_owned());
        }
        Ok(out)
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("flag '{flag}' got unparsable value '{raw}'"))
}

#[cfg(unix)]
fn main() {
    use std::io::Write;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use sca_server::{
        format_event, format_stats, parse_request, CampaignServer, Event, Request, ServerConfig,
    };

    fn handle_connection(stream: UnixStream, server: &CampaignServer, stop: &AtomicBool) {
        use std::io::BufRead;
        let Ok(reader) = stream.try_clone() else {
            return;
        };
        let mut writer = stream;
        for line in std::io::BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let written = match parse_request(&line) {
                Ok(Request::Submit { spec, weight }) => match server.submit(&spec, weight) {
                    Ok((_, events, _)) => {
                        let mut ok = true;
                        for event in &events {
                            let done = matches!(event, Event::Done { .. });
                            ok = writeln!(writer, "{}", format_event(&event)).is_ok();
                            if !ok || done {
                                break;
                            }
                        }
                        ok
                    }
                    Err(e) => writeln!(writer, "rejected {e}").is_ok(),
                },
                Ok(Request::Stats) => writeln!(writer, "{}", format_stats(&server.stats())).is_ok(),
                Ok(Request::Metrics) => {
                    let snap = server.metrics_snapshot();
                    let mut ok = true;
                    for line in sca_telemetry::render_wire(&snap) {
                        ok = writeln!(writer, "{line}").is_ok();
                        if !ok {
                            break;
                        }
                    }
                    ok && writeln!(writer, "metrics-end").is_ok()
                }
                Ok(Request::Shutdown) => {
                    stop.store(true, Ordering::SeqCst);
                    let _ = writeln!(writer, "stopping");
                    return;
                }
                Err(e) => writeln!(writer, "rejected {e}").is_ok(),
            };
            if !written {
                // The client hung up; any accepted job keeps running to
                // its durable store entry regardless.
                break;
            }
        }
    }

    let args = ServeArgs::parse();
    let mut config = ServerConfig::new(&args.store);
    config.workers = args.workers;
    config.queue_limit = args.queue_limit;
    config.slice_traces = args.slice_traces;
    config.threads_per_slice = args.threads;
    config.lanes = args.lanes;
    config.checkpoint_every = args.checkpoint_every;
    let server = Arc::new(CampaignServer::start(config));

    // A stale socket file from a crashed serve would make bind fail;
    // the store (not the socket) is the durable state, so replace it.
    let _ = std::fs::remove_file(&args.socket);
    let listener = match UnixListener::bind(&args.socket) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot bind '{}': {e}", args.socket);
            std::process::exit(1);
        }
    };
    listener
        .set_nonblocking(true)
        .expect("nonblocking accept is available");
    eprintln!("serving on {} (store {})", args.socket, args.store);

    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    handle_connection(stream, &server, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("error: accept failed: {e}");
                break;
            }
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
    drop(listener);
    let _ = std::fs::remove_file(&args.socket);
    match Arc::try_unwrap(server) {
        Ok(server) => {
            let stats = server.shutdown();
            eprintln!("{}", format_stats(&stats));
        }
        // Unreachable once every connection thread has joined, but a
        // plain drop still drains via the server's Drop.
        Err(server) => drop(server),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("error: 'serve' requires unix-domain sockets");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeArgs, String> {
        ServeArgs::parse_from(args.iter().copied().map(str::to_owned))
    }

    #[test]
    fn required_flags_and_defaults() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--socket", "s.sock"]).is_err());
        let args = parse(&["--socket", "s.sock", "--store", "corpus/"]).unwrap();
        assert_eq!(args.workers, 2);
        assert_eq!(args.queue_limit, 64);
        assert_eq!(args.slice_traces, 64);
        assert_eq!(args.lanes, sca_campaign::DEFAULT_LANES);
    }

    #[test]
    fn lanes_share_the_common_args_bounds() {
        // Regression companion to `sca_bench::args`' lanes test: the
        // serve front end funnels through the same `validate_lanes`.
        let base = ["--socket", "s.sock", "--store", "corpus/"];
        for bad in ["0", "9", "100"] {
            let mut argv = base.to_vec();
            argv.extend(["--lanes", bad]);
            let error = parse(&argv).unwrap_err();
            assert!(error.contains("--lanes"), "{error}");
        }
        let mut argv = base.to_vec();
        argv.extend(["--lanes", "8"]);
        assert_eq!(parse(&argv).unwrap().lanes, 8);
    }

    #[test]
    fn strict_rejection_of_unknown_flags_and_zeros() {
        let base = ["--socket", "s.sock", "--store", "corpus/"];
        for (flag, value) in [
            ("--workers", "0"),
            ("--queue-limit", "0"),
            ("--slice-traces", "0"),
            ("--threads", "0"),
            ("--checkpoint-every", "0"),
        ] {
            let mut argv = base.to_vec();
            argv.extend([flag, value]);
            let error = parse(&argv).unwrap_err();
            assert!(error.contains(flag), "{error}");
        }
        assert!(parse(&["--socket", "s", "--store", "d", "--sockets", "2"]).is_err());
    }
}
