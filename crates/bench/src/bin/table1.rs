//! Regenerates Table 1: the dual-issue matrix of the Cortex-A7, measured
//! through CPI micro-benchmarks.
//!
//! Usage: `cargo run --release -p sca-bench --bin table1`

use sca_core::DualIssueMap;
use sca_isa::InsnClass;
use sca_uarch::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 1 — instruction pairs executed in dual-issue (measured via CPI)");
    println!("Protocol: 200 repetitions per pair, 100 framing nops, nop-calibrated.\n");

    let config = UarchConfig::cortex_a7();
    let map = DualIssueMap::measure(&config)?;
    println!("{}", map.render());

    println!("Paper's Table 1 for comparison (✓ = dual-issued):");
    let policy = sca_uarch::DualIssuePolicy::cortex_a7();
    let mut mismatches = 0;
    for older in InsnClass::TABLE1 {
        for younger in InsnClass::TABLE1 {
            if map.dual_issued(older, younger) != policy.allows(older, younger) {
                mismatches += 1;
                println!("  mismatch at ({older}, {younger})");
            }
        }
    }
    println!(
        "\n{} of 49 cells match the paper's matrix.",
        49 - mismatches
    );
    Ok(())
}
