//! Regime-matrix benchmark: the microarchitecture-aware HD CPA run at
//! every `threads x batch` operating point, for every portfolio target.
//!
//! Usage: `cargo run --release -p sca-bench --bin regime_matrix
//! [--traces N] [--seed N] [--lanes N] [--quick|--full]
//! [--bench-json PATH]`
//!
//! The sweep owns its `threads`/`batch` grid (that is the point of a
//! regime matrix), so those flags are *not* accepted here. Verdict
//! lines go to stdout and are byte-deterministic — the engine's
//! determinism contract makes every cell of one target print the same
//! verdict, which this binary asserts. Wall-clock timings are
//! machine-dependent and go only to `--bench-json`, one
//! `regime/<target>/t<threads>/b<batch>` entry per cell, the
//! per-cell counterpart of `portfolio --bench-json`'s phase entries.

use std::time::Instant;

use sca_target::{portfolio, ModelKind, TargetCampaign, TargetCampaignConfig};
use sca_uarch::UarchConfig;

const THREAD_GRID: [usize; 3] = [1, 2, 4];
const BATCH_GRID: [usize; 2] = [16, 64];

const USAGE: &str = "known flags: --traces N, --seed N, --lanes N, --quick, --full, \
     --bench-json PATH (the threads x batch grid is fixed)";

#[derive(Clone, Debug)]
struct MatrixArgs {
    traces: Option<usize>,
    seed: u64,
    lanes: usize,
    full: bool,
    bench_json: Option<String>,
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, raw: String) -> T {
    raw.parse()
        .unwrap_or_else(|_| fail(format!("flag '{flag}' got unparsable value '{raw}'")))
}

fn parse_args() -> MatrixArgs {
    let mut out = MatrixArgs {
        traces: None,
        seed: 0xdac_2018,
        lanes: sca_campaign::DEFAULT_LANES,
        full: false,
        bench_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("flag '{flag}' expects a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--traces" => out.traces = Some(parse(&arg, value(&arg))),
            "--seed" => out.seed = parse(&arg, value(&arg)),
            "--lanes" => out.lanes = parse(&arg, value(&arg)),
            "--quick" => out.full = false,
            "--full" => out.full = true,
            "--bench-json" => out.bench_json = Some(value(&arg)),
            unknown => fail(format!("unrecognized argument '{unknown}'")),
        }
    }
    if out.lanes == 0 || out.lanes > sca_uarch::MAX_LANES {
        fail(format!("'--lanes' must be in 1..={}", sca_uarch::MAX_LANES));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let traces = args.traces.unwrap_or(if args.full { 400 } else { 120 });
    println!(
        "Regime matrix — HD CPA per (target, threads, batch) cell, {traces} traces, \
         {} lanes\n",
        args.lanes
    );

    let uarch = UarchConfig::cortex_a7();
    let mut entries: Vec<(String, f64)> = Vec::new();
    for (i, target) in portfolio().iter().enumerate() {
        let target = target.as_ref();
        let model = target
            .models()
            .into_iter()
            .find(|m| m.kind == ModelKind::TransitionHd)
            .expect("every target declares an HD model");
        let mut verdicts: Vec<String> = Vec::new();
        for threads in THREAD_GRID {
            for batch in BATCH_GRID {
                let config = TargetCampaignConfig {
                    traces,
                    executions_per_trace: 8,
                    seed: args.seed ^ ((i as u64 + 1) << 24),
                    threads,
                    batch,
                    lanes: args.lanes,
                    noise: sca_power::GaussianNoise::bare_metal(),
                };
                let campaign = TargetCampaign::new(target, &uarch, config)?;
                let started = Instant::now();
                let verdict = campaign.cpa(&model)?;
                entries.push((
                    format!("regime/{}/t{threads}/b{batch}", target.name()),
                    started.elapsed().as_secs_f64(),
                ));
                println!(
                    "[{} t{threads} b{batch}] {}",
                    target.name(),
                    verdict.verdict()
                );
                verdicts.push(verdict.verdict());
            }
        }
        // The determinism contract across operating points: threads
        // re-associate floating-point sums (~1e-12) and batch changes
        // nothing, so every cell of a target prints one verdict.
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "[{}] verdict changed across the regime grid",
            target.name()
        );
        println!();
    }

    if let Some(path) = &args.bench_json {
        let rows: Vec<String> = entries
            .iter()
            .map(|(name, seconds)| {
                format!("  {{ \"name\": \"{name}\", \"unit\": \"s\", \"value\": {seconds:.6} }}")
            })
            .collect();
        std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n")))?;
        eprintln!("wrote {} cell timings to {path}", entries.len());
    }
    Ok(())
}
