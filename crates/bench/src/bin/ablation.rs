//! Ablation studies: the title claim — "evaluating the impact of
//! micro-architectural features" — made quantitative.
//!
//! Each ablation toggles one feature of the modeled core and re-runs the
//! relevant characterization, showing how the leakage verdicts move:
//!
//! 1. **dual-issue off** — the row-3 pair no longer issues together, so
//!    its operands/results start sharing buffers and leak (Section 4.2's
//!    remark that dual-issuing two shares can *improve* security);
//! 2. **nop WB-zeroing off** — the † boundary leaks vanish ("nops are
//!    semantically neutral but not security neutral", inverted);
//! 3. **align buffer off** — the sub-word remanence leak of row 7
//!    disappears;
//! 4. **operand swap** — swapping the operands of a commutative `eor`
//!    changes which bus positions the shares occupy, creating leakage
//!    that ISA-level reasoning cannot see (audited, not measured).
//!
//! Usage: `cargo run --release -p sca-bench --bin ablation [--traces N]`

use sca_analysis::input_word;
use sca_bench::CommonArgs;
use sca_core::{
    audit_program, run_benchmark, table2_benchmarks, AuditConfig, CharacterizationConfig,
    SecretModel,
};
use sca_isa::{assemble, Reg};
use sca_uarch::{Node, UarchConfig};

fn characterization(args: &CommonArgs) -> CharacterizationConfig {
    CharacterizationConfig {
        traces: args.trace_count(800, 20_000),
        executions_per_trace: 2,
        threads: args.threads,
        batch: args.batch,
        seed: args.seed,
        ..CharacterizationConfig::default()
    }
}

fn cell_corr(row: &sca_core::RowResult, component: sca_uarch::NodeKind, expr: &str) -> (f64, bool) {
    row.cells
        .iter()
        .find(|c| c.component == component && c.expr == expr)
        .map_or((0.0, false), |c| (c.peak_corr.abs(), c.significant))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    args.reject_bench_json("ablation");
    args.reject_metrics_json("ablation");
    args.reject_store_flags("ablation");
    let config = characterization(&args);
    let benchmarks = table2_benchmarks();
    println!("Ablations — impact of individual microarchitectural features\n");

    // 1. Dual issue.
    {
        let row3 = &benchmarks[2];
        let on = run_benchmark(row3, &UarchConfig::cortex_a7(), &config)?;
        let off = run_benchmark(row3, &UarchConfig::scalar(), &config)?;
        let (corr_on, sig_on) = cell_corr(&on, sca_uarch::NodeKind::ExWbBuffer, "rA ^ rD");
        let (corr_off, sig_off) = cell_corr(&off, sca_uarch::NodeKind::ExWbBuffer, "rA ^ rD");
        println!("1. dual-issue and result combination (row 3, EX/WB model rA ^ rD):");
        println!("   dual-issue ON  (A7):      |corr| {corr_on:.4}  leak detected: {sig_on}");
        println!("   dual-issue OFF (scalar):  |corr| {corr_off:.4}  leak detected: {sig_off}");
        println!(
            "   -> pairing the instructions keeps their results on separate WB buses{}\n",
            if !sig_on && sig_off {
                " (leak appears only when scalar)"
            } else {
                ""
            }
        );
    }

    // 2. nop write-back zeroing.
    {
        let row1 = &benchmarks[0];
        let mut no_zeroing = UarchConfig::cortex_a7();
        no_zeroing.nop_zeroes_wb = false;
        let on = run_benchmark(row1, &UarchConfig::cortex_a7(), &config)?;
        let off = run_benchmark(row1, &no_zeroing, &config)?;
        let (corr_on, sig_on) = cell_corr(&on, sca_uarch::NodeKind::ExWbBuffer, "rB (†)");
        let (corr_off, sig_off) = cell_corr(&off, sca_uarch::NodeKind::ExWbBuffer, "rB (†)");
        println!("2. nop WB-bus zeroing and the † boundary leaks (row 1, EX/WB model rB):");
        println!("   nop zeroes WB (A7):       |corr| {corr_on:.4}  leak detected: {sig_on}");
        println!("   nop leaves WB alone:      |corr| {corr_off:.4}  leak detected: {sig_off}");
        println!("   -> the A7's never-executed-conditional nop is not security neutral\n");
    }

    // 3. Align buffer.
    {
        let row7 = &benchmarks[6];
        let mut no_align = UarchConfig::cortex_a7();
        no_align.align_buffer = false;
        let on = run_benchmark(row7, &UarchConfig::cortex_a7(), &config)?;
        let off = run_benchmark(row7, &no_align, &config)?;
        let (corr_on, sig_on) = cell_corr(&on, sca_uarch::NodeKind::AlignBuffer, "rC ^ rG");
        let (corr_off, sig_off) = cell_corr(&off, sca_uarch::NodeKind::AlignBuffer, "rC ^ rG");
        println!("3. LSU align buffer and sub-word remanence (row 7, align model rC ^ rG):");
        println!("   align buffer present:     |corr| {corr_on:.4}  leak detected: {sig_on}");
        println!("   align buffer removed:     |corr| {corr_off:.4}  leak detected: {sig_off}");
        println!(
            "   -> byte values recombine across an intervening word load only via the buffer\n"
        );
    }

    // 4. Operand swap (Section 4.2's "apparently harmless change").
    {
        let straight = assemble(
            "
            nop
            eor r2, r0, r4
            eor r3, r4, r1
            nop
            halt
        ",
        )?;
        let swapped = assemble(
            "
            nop
            eor r2, r0, r4
            eor r3, r1, r4    ; operands of the commutative eor swapped
            nop
            halt
        ",
        )?;
        let models = || {
            [SecretModel::new("HD(share0, share1)", |i: &[u8]| {
                f64::from((input_word(i, 0) ^ input_word(i, 1)).count_ones())
            })]
        };
        let stage = |cpu: &mut sca_uarch::Cpu, input: &[u8]| {
            cpu.set_reg(Reg::R0, input_word(input, 0));
            cpu.set_reg(Reg::R1, input_word(input, 1));
            cpu.set_reg(Reg::R4, 0x5a5a_5a5a);
        };
        let audit_cfg = AuditConfig {
            executions: 400,
            ..AuditConfig::default()
        };
        let uarch = UarchConfig::cortex_a7().with_ideal_memory();
        let report_straight = audit_program(&uarch, &straight, 8, stage, &models(), &audit_cfg)?;
        let report_swapped = audit_program(&uarch, &swapped, 8, stage, &models(), &audit_cfg)?;
        let bus_leaks = |report: &sca_core::AuditReport| {
            report
                .findings
                .iter()
                .filter(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. }))
                .count()
        };
        println!("4. operand swap on a commutative instruction (audited share recombination):");
        println!(
            "   eor r3, r4, r1 (shares in different positions): {} operand-path leaks",
            bus_leaks(&report_straight)
        );
        println!(
            "   eor r3, r1, r4 (share aligned with share0's bus): {} operand-path leaks",
            bus_leaks(&report_swapped)
        );
        println!("   -> a semantically identical swap changes pipeline resource sharing\n");
    }

    Ok(())
}
