//! Regenerates Figure 3: CPA against bare-metal AES with the Hamming
//! weight of the SubBytes output as the leakage model.
//!
//! Usage: `cargo run --release -p sca-bench --bin figure3 [--traces N] [--full]`

use sca_bench::{plot, run_figure3, CommonArgs, Figure3Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    args.reject_bench_json("figure3");
    args.reject_metrics_json("figure3");
    args.reject_store_flags("figure3");
    let config = Figure3Config {
        traces: args.trace_count(1500, 100_000),
        executions_per_trace: if args.full { 16 } else { 4 },
        seed: args.seed,
        threads: args.threads,
        batch: args.batch,
        ..Figure3Config::default()
    };
    println!(
        "Figure 3 — CPA vs time on bare metal, model HW(SubBytes out), {} traces\n",
        config.traces
    );
    let result = run_figure3(&config)?;

    let us_per_sample = 1.0 / (result.samples_per_cycle * 120.0);
    println!("correlation of the correct key guess over round 1:");
    print!(
        "{}",
        plot::ascii_plot(&result.series_correct, 10, 100, "us", us_per_sample)
    );
    println!("\nround-primitive regions (sample ranges):");
    for region in &result.regions {
        let peak = result.peak_in(&region.name);
        println!(
            "  {:<4} [{:>5}..{:>5}]  ({:>6.3} us .. {:>6.3} us)   peak |corr| in region {:.4}",
            region.name,
            region.start,
            region.end,
            region.start as f64 * us_per_sample,
            region.end as f64 * us_per_sample,
            peak
        );
    }
    let wrong_peak = result.series_best_wrong.iter().copied().fold(0.0, f64::max);
    println!(
        "\nkey byte: recovered 0x{:02x}, true 0x{:02x} -> {}",
        result.recovered,
        result.correct,
        if result.success() {
            "SUCCESS"
        } else {
            "FAILURE"
        }
    );
    println!(
        "peak correct-key |corr| {:.4}; best wrong guess {:.4}",
        result.peak(),
        wrong_peak
    );
    println!("\nseries (decimated):");
    print!(
        "{}",
        plot::series_table(&result.series_correct, 40, us_per_sample, "time_us", "corr")
    );
    Ok(())
}
