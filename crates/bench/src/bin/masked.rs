//! Countermeasure evaluation: first-order masked AES-128, with and
//! without scheduling defenses, versus the paper's two CPA models, a
//! fixed-vs-random TVLA assessment, and the node-level audit.
//!
//! Usage: `cargo run --release -p sca-bench --bin masked [--traces N] [--quick|--full]`

use sca_bench::{run_masked, CommonArgs, MaskedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    args.reject_bench_json("masked");
    args.reject_metrics_json("masked");
    args.reject_store_flags("masked");
    let config = MaskedConfig {
        traces: args.trace_count(400, 5_000),
        executions_per_trace: if args.quick() { 8 } else { 16 },
        audit_executions: if args.quick() { 250 } else { 600 },
        seed: args.seed,
        threads: args.threads,
        batch: args.batch,
        ..MaskedConfig::default()
    };
    println!(
        "Countermeasure suite — masked AES-128 vs scheduling defenses, {} traces per campaign\n",
        config.traces
    );
    let result = run_masked(&config)?;

    println!(
        "scheduler: {} store+reload and {} ALU scrub pair(s) inserted into the masked \
         SubBytes/ShiftRows span ({} -> {} instructions)\n",
        result.harden.mem_scrubs,
        result.harden.bus_scrubs,
        result.harden.original_insns,
        result.harden.hardened_insns
    );

    for target in &result.targets {
        println!(
            "== {} (round-1 window {} cycles) ==",
            target.name, target.window_cycles
        );
        for outcome in [&target.hw, &target.hd] {
            println!(
                "  {:<40} peak correct |corr| {:.4}, best wrong {:.4}",
                outcome.verdict(),
                outcome.peak,
                outcome.best_wrong,
            );
        }
        println!(
            "  TVLA fixed-vs-random: max |t| {:.2} -> {} ({} fixed / {} random traces)",
            target.tvla_max_t,
            if target.tvla_leaks { "LEAKS" } else { "clean" },
            target.tvla_counts.0,
            target.tvla_counts.1,
        );
        println!();
    }

    println!("node-level audit of the masked implementations (round-1 SubBytes window):");
    for (name, audit) in [
        ("masked", &result.audit_masked),
        ("masked+sched", &result.audit_scheduled),
    ] {
        println!(
            "  {:<14} {} operand-path leak(s) (operand bus / IS-EX), {} memory-path \
             (MDR/align), {} HW-model, {} total",
            name, audit.operand_path, audit.memory_path, audit.hw_findings, audit.total,
        );
    }
    println!();

    println!("masked target under microarchitectural ablations (HD store model):");
    for row in &result.ablations {
        println!(
            "  {:<26} {}  peak {:.4}",
            row.name,
            row.hd.verdict(),
            row.hd.peak
        );
    }
    println!();

    println!("verdicts:");
    for line in result.verdict_lines() {
        println!("  {line}");
    }

    let masked = result.target("masked");
    let sched = result.target("masked+sched");
    let unprotected = result.target("unprotected");
    println!();
    println!(
        "paper comparison: unprotected falls to both models ({}), masking defeats the \
         value-level HW model ({}) but NOT the microarchitectural HD store model ({}), \
         because the shared output mask cancels in the LSU transition — scheduling \
         distance restores it ({}; correct-key rank degraded to {})",
        unprotected.hd.success() && unprotected.hw.success(),
        !masked.hw.success(),
        masked.hd.success(),
        !sched.hd.success(),
        sched.hd.rank,
    );
    Ok(())
}
