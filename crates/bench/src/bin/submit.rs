//! The campaign-service client.
//!
//! Connects to a running `serve` socket and either submits one campaign
//! spec, asks for the stats line, or requests a drain-and-stop:
//!
//! ```text
//! submit --socket s.sock --tenant ci --target aes128 --analysis hw --traces 150
//! submit --socket s.sock --stats
//! submit --socket s.sock --shutdown
//! ```
//!
//! For a submission, every event line the server streams back goes to
//! stderr as it arrives; the bare final verdict — the text that is
//! byte-identical to the one-shot `portfolio` binary's line for the
//! same spec — goes to stdout, so CI can diff `submit`'s stdout against
//! committed pins. Exit status is 0 on a final verdict, 1 when the
//! server rejects or fails the job, 2 on bad arguments.

const USAGE: &str = "known flags: --socket PATH (required), then either --stats, --metrics, \
     --shutdown, or a spec: --tenant NAME --target NAME --analysis hw|hd|tvla --traces N \
     [--executions N] [--seed N] [--noise-sd X] [--noise-baseline X] [--weight N]";

/// What one invocation asks the server to do.
#[derive(Clone, Debug, PartialEq)]
enum Mode {
    /// Submit the given wire line and stream the job's events.
    Submit(String),
    /// Print the stats line.
    Stats,
    /// Print the full metrics dump.
    Metrics,
    /// Drain and stop the server.
    Shutdown,
}

#[derive(Clone, Debug)]
struct SubmitArgs {
    socket: String,
    mode: Mode,
}

impl SubmitArgs {
    fn parse() -> SubmitArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match SubmitArgs::parse_from(args) {
            Ok(args) => args,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    fn parse_from<I>(args: I) -> Result<SubmitArgs, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut socket = None;
        let mut stats = false;
        let mut metrics = false;
        let mut shutdown = false;
        // Spec fields travel as the strings the user typed (validated
        // locally), so the wire line is exactly what was asked for.
        let mut fields: Vec<(&'static str, String)> = Vec::new();
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                args.next()
                    .ok_or_else(|| format!("flag '{flag}' expects a value"))
            };
            let mut field = |key: &'static str, value: String| -> Result<(), String> {
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate flag '--{key}'"));
                }
                fields.push((key, value));
                Ok(())
            };
            match arg.as_str() {
                "--socket" => socket = Some(value(&arg)?),
                "--stats" => stats = true,
                "--metrics" => metrics = true,
                "--shutdown" => shutdown = true,
                "--tenant" => field("tenant", value(&arg)?)?,
                "--target" => field("target", value(&arg)?)?,
                "--analysis" => field("analysis", value(&arg)?)?,
                "--traces" => field("traces", checked::<u64>(&arg, value(&arg)?)?)?,
                "--executions" => field("executions", checked::<u64>(&arg, value(&arg)?)?)?,
                "--seed" => field("seed", checked_seed(&arg, value(&arg)?)?)?,
                "--noise-sd" => field("noise-sd", checked::<f64>(&arg, value(&arg)?)?)?,
                "--noise-baseline" => {
                    field("noise-baseline", checked::<f64>(&arg, value(&arg)?)?)?;
                }
                "--weight" => field("weight", checked::<u32>(&arg, value(&arg)?)?)?,
                unknown => return Err(format!("unrecognized argument '{unknown}'")),
            }
        }
        let socket = socket.ok_or("'--socket PATH' is required")?;
        let mode = match (stats, metrics, shutdown, fields.is_empty()) {
            (true, false, false, true) => Mode::Stats,
            (false, true, false, true) => Mode::Metrics,
            (false, false, true, true) => Mode::Shutdown,
            (false, false, false, false) => {
                for required in ["tenant", "target", "analysis", "traces"] {
                    if !fields.iter().any(|(k, _)| *k == required) {
                        return Err(format!("a submission requires '--{required}'"));
                    }
                }
                let line = fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                Mode::Submit(format!("submit {line}"))
            }
            (false, false, false, true) => {
                return Err(
                    "nothing to do: give a spec, --stats, --metrics or --shutdown".to_owned(),
                );
            }
            _ => {
                return Err(
                    "'--stats', '--metrics', '--shutdown' and a spec are mutually exclusive"
                        .to_owned(),
                );
            }
        };
        Ok(SubmitArgs { socket, mode })
    }
}

/// Validates that `raw` parses as `T`, passing the original string
/// through unchanged.
fn checked<T: std::str::FromStr>(flag: &str, raw: String) -> Result<String, String> {
    raw.parse::<T>()
        .map(|_| raw.clone())
        .map_err(|_| format!("flag '{flag}' got unparsable value '{raw}'"))
}

/// Seeds accept the wire protocol's `0x` hex form too.
fn checked_seed(flag: &str, raw: String) -> Result<String, String> {
    let ok = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).is_ok(),
        None => raw.parse::<u64>().is_ok(),
    };
    if ok {
        Ok(raw)
    } else {
        Err(format!("flag '{flag}' got unparsable value '{raw}'"))
    }
}

#[cfg(unix)]
fn main() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let args = SubmitArgs::parse();
    let mut stream = match UnixStream::connect(&args.socket) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: cannot connect to '{}': {e}", args.socket);
            std::process::exit(1);
        }
    };
    let request = match &args.mode {
        Mode::Submit(line) => line.as_str(),
        Mode::Stats => "stats",
        Mode::Metrics => "metrics",
        Mode::Shutdown => "shutdown",
    };
    if let Err(e) = writeln!(stream, "{request}") {
        eprintln!("error: cannot send request: {e}");
        std::process::exit(1);
    }
    let reader = BufReader::new(match stream.try_clone() {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("error: cannot read responses: {e}");
            std::process::exit(1);
        }
    });

    let mut succeeded = false;
    let mut failed = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        match &args.mode {
            // The stats line is the deliverable: stdout.
            Mode::Stats => println!("{line}"),
            // Metric lines stream to stdout until the terminator.
            Mode::Metrics => {
                if line == "metrics-end" {
                    break;
                }
                println!("{line}");
                continue;
            }
            Mode::Shutdown => eprintln!("{line}"),
            Mode::Submit(_) => {
                // Full event stream to stderr; the bare verdict — the
                // portfolio-identical text — additionally to stdout.
                eprintln!("{line}");
                if let Some(verdict) = sca_server::final_verdict(&line) {
                    println!("{verdict}");
                    succeeded = true;
                }
                if line.starts_with("rejected ") || line.starts_with("failed ") {
                    failed = true;
                }
                if line.starts_with("done ") || line.starts_with("rejected ") {
                    break;
                }
            }
        }
        if !matches!(args.mode, Mode::Submit(_)) {
            break;
        }
    }
    let ok = match args.mode {
        Mode::Submit(_) => succeeded && !failed,
        Mode::Stats | Mode::Metrics | Mode::Shutdown => true,
    };
    std::process::exit(i32::from(!ok));
}

#[cfg(not(unix))]
fn main() {
    eprintln!("error: 'submit' requires unix-domain sockets");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SubmitArgs, String> {
        SubmitArgs::parse_from(args.iter().copied().map(str::to_owned))
    }

    #[test]
    fn builds_the_wire_line_verbatim() {
        let args = parse(&[
            "--socket",
            "s.sock",
            "--tenant",
            "ci",
            "--target",
            "aes128",
            "--analysis",
            "hw",
            "--traces",
            "150",
            "--executions",
            "2",
            "--seed",
            "0xdac2018",
            "--noise-sd",
            "2.0",
            "--noise-baseline",
            "30.0",
            "--weight",
            "3",
        ])
        .unwrap();
        assert_eq!(
            args.mode,
            Mode::Submit(
                "submit tenant=ci target=aes128 analysis=hw traces=150 executions=2 \
                 seed=0xdac2018 noise-sd=2.0 noise-baseline=30.0 weight=3"
                    .to_owned()
            )
        );
    }

    #[test]
    fn modes_are_exclusive_and_validated() {
        assert_eq!(
            parse(&["--socket", "s", "--stats"]).unwrap().mode,
            Mode::Stats
        );
        assert_eq!(
            parse(&["--socket", "s", "--shutdown"]).unwrap().mode,
            Mode::Shutdown
        );
        assert_eq!(
            parse(&["--socket", "s", "--metrics"]).unwrap().mode,
            Mode::Metrics
        );
        assert!(parse(&["--socket", "s"]).is_err());
        assert!(parse(&["--socket", "s", "--stats", "--shutdown"]).is_err());
        assert!(parse(&["--socket", "s", "--stats", "--metrics"]).is_err());
        assert!(parse(&["--socket", "s", "--metrics", "--tenant", "t"]).is_err());
        assert!(parse(&["--socket", "s", "--stats", "--tenant", "t"]).is_err());
        assert!(parse(&["--stats"]).is_err());
        // A spec needs all four required fields and numeric values.
        assert!(parse(&["--socket", "s", "--tenant", "t"]).is_err());
        assert!(parse(&[
            "--socket",
            "s",
            "--tenant",
            "t",
            "--target",
            "aes128",
            "--analysis",
            "hw",
            "--traces",
            "lots",
        ])
        .is_err());
        assert!(parse(&["--socket", "s", "--tenant", "t", "--tenant", "u"]).is_err());
    }
}
