//! Regenerates Figure 2: the pipeline structure deduced from CPI data.
//!
//! Usage: `cargo run --release -p sca-bench --bin figure2`

use sca_core::PipelineHypothesis;
use sca_uarch::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 2 — pipeline structure deduced from timing alone\n");
    let hypothesis = PipelineHypothesis::infer(&UarchConfig::cortex_a7())?;
    println!("{hypothesis}\n");
    let expected = PipelineHypothesis::cortex_a7_expected();
    if hypothesis == expected {
        println!("Deduction matches the paper's Figure 2 structure exactly.");
    } else {
        println!("Deviation from the paper's structure:\n  measured {hypothesis:?}\n  paper    {expected:?}");
    }
    Ok(())
}
