//! Regenerates Table 2: per-component leakage characterization of the
//! seven micro-benchmarks.
//!
//! Usage: `cargo run --release -p sca-bench --bin table2 [--traces N] [--full]
//! [--bench-json PATH]`

use sca_bench::{write_total_timing, CommonArgs};
use sca_core::{characterize, CharacterizationConfig};
use sca_uarch::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    args.reject_metrics_json("table2");
    args.reject_store_flags("table2");
    let config = CharacterizationConfig {
        traces: args.trace_count(4000, 100_000),
        executions_per_trace: if args.full { 16 } else { 4 },
        threads: args.threads,
        batch: args.batch,
        seed: args.seed,
        ..CharacterizationConfig::default()
    };
    println!(
        "Table 2 — leakage characterization ({} traces x {} averaged executions per benchmark)\n",
        config.traces, config.executions_per_trace
    );
    let started = std::time::Instant::now();
    let report = characterize(&UarchConfig::cortex_a7(), &config)?;
    if let Some(path) = &args.bench_json {
        write_total_timing(path, "table2/total", started.elapsed().as_secs_f64())?;
    }
    println!("{}", report.render());
    Ok(())
}
