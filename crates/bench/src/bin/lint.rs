//! Static leakage lint over the cipher portfolio.
//!
//! ```text
//! lint [TARGET...]
//! ```
//!
//! Runs `sca-lint` over the named targets (default: all of them, in
//! the fixed order below) and prints one compiler-style report per
//! target. The output is fully deterministic — no simulation, no
//! randomness, no thread scheduling — and is pinned byte-for-byte by
//! `LINT_PINS.txt` in CI.
//!
//! Known targets:
//!
//! * `aes128` — the unprotected baseline (expected: RED);
//! * `aes128-masked` — first-order masked, unscheduled (expected: the
//!   pair rules fire where the shared output mask cancels);
//! * `aes128-masked+sched` — the same program hardened by `sca-sched`
//!   (expected: clean);
//! * `speck64128`, `present80` — the other unprotected portfolio
//!   members (expected: RED).
//!
//! The analysis is single-threaded by construction, so the campaign
//! flags `--threads`/`--lanes` are rejected (exit 2) rather than
//! silently ignored: a pinned output must not advertise knobs that
//! cannot change it. Unknown arguments also exit 2.

use sca_bench::masked_sched_program;
use sca_isa::Program;
use sca_lint::{lint_program, LintSpec};
use sca_target::{AesTarget, CipherTarget, MaskedAesTarget, PresentTarget, SpeckTarget};

/// One lintable portfolio entry: `(name, program, spec)`.
type LintEntry = (String, Program, LintSpec);

/// The portfolio in pinned print order.
fn portfolio_specs() -> Result<Vec<LintEntry>, Box<dyn std::error::Error>> {
    let aes = AesTarget::default();
    let masked = MaskedAesTarget::default();
    let (sched_program, _) = masked_sched_program()?;
    let speck = SpeckTarget::default();
    let present = PresentTarget::default();
    Ok(vec![
        (
            aes.name().to_owned(),
            aes.program().clone(),
            aes.lint_spec(),
        ),
        (
            masked.name().to_owned(),
            masked.program().clone(),
            masked.lint_spec(),
        ),
        // The scheduler preserves the memory contract and the release
        // symbols, so the masked spec describes the hardened text too.
        (
            format!("{}+sched", masked.name()),
            sched_program,
            masked.lint_spec(),
        ),
        (
            speck.name().to_owned(),
            speck.program().clone(),
            speck.lint_spec(),
        ),
        (
            present.name().to_owned(),
            present.program().clone(),
            present.lint_spec(),
        ),
    ])
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [TARGET...]\n\
         targets: aes128 aes128-masked aes128-masked+sched speck64128 present80\n\
         (output is deterministic and single-threaded; --threads/--lanes do not apply)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if arg.starts_with("--threads") || arg.starts_with("--lanes") {
            eprintln!(
                "lint: '{arg}' does not apply: the analysis is deterministic and single-threaded"
            );
            std::process::exit(2);
        }
        if arg.starts_with('-') {
            usage();
        }
    }

    let specs = match portfolio_specs() {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(1);
        }
    };
    let known: Vec<&str> = specs.iter().map(|(name, _, _)| name.as_str()).collect();
    for arg in &args {
        if !known.contains(&arg.as_str()) {
            eprintln!("lint: unknown target '{arg}'");
            usage();
        }
    }

    let mut any_error = false;
    for (name, program, spec) in &specs {
        if !args.is_empty() && !args.iter().any(|a| a == name) {
            continue;
        }
        println!("== {name} ==");
        match lint_program(program, spec) {
            Ok(report) => {
                print!("{}", report.render(program));
                any_error |= !report.is_clean();
            }
            Err(e) => {
                eprintln!("lint: {name}: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
    // Diagnostics are the expected outcome on the unprotected targets;
    // the exit status reports them only when the user narrowed the run
    // to targets they expect clean.
    if any_error && !args.is_empty() {
        std::process::exit(3);
    }
}
