//! Regenerates Figure 4: CPA against AES as a userspace process on a
//! loaded Linux system (Apache at 1000 req/s on the second core), with
//! the HD-between-consecutive-SubBytes-stores model.
//!
//! Usage: `cargo run --release -p sca-bench --bin figure4 [--traces N]
//! [--bench-json PATH]`

use sca_bench::{plot, run_figure4, write_total_timing, CommonArgs, Figure4Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse();
    args.reject_metrics_json("figure4");
    args.reject_store_flags("figure4");
    let config = Figure4Config {
        traces: args.trace_count(2500, 10_000),
        seed: args.seed,
        threads: args.threads,
        batch: args.batch,
        ..Figure4Config::default()
    };
    println!(
        "Figure 4 — CPA under loaded Linux, model HD(two consecutive SubBytes stores), {} traces (avg of {})\n",
        config.traces, config.executions_per_trace
    );
    let started = std::time::Instant::now();
    let result = run_figure4(&config)?;
    if let Some(path) = &args.bench_json {
        write_total_timing(path, "figure4/total", started.elapsed().as_secs_f64())?;
    }

    let us_per_sample = 1.0 / (500.0 / 120.0 * 120.0);
    println!("correlation of the correct key guess:");
    print!(
        "{}",
        plot::ascii_plot(&result.series_correct, 10, 100, "us", us_per_sample)
    );
    let wrong_peak = result.series_best_wrong.iter().copied().fold(0.0, f64::max);
    println!(
        "\nkey byte: recovered 0x{:02x}, true 0x{:02x} -> {}",
        result.recovered,
        result.correct,
        if result.success() {
            "SUCCESS"
        } else {
            "FAILURE"
        }
    );
    println!(
        "peak correct |corr| {:.4}; best wrong {:.4}; distinguishing confidence {:.2}% (paper requires > 99%)",
        result.peak(),
        wrong_peak,
        result.success_confidence * 100.0
    );
    println!(
        "same model on bare metal peaks at {:.4}: the OS environment costs a {:.1}x amplitude reduction (paper: ~5x)",
        result.bare_metal_peak,
        result.amplitude_reduction()
    );
    println!("\nseries (decimated):");
    print!(
        "{}",
        plot::series_table(&result.series_correct, 40, us_per_sample, "time_us", "corr")
    );
    Ok(())
}
