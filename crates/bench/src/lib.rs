//! # sca-bench — experiment drivers and regeneration harness
//!
//! One driver per table/figure of the paper, shared between the
//! regeneration binaries (`cargo run -p sca-bench --bin table1` etc.) and
//! the Criterion benches. Each driver returns a structured result so
//! integration tests can assert the paper's qualitative findings — who
//! leaks, where, and whether the attacks succeed.
//!
//! The trace-driven experiments (`figure3`, `figure4`, and — via
//! `sca-core` — `table2`/`ablation`) all acquire through the
//! `sca-campaign` streaming engine, so campaigns run in accumulator-
//! bounded memory and scale across `--threads` without changing
//! verdicts. [`CommonArgs`] wires
//! `--traces/--seed/--threads/--batch/--full` into the engine and
//! rejects anything it does not recognize.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod figure3;
pub mod figure4;
pub mod masked;
pub mod plot;
pub mod portfolio;
mod probe;

pub use args::{validate_lanes, write_total_timing, CommonArgs};
pub use figure3::{run_figure3, Figure3Config, Figure3Result, PhaseRegion};
pub use figure4::{run_figure4, Figure4Config, Figure4Result};
pub use masked::{
    masked_sched_program, run_masked, AblationRow, AttackOutcome, AuditSummary, MaskedConfig,
    MaskedResult, TargetResult, TVLA_FIXED_PT,
};
pub use portfolio::{
    run_portfolio, run_portfolio_reanalyze, PhaseTiming, PortfolioConfig, PortfolioResult,
    PortfolioStoreConfig, ReanalyzeReport, TargetReport,
};
