//! Analysis-layer benchmarks: Pearson accumulation and a full 256-guess
//! CPA — the statistical kernels behind Figures 3 and 4.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sca_analysis::{cpa_attack, CpaConfig, FnSelection, PearsonAccumulator, TraceSet};

fn synthetic_traces(traces: usize, samples: usize) -> TraceSet {
    let mut rng = StdRng::seed_from_u64(42);
    let mut set = TraceSet::new(samples);
    for _ in 0..traces {
        let pt: u8 = rng.gen();
        let mut trace = vec![0.0f32; samples];
        for (i, t) in trace.iter_mut().enumerate() {
            *t = rng.gen_range(-1.0f32..1.0)
                + if i == samples / 2 {
                    f32::from((pt ^ 0x3c).count_ones() as u8)
                } else {
                    0.0
                };
        }
        set.push(trace, vec![pt]);
    }
    set
}

fn bench_pearson_accumulator(c: &mut Criterion) {
    let set = synthetic_traces(500, 500);
    c.bench_function("analysis/pearson_500x500", |b| {
        b.iter(|| {
            let mut acc = PearsonAccumulator::new(set.samples_per_trace());
            for (input, trace) in set.iter() {
                acc.add(f64::from(input[0]), trace);
            }
            std::hint::black_box(acc.correlations())
        });
    });
}

fn bench_cpa(c: &mut Criterion) {
    let set = synthetic_traces(300, 400);
    let model = FnSelection::new("hw", |input: &[u8], k: u8| {
        f64::from((input[0] ^ k).count_ones())
    });
    c.bench_function("figure3/cpa_256_guesses_300x400", |b| {
        b.iter(|| {
            std::hint::black_box(cpa_attack(
                &set,
                &model,
                &CpaConfig {
                    guesses: 256,
                    threads: 8,
                },
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pearson_accumulator, bench_cpa
}
criterion_main!(benches);
