//! Substrate benchmarks: how fast the cycle-level CPU simulates, and the
//! cost of one CPI micro-benchmark measurement (the kernel behind
//! Table 1 and Figure 2).

use criterion::{criterion_group, criterion_main, Criterion};

use sca_aes::AesSim;
use sca_core::{measure_cpi, CpiBenchmark};
use sca_isa::{assemble, InsnClass};
use sca_target::{PresentSim, SpeckSim};
use sca_uarch::{Cpu, NullObserver, UarchConfig};

fn bench_aes_encrypt(c: &mut Criterion) {
    let key = [0x5au8; 16];
    let sim = AesSim::new(UarchConfig::cortex_a7(), &key).expect("AES sim builds");
    c.bench_function("simulator/aes128_encrypt", |b| {
        let mut sim = sim.clone();
        let mut pt = [0u8; 16];
        b.iter(|| {
            pt[0] = pt[0].wrapping_add(1);
            std::hint::black_box(sim.encrypt(&pt).expect("encrypts"));
        });
    });
}

fn bench_speck_encrypt(c: &mut Criterion) {
    let key = [0x5au8; 16];
    let sim = SpeckSim::new(UarchConfig::cortex_a7(), &key).expect("SPECK sim builds");
    c.bench_function("simulator/speck64128_encrypt", |b| {
        let mut sim = sim.clone();
        let mut pt = [0u8; 8];
        b.iter(|| {
            pt[0] = pt[0].wrapping_add(1);
            std::hint::black_box(sim.encrypt(&pt).expect("encrypts"));
        });
    });
}

fn bench_present_encrypt(c: &mut Criterion) {
    let key = [0x5au8; 10];
    let sim = PresentSim::new(UarchConfig::cortex_a7(), &key).expect("PRESENT sim builds");
    c.bench_function("simulator/present80_encrypt", |b| {
        let mut sim = sim.clone();
        let mut pt = [0u8; 8];
        b.iter(|| {
            pt[0] = pt[0].wrapping_add(1);
            std::hint::black_box(sim.encrypt(&pt).expect("encrypts"));
        });
    });
}

fn bench_cycle_throughput(c: &mut Criterion) {
    let program = assemble(
        "
        mov r0, #200
loop:   add r1, r2, r3
        add r4, r5, #7
        subs r0, r0, #1
        bne loop
        halt
    ",
    )
    .expect("assembles");
    c.bench_function("simulator/alu_loop_800_insns", |b| {
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).expect("loads");
        b.iter(|| {
            cpu.restart(0);
            std::hint::black_box(cpu.run(&mut NullObserver).expect("runs"));
        });
    });
}

fn bench_cpi_measurement(c: &mut Criterion) {
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    let bench = CpiBenchmark::hazard_free(InsnClass::Mov, InsnClass::Mov);
    c.bench_function("table1/one_pair_cpi_measurement", |b| {
        b.iter(|| std::hint::black_box(measure_cpi(&bench, &config).expect("measures")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aes_encrypt, bench_speck_encrypt, bench_present_encrypt,
        bench_cycle_throughput, bench_cpi_measurement
}
criterion_main!(benches);
