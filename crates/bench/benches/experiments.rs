//! End-to-end experiment kernels at reduced scale — one Criterion target
//! per paper artifact (Table 1, Figure 2, Table 2, Figure 3, Figure 4).
//! Full-scale regeneration lives in the `sca-bench` binaries.

use criterion::{criterion_group, criterion_main, Criterion};

use sca_bench::{run_figure3, run_figure4, Figure3Config, Figure4Config};
use sca_core::{
    measure_cpi, run_benchmark, table2_benchmarks, CharacterizationConfig, CpiBenchmark,
    PipelineHypothesis,
};
use sca_isa::InsnClass;
use sca_power::GaussianNoise;
use sca_uarch::UarchConfig;

fn bench_table1(c: &mut Criterion) {
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    c.bench_function("table1/alu_aluimm_pair", |b| {
        let bench = CpiBenchmark::hazard_free(InsnClass::Alu, InsnClass::AluImm);
        b.iter(|| std::hint::black_box(measure_cpi(&bench, &config).expect("measures")));
    });
}

fn bench_figure2(c: &mut Criterion) {
    let config = UarchConfig::cortex_a7().with_ideal_memory();
    c.bench_function("figure2/pipeline_inference", |b| {
        b.iter(|| std::hint::black_box(PipelineHypothesis::infer(&config).expect("infers")));
    });
}

fn bench_table2(c: &mut Criterion) {
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    let benchmarks = table2_benchmarks();
    let config = CharacterizationConfig {
        traces: 80,
        executions_per_trace: 1,
        noise: GaussianNoise {
            sd: 2.0,
            baseline: 5.0,
        },
        threads: 4,
        ..CharacterizationConfig::default()
    };
    c.bench_function("table2/row1_characterization_80_traces", |b| {
        b.iter(|| {
            std::hint::black_box(run_benchmark(&benchmarks[0], &uarch, &config).expect("runs"))
        });
    });
}

fn bench_figure3(c: &mut Criterion) {
    let config = Figure3Config {
        traces: 40,
        executions_per_trace: 1,
        threads: 8,
        ..Figure3Config::default()
    };
    c.bench_function("figure3/cpa_aes_40_traces", |b| {
        b.iter(|| std::hint::black_box(run_figure3(&config).expect("runs")));
    });
}

fn bench_figure4(c: &mut Criterion) {
    let config = Figure4Config {
        traces: 30,
        executions_per_trace: 2,
        threads: 8,
        ..Figure4Config::default()
    };
    c.bench_function("figure4/cpa_aes_linux_30_traces", |b| {
        b.iter(|| std::hint::black_box(run_figure4(&config).expect("runs")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_figure2, bench_table2, bench_figure3, bench_figure4
}
criterion_main!(benches);
