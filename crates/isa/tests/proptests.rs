//! Property-based tests for the ISA: encoding round-trips, assembler
//! round-trips, and semantic invariants.

use proptest::prelude::*;
use sca_isa::{
    apply_shift, assemble, decode, encode, eval_dp, AddrMode, Cond, DpOp, Flags, IndexMode, Insn,
    InsnKind, MemDir, MemMultiMode, MemOffset, MemSize, Operand2, Reg, RegSet, RotatedImm,
    ShiftAmount, ShiftKind,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).expect("index < 16"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_shift_kind() -> impl Strategy<Value = ShiftKind> {
    prop::sample::select(ShiftKind::ALL.to_vec())
}

fn arb_rotated_imm() -> impl Strategy<Value = u32> {
    (0u32..=0xff, 0u32..8).prop_map(|(imm8, rot)| imm8.rotate_right(rot * 4))
}

fn arb_operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        arb_rotated_imm().prop_map(Operand2::Imm),
        arb_reg().prop_map(Operand2::Reg),
        (arb_reg(), arb_shift_kind(), 0u8..32).prop_map(|(rm, kind, n)| Operand2::ShiftedReg {
            rm,
            kind,
            amount: ShiftAmount::Imm(n),
        }),
        (arb_reg(), arb_shift_kind(), arb_reg()).prop_map(|(rm, kind, rs)| {
            Operand2::ShiftedReg {
                rm,
                kind,
                amount: ShiftAmount::Reg(rs),
            }
        }),
    ]
}

fn arb_dp_op() -> impl Strategy<Value = DpOp> {
    prop::sample::select(DpOp::ALL.to_vec())
}

fn arb_addr_mode() -> impl Strategy<Value = AddrMode> {
    let offset = prop_oneof![
        (-1023i32..=1023).prop_map(MemOffset::Imm),
        (arb_reg(), arb_shift_kind(), 0u8..16, any::<bool>()).prop_map(
            |(rm, kind, amount, sub)| MemOffset::Reg {
                rm,
                kind,
                amount,
                sub
            }
        ),
    ];
    let index = prop_oneof![
        Just(IndexMode::Offset),
        Just(IndexMode::PreWriteback),
        Just(IndexMode::PostIndex),
    ];
    (arb_reg(), offset, index).prop_map(|(base, offset, index)| AddrMode {
        base,
        offset,
        index,
    })
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let dp = (
        arb_dp_op(),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_operand2(),
    )
        .prop_map(|(op, set_flags, rd, rn, op2)| {
            Insn::new(InsnKind::Dp {
                op,
                set_flags: set_flags || op.is_compare(),
                rd: if op.is_compare() { None } else { Some(rd) },
                rn: if op.is_move() { None } else { Some(rn) },
                op2,
            })
        });
    let mul = (
        any::<bool>(),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_reg(),
        arb_reg(),
    )
        .prop_map(|(mla, set_flags, rd, rm, rs, ra)| {
            Insn::new(InsnKind::Mul {
                op: if mla {
                    sca_isa::MulOp::Mla
                } else {
                    sca_isa::MulOp::Mul
                },
                set_flags,
                rd,
                rm,
                rs,
                ra: mla.then_some(ra),
            })
        });
    let mem = (
        any::<bool>(),
        prop::sample::select(vec![MemSize::Word, MemSize::Byte, MemSize::Half]),
        arb_reg(),
        arb_addr_mode(),
    )
        .prop_map(|(load, size, rd, addr)| {
            Insn::new(InsnKind::Mem {
                dir: if load { MemDir::Load } else { MemDir::Store },
                size,
                rd,
                addr,
            })
        });
    let branch = (any::<bool>(), -(1i32 << 22)..(1i32 << 22))
        .prop_map(|(link, offset)| Insn::new(InsnKind::Branch { link, offset }));
    let multi = (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        arb_reg(),
        1u16..=0xffff,
    )
        .prop_map(|(load, writeback, db, base, bits)| {
            let regs: RegSet = (0..16u8)
                .filter(|i| bits & (1 << i) != 0)
                .map(|i| Reg::from_index(i).expect("index < 16"))
                .collect();
            Insn::new(InsnKind::MemMulti {
                dir: if load { MemDir::Load } else { MemDir::Store },
                base,
                writeback,
                regs,
                mode: if db {
                    MemMultiMode::Db
                } else {
                    MemMultiMode::Ia
                },
            })
        });
    let mul_long = (any::<bool>(), arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(
        |(signed, rd_lo, rd_hi, rm, rs)| {
            if signed {
                Insn::smull(rd_lo, rd_hi, rm, rs)
            } else {
                Insn::umull(rd_lo, rd_hi, rm, rs)
            }
        },
    );
    let misc = prop_oneof![
        arb_reg().prop_map(Insn::bx),
        Just(Insn::nop()),
        any::<bool>().prop_map(Insn::trig),
        Just(Insn::halt()),
    ];
    (
        prop_oneof![dp, mul, mem, branch, multi, mul_long, misc],
        arb_cond(),
    )
        .prop_map(|(insn, cond)| insn.with_cond(cond))
}

proptest! {
    #[test]
    fn encode_decode_round_trip(insn in arb_insn()) {
        let word = encode(&insn).expect("generated instructions are encodable");
        let back = decode(word).expect("encoded words decode");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            // Decoding is not injective (don't-care fields), but the decoded
            // instruction must itself round-trip.
            let word2 = encode(&insn).expect("decoded instruction re-encodes");
            let insn2 = decode(word2).expect("re-encoded word decodes");
            prop_assert_eq!(insn, insn2);
        }
    }

    #[test]
    fn rotated_imm_round_trip(imm8 in 0u32..=0xff, rot in 0u32..8) {
        let value = imm8.rotate_right(rot * 4);
        let enc = RotatedImm::encode(value).expect("by construction encodable");
        prop_assert_eq!(enc.value(), value);
    }

    #[test]
    fn display_reassembles_non_branch(insn in arb_insn()) {
        // `b +off` renders a relative offset that the assembler reads as an
        // absolute target, so branches are excluded from this round trip.
        if insn.is_branch() {
            return Ok(());
        }
        let text = insn.to_string();
        let program = assemble(&format!("{text}\n"))
            .unwrap_or_else(|e| panic!("`{text}` failed to reassemble: {e}"));
        let back = program.insn_at(0).expect("one instruction");
        prop_assert_eq!(back, insn, "source `{}`", text);
    }

    #[test]
    fn shift_matches_u32_ops(value in any::<u32>(), amount in 0u32..32) {
        let lsl = apply_shift(ShiftKind::Lsl, value, amount, false);
        prop_assert_eq!(lsl.value, value.wrapping_shl(amount));
        let lsr = apply_shift(ShiftKind::Lsr, value, amount, false);
        prop_assert_eq!(lsr.value, value.wrapping_shr(amount));
        let asr = apply_shift(ShiftKind::Asr, value, amount, false);
        prop_assert_eq!(asr.value, (value as i32).wrapping_shr(amount) as u32);
        let ror = apply_shift(ShiftKind::Ror, value, amount, false);
        prop_assert_eq!(ror.value, value.rotate_right(amount));
    }

    #[test]
    fn sub_equals_two_complement_add(a in any::<u32>(), b in any::<u32>()) {
        let sub = eval_dp(DpOp::Sub, a, b, false, Flags::default());
        prop_assert_eq!(sub.value, a.wrapping_sub(b));
        // C set iff no borrow.
        prop_assert_eq!(sub.flags.c, a >= b);
    }

    #[test]
    fn flags_n_z_consistent(op in arb_dp_op(), a in any::<u32>(), b in any::<u32>()) {
        let out = eval_dp(op, a, b, false, Flags::default());
        prop_assert_eq!(out.flags.z, out.value == 0);
        prop_assert_eq!(out.flags.n, out.value >> 31 != 0);
    }

    #[test]
    fn read_ports_never_exceed_three(insn in arb_insn()) {
        // No single instruction in this ISA can demand more ports than the
        // Cortex-A7 register file provides.
        prop_assert!(insn.read_ports() <= 3, "{} wants {} ports", insn, insn.read_ports());
    }
}
