//! Architectural semantics of data-processing operations.
//!
//! These are pure functions shared by the pipeline's execute stage and by
//! any host-side golden models. Keeping them here lets the simulator crate
//! focus exclusively on *timing and value movement* — the paper's subject —
//! while correctness of the arithmetic is tested once, in isolation.

use crate::{DpOp, Flags};

/// Outcome of a data-processing computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DpOutcome {
    /// Result value (meaningful even for compare ops, which discard it).
    pub value: u32,
    /// Flags that a flag-setting variant would latch.
    pub flags: Flags,
}

fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, bool, bool) {
    let unsigned = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let value = unsigned as u32;
    let carry = unsigned > u64::from(u32::MAX);
    let signed = i64::from(a as i32) + i64::from(b as i32) + i64::from(carry_in);
    let overflow = signed != i64::from(value as i32);
    (value, carry, overflow)
}

/// Evaluates a data-processing operation.
///
/// * `rn` — first operand (ignored by `mov`/`mvn`).
/// * `op2` — the already-shifted second operand.
/// * `shifter_carry` — carry-out of the barrel shifter (or the incoming C
///   for unshifted operands), used as the C result of logical operations.
/// * `flags_in` — current flags, consumed by `adc`/`sbc` and preserved in
///   fields the operation does not touch.
///
/// ```
/// use sca_isa::{eval_dp, DpOp, Flags};
///
/// let out = eval_dp(DpOp::Add, 2, 3, false, Flags::default());
/// assert_eq!(out.value, 5);
/// assert!(!out.flags.z);
/// ```
pub fn eval_dp(op: DpOp, rn: u32, op2: u32, shifter_carry: bool, flags_in: Flags) -> DpOutcome {
    let (value, carry, overflow) = match op {
        DpOp::And | DpOp::Tst => (rn & op2, shifter_carry, flags_in.v),
        DpOp::Eor | DpOp::Teq => (rn ^ op2, shifter_carry, flags_in.v),
        DpOp::Orr => (rn | op2, shifter_carry, flags_in.v),
        DpOp::Bic => (rn & !op2, shifter_carry, flags_in.v),
        DpOp::Mov => (op2, shifter_carry, flags_in.v),
        DpOp::Mvn => (!op2, shifter_carry, flags_in.v),
        DpOp::Add | DpOp::Cmn => add_with_carry(rn, op2, false),
        DpOp::Adc => add_with_carry(rn, op2, flags_in.c),
        DpOp::Sub | DpOp::Cmp => add_with_carry(rn, !op2, true),
        DpOp::Sbc => add_with_carry(rn, !op2, flags_in.c),
        DpOp::Rsb => add_with_carry(op2, !rn, true),
    };
    let flags = Flags {
        n: value >> 31 != 0,
        z: value == 0,
        c: carry,
        v: overflow,
    };
    DpOutcome { value, flags }
}

/// Evaluates a multiply or multiply-accumulate: `rm * rs (+ ra)`.
///
/// The low 32 bits are kept, as for A32 `mul`/`mla`.
pub fn eval_mul(rm: u32, rs: u32, ra: Option<u32>) -> u32 {
    rm.wrapping_mul(rs).wrapping_add(ra.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: Flags = Flags {
        n: false,
        z: false,
        c: false,
        v: false,
    };

    #[test]
    fn add_sets_carry_and_overflow() {
        let out = eval_dp(DpOp::Add, u32::MAX, 1, false, F0);
        assert_eq!(out.value, 0);
        assert!(out.flags.z);
        assert!(out.flags.c);
        assert!(!out.flags.v);

        let out = eval_dp(DpOp::Add, 0x7fff_ffff, 1, false, F0);
        assert_eq!(out.value, 0x8000_0000);
        assert!(out.flags.n);
        assert!(out.flags.v);
        assert!(!out.flags.c);
    }

    #[test]
    fn sub_carry_means_no_borrow() {
        let out = eval_dp(DpOp::Sub, 5, 3, false, F0);
        assert_eq!(out.value, 2);
        assert!(out.flags.c);
        let out = eval_dp(DpOp::Sub, 3, 5, false, F0);
        assert_eq!(out.value, 3u32.wrapping_sub(5));
        assert!(!out.flags.c);
        assert!(out.flags.n);
    }

    #[test]
    fn rsb_reverses() {
        let out = eval_dp(DpOp::Rsb, 3, 10, false, F0);
        assert_eq!(out.value, 7);
    }

    #[test]
    fn adc_sbc_consume_carry() {
        let carry_in = Flags { c: true, ..F0 };
        assert_eq!(eval_dp(DpOp::Adc, 1, 2, false, carry_in).value, 4);
        assert_eq!(eval_dp(DpOp::Adc, 1, 2, false, F0).value, 3);
        // sbc: rn - op2 - (1 - C)
        assert_eq!(eval_dp(DpOp::Sbc, 10, 3, false, carry_in).value, 7);
        assert_eq!(eval_dp(DpOp::Sbc, 10, 3, false, F0).value, 6);
    }

    #[test]
    fn logical_ops_use_shifter_carry() {
        let out = eval_dp(DpOp::And, 0b1100, 0b1010, true, F0);
        assert_eq!(out.value, 0b1000);
        assert!(out.flags.c);
        let out = eval_dp(DpOp::Eor, 0xff, 0xff, false, Flags { v: true, ..F0 });
        assert!(out.flags.z);
        assert!(out.flags.v, "logical ops preserve V");
    }

    #[test]
    fn moves() {
        assert_eq!(eval_dp(DpOp::Mov, 0xdead, 0x1234, false, F0).value, 0x1234);
        assert_eq!(
            eval_dp(DpOp::Mvn, 0, 0x0000_ffff, false, F0).value,
            0xffff_0000
        );
    }

    #[test]
    fn compares_match_their_arithmetic() {
        for (a, b) in [(0u32, 0u32), (5, 3), (3, 5), (u32::MAX, 1)] {
            assert_eq!(
                eval_dp(DpOp::Cmp, a, b, false, F0).flags,
                eval_dp(DpOp::Sub, a, b, false, F0).flags
            );
            assert_eq!(
                eval_dp(DpOp::Cmn, a, b, false, F0).flags,
                eval_dp(DpOp::Add, a, b, false, F0).flags
            );
        }
    }

    #[test]
    fn multiplies() {
        assert_eq!(eval_mul(6, 7, None), 42);
        assert_eq!(eval_mul(6, 7, Some(8)), 50);
        assert_eq!(eval_mul(0x1_0000, 0x1_0000, None), 0); // low 32 bits
        assert_eq!(eval_mul(u32::MAX, 2, None), u32::MAX.wrapping_mul(2));
    }
}
