//! General-purpose register names.
//!
//! The ISA exposes sixteen 32-bit registers, `r0`–`r15`, following the
//! A32 convention that `r13` is the stack pointer, `r14` the link register
//! and `r15` the program counter.
//!
//! ```
//! use sca_isa::Reg;
//!
//! let r = Reg::R3;
//! assert_eq!(r.index(), 3);
//! assert_eq!(Reg::SP, Reg::R13);
//! assert_eq!("r7".parse::<Reg>().unwrap(), Reg::R7);
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// One of the sixteen architectural general-purpose registers.
///
/// `Reg` is a validated newtype over the register index: a value of this
/// type always names an existing register, so downstream code (register
/// files, pipelines) can index arrays without bounds checks failing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

#[allow(missing_docs)] // the sixteen register names are self-describing
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);
    /// Stack pointer, alias of [`Reg::R13`].
    pub const SP: Reg = Reg(13);
    /// Link register, alias of [`Reg::R14`].
    pub const LR: Reg = Reg(14);
    /// Program counter, alias of [`Reg::R15`].
    pub const PC: Reg = Reg(15);

    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index > 15`.
    pub fn from_index(index: u8) -> Result<Reg, IsaError> {
        if index < 16 {
            Ok(Reg(index))
        } else {
            Err(IsaError::InvalidRegister(index))
        }
    }

    /// Creates a register from the low four bits of an encoding field.
    pub(crate) fn from_field(bits: u32) -> Reg {
        Reg((bits & 0xf) as u8)
    }

    /// The register index, `0..=15`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all sixteen registers in index order.
    ///
    /// ```
    /// use sca_isa::Reg;
    /// assert_eq!(Reg::all().count(), 16);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }

    /// `true` for `r13`/`sp`, `r14`/`lr` and `r15`/`pc`.
    pub fn is_special(self) -> bool {
        self.0 >= 13
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg::R{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "sp" => return Ok(Reg::SP),
            "lr" => return Ok(Reg::LR),
            "pc" => return Ok(Reg::PC),
            "fp" => return Ok(Reg::R11),
            "ip" => return Ok(Reg::R12),
            _ => {}
        }
        let digits = lower
            .strip_prefix('r')
            .ok_or_else(|| IsaError::ParseRegister(s.to_owned()))?;
        let index: u8 = digits
            .parse()
            .map_err(|_| IsaError::ParseRegister(s.to_owned()))?;
        Reg::from_index(index).map_err(|_| IsaError::ParseRegister(s.to_owned()))
    }
}

/// A compact set of registers, used for read/write-set computations.
///
/// ```
/// use sca_isa::{Reg, RegSet};
///
/// let mut set = RegSet::new();
/// set.insert(Reg::R1);
/// set.insert(Reg::R5);
/// assert!(set.contains(Reg::R1));
/// assert_eq!(set.len(), 2);
/// assert!(set.intersects(RegSet::from_iter([Reg::R5])));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegSet(u16);

impl RegSet {
    /// The empty register set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Adds a register to the set.
    pub fn insert(&mut self, reg: Reg) {
        self.0 |= 1 << reg.index();
    }

    /// Removes a register from the set.
    pub fn remove(&mut self, reg: Reg) {
        self.0 &= !(1 << reg.index());
    }

    /// Whether `reg` is a member.
    pub fn contains(self, reg: Reg) -> bool {
        self.0 & (1 << reg.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the two sets share any member.
    pub fn intersects(self, other: RegSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Union of two sets.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Iterates over the members in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..16u8).filter(move |i| self.0 & (1 << i) != 0).map(Reg)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut set = RegSet::new();
        for reg in iter {
            set.insert(reg);
        }
        set
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for reg in iter {
            self.insert(reg);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, reg) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{reg}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_match_indices() {
        assert_eq!(Reg::SP, Reg::R13);
        assert_eq!(Reg::LR, Reg::R14);
        assert_eq!(Reg::PC, Reg::R15);
    }

    #[test]
    fn from_index_bounds() {
        assert!(Reg::from_index(15).is_ok());
        assert!(Reg::from_index(16).is_err());
        assert!(Reg::from_index(255).is_err());
    }

    #[test]
    fn parse_round_trip() {
        for reg in Reg::all() {
            let text = reg.to_string();
            assert_eq!(text.parse::<Reg>().unwrap(), reg, "register {text}");
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::R13);
        assert_eq!("LR".parse::<Reg>().unwrap(), Reg::R14);
        assert_eq!("pc".parse::<Reg>().unwrap(), Reg::R15);
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::R11);
        assert_eq!("ip".parse::<Reg>().unwrap(), Reg::R12);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x0".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
        assert!("r-1".parse::<Reg>().is_err());
    }

    #[test]
    fn display_special_names() {
        assert_eq!(Reg::R13.to_string(), "sp");
        assert_eq!(Reg::R14.to_string(), "lr");
        assert_eq!(Reg::R15.to_string(), "pc");
        assert_eq!(Reg::R4.to_string(), "r4");
    }

    #[test]
    fn regset_basics() {
        let mut set = RegSet::new();
        assert!(set.is_empty());
        set.insert(Reg::R0);
        set.insert(Reg::R15);
        set.insert(Reg::R0);
        assert_eq!(set.len(), 2);
        assert!(set.contains(Reg::R0));
        assert!(set.contains(Reg::R15));
        assert!(!set.contains(Reg::R7));
        set.remove(Reg::R0);
        assert!(!set.contains(Reg::R0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn regset_set_ops() {
        let a: RegSet = [Reg::R1, Reg::R2].into_iter().collect();
        let b: RegSet = [Reg::R2, Reg::R3].into_iter().collect();
        assert!(a.intersects(b));
        let u = a.union(b);
        assert_eq!(u.len(), 3);
        let c: RegSet = [Reg::R9].into_iter().collect();
        assert!(!a.intersects(c));
    }

    #[test]
    fn regset_iter_in_order() {
        let set: RegSet = [Reg::R9, Reg::R1, Reg::R4].into_iter().collect();
        let order: Vec<Reg> = set.iter().collect();
        assert_eq!(order, vec![Reg::R1, Reg::R4, Reg::R9]);
    }
}
