//! Instruction definitions, classification, and data-flow queries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AddrMode, Cond, Operand2, Reg, RegSet, ShiftAmount};

/// Data-processing opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND.
    And = 0,
    /// Bitwise exclusive OR.
    Eor = 1,
    /// Subtract.
    Sub = 2,
    /// Reverse subtract (`rd = op2 - rn`).
    Rsb = 3,
    /// Add.
    Add = 4,
    /// Add with carry.
    Adc = 5,
    /// Subtract with carry.
    Sbc = 6,
    /// Bit clear (`rd = rn & !op2`).
    Bic = 7,
    /// Compare (flags only).
    Cmp = 8,
    /// Compare negative (flags only).
    Cmn = 9,
    /// Test bits (flags only).
    Tst = 10,
    /// Test equivalence (flags only).
    Teq = 11,
    /// Move.
    Mov = 12,
    /// Move NOT.
    Mvn = 13,
    /// Bitwise inclusive OR.
    Orr = 14,
}

impl DpOp {
    /// All data-processing opcodes in encoding order.
    pub const ALL: [DpOp; 15] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Bic,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Tst,
        DpOp::Teq,
        DpOp::Mov,
        DpOp::Mvn,
        DpOp::Orr,
    ];

    /// Encoding field value.
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    pub(crate) fn from_bits(bits: u32) -> Option<DpOp> {
        DpOp::ALL.get(bits as usize).copied()
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Bic => "bic",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
            DpOp::Mov => "mov",
            DpOp::Mvn => "mvn",
            DpOp::Orr => "orr",
        }
    }

    /// Move-style operations have no first source register.
    pub fn is_move(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// Compare/test operations write flags but no destination register.
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Cmp | DpOp::Cmn | DpOp::Tst | DpOp::Teq)
    }

    /// Logical operations derive C from the shifter carry-out.
    pub fn is_logical(self) -> bool {
        matches!(
            self,
            DpOp::And
                | DpOp::Eor
                | DpOp::Tst
                | DpOp::Teq
                | DpOp::Orr
                | DpOp::Mov
                | DpOp::Mvn
                | DpOp::Bic
        )
    }

    /// Whether the operation consumes the incoming carry flag.
    pub fn uses_carry(self) -> bool {
        matches!(self, DpOp::Adc | DpOp::Sbc)
    }
}

impl fmt::Display for DpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Multiply opcodes — executed by the (single) pipelined multiplier that
/// lives next to the barrel shifter in ALU pipe 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MulOp {
    /// `rd = rm * rs`
    Mul,
    /// `rd = rm * rs + ra`
    Mla,
}

impl MulOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mla => "mla",
        }
    }
}

/// Access width of a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum MemSize {
    /// 32-bit word.
    Word = 0,
    /// 8-bit byte. Sub-word accesses exercise the LSU align buffer.
    Byte = 1,
    /// 16-bit halfword. Sub-word accesses exercise the LSU align buffer.
    Half = 2,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Word => 4,
            MemSize::Byte => 1,
            MemSize::Half => 2,
        }
    }

    /// Whether this is a sub-word access (byte or halfword).
    pub fn is_subword(self) -> bool {
        !matches!(self, MemSize::Word)
    }

    /// Mnemonic suffix (`""`, `"b"`, `"h"`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemSize::Word => "",
            MemSize::Byte => "b",
            MemSize::Half => "h",
        }
    }

    pub(crate) fn bits(self) -> u32 {
        self as u32
    }

    pub(crate) fn from_bits(bits: u32) -> MemSize {
        match bits & 0x3 {
            1 => MemSize::Byte,
            2 => MemSize::Half,
            _ => MemSize::Word,
        }
    }
}

/// Direction of a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemDir {
    /// Load from memory into a register.
    Load,
    /// Store from a register to memory.
    Store,
}

/// Addressing discipline of a load/store-multiple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemMultiMode {
    /// Increment after (`ldmia`/`stmia`; `pop` is `ldmia sp!`).
    Ia,
    /// Decrement before (`ldmdb`/`stmdb`; `push` is `stmdb sp!`).
    Db,
}

/// The operation performed by an instruction, without its condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InsnKind {
    /// Data-processing operation.
    Dp {
        /// Opcode.
        op: DpOp,
        /// Whether flags are updated (`s` suffix). Compares always set flags.
        set_flags: bool,
        /// Destination (`None` for compare/test ops).
        rd: Option<Reg>,
        /// First source (`None` for move ops).
        rn: Option<Reg>,
        /// Flexible second operand.
        op2: Operand2,
    },
    /// Multiply / multiply-accumulate.
    Mul {
        /// Opcode.
        op: MulOp,
        /// Whether flags are updated.
        set_flags: bool,
        /// Destination.
        rd: Reg,
        /// Multiplicand.
        rm: Reg,
        /// Multiplier.
        rs: Reg,
        /// Accumulator (only for [`MulOp::Mla`]).
        ra: Option<Reg>,
    },
    /// Load or store.
    Mem {
        /// Load or store.
        dir: MemDir,
        /// Access width.
        size: MemSize,
        /// Data register (destination for loads, source for stores).
        rd: Reg,
        /// Addressing mode.
        addr: AddrMode,
    },
    /// Load/store multiple: sequential word transfers through the LSU,
    /// lowest-numbered register at the lowest address (A32 semantics).
    MemMulti {
        /// Load or store.
        dir: MemDir,
        /// Base register.
        base: Reg,
        /// Whether the base is written back.
        writeback: bool,
        /// Transferred registers.
        regs: RegSet,
        /// Increment-after or decrement-before.
        mode: MemMultiMode,
    },
    /// 64-bit multiply: `rd_hi:rd_lo = rm * rs` (`umull`/`smull`).
    MulLong {
        /// Signed (`smull`) or unsigned (`umull`).
        signed: bool,
        /// High result word.
        rd_hi: Reg,
        /// Low result word.
        rd_lo: Reg,
        /// Multiplicand.
        rm: Reg,
        /// Multiplier.
        rs: Reg,
    },
    /// PC-relative branch. The offset is in *instructions* relative to the
    /// instruction after the branch.
    Branch {
        /// Whether `lr` is written (branch-and-link).
        link: bool,
        /// Signed instruction offset.
        offset: i32,
    },
    /// Branch to register.
    Bx {
        /// Target register.
        rm: Reg,
    },
    /// Architectural no-op. Microarchitecturally this is a never-executed
    /// conditional data-processing instruction with zero operands: it
    /// occupies an issue slot, drives zeros onto the IS/EX operand buses
    /// and zeroes the write-back bus (paper, Section 4.1).
    Nop,
    /// Toggle the simulated GPIO trigger pin (measurement window marker).
    Trig {
        /// Pin level to assert.
        high: bool,
    },
    /// Stop the simulation (models the end of a bare-metal benchmark).
    Halt,
}

/// A complete instruction: a condition plus an operation.
///
/// ```
/// use sca_isa::{Insn, Reg};
///
/// let insn = Insn::add(Reg::R0, Reg::R1, Reg::R2);
/// assert_eq!(insn.to_string(), "add r0, r1, r2");
/// assert_eq!(insn.class(), sca_isa::InsnClass::Alu);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Insn {
    /// Condition under which the instruction architecturally executes.
    pub cond: Cond,
    /// The operation.
    pub kind: InsnKind,
}

impl Insn {
    /// Wraps an [`InsnKind`] with the always condition.
    pub fn new(kind: InsnKind) -> Insn {
        Insn {
            cond: Cond::Al,
            kind,
        }
    }

    /// Replaces the condition.
    pub fn with_cond(mut self, cond: Cond) -> Insn {
        self.cond = cond;
        self
    }

    // ---- convenience constructors -------------------------------------

    /// `mov rd, op2`
    pub fn mov(rd: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::new(InsnKind::Dp {
            op: DpOp::Mov,
            set_flags: false,
            rd: Some(rd),
            rn: None,
            op2: op2.into(),
        })
    }

    /// `mvn rd, op2`
    pub fn mvn(rd: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::new(InsnKind::Dp {
            op: DpOp::Mvn,
            set_flags: false,
            rd: Some(rd),
            rn: None,
            op2: op2.into(),
        })
    }

    /// Generic three-operand data-processing constructor.
    pub fn dp(op: DpOp, rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::new(InsnKind::Dp {
            op,
            set_flags: false,
            rd: Some(rd),
            rn: Some(rn),
            op2: op2.into(),
        })
    }

    /// `add rd, rn, op2`
    pub fn add(rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::dp(DpOp::Add, rd, rn, op2)
    }

    /// `sub rd, rn, op2`
    pub fn sub(rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::dp(DpOp::Sub, rd, rn, op2)
    }

    /// `eor rd, rn, op2`
    pub fn eor(rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::dp(DpOp::Eor, rd, rn, op2)
    }

    /// `and rd, rn, op2`
    pub fn and(rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::dp(DpOp::And, rd, rn, op2)
    }

    /// `orr rd, rn, op2`
    pub fn orr(rd: Reg, rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::dp(DpOp::Orr, rd, rn, op2)
    }

    /// `cmp rn, op2`
    pub fn cmp(rn: Reg, op2: impl Into<Operand2>) -> Insn {
        Insn::new(InsnKind::Dp {
            op: DpOp::Cmp,
            set_flags: true,
            rd: None,
            rn: Some(rn),
            op2: op2.into(),
        })
    }

    /// Explicit shift: `lsl/lsr/asr/ror rd, rm, #amount` — sugar for a
    /// `mov` with a shifted-register operand, exactly as in A32.
    pub fn shift_imm(kind: crate::ShiftKind, rd: Reg, rm: Reg, amount: u8) -> Insn {
        Insn::new(InsnKind::Dp {
            op: DpOp::Mov,
            set_flags: false,
            rd: Some(rd),
            rn: None,
            op2: Operand2::ShiftedReg {
                rm,
                kind,
                amount: ShiftAmount::Imm(amount),
            },
        })
    }

    /// `mul rd, rm, rs`
    pub fn mul(rd: Reg, rm: Reg, rs: Reg) -> Insn {
        Insn::new(InsnKind::Mul {
            op: MulOp::Mul,
            set_flags: false,
            rd,
            rm,
            rs,
            ra: None,
        })
    }

    /// `mla rd, rm, rs, ra`
    pub fn mla(rd: Reg, rm: Reg, rs: Reg, ra: Reg) -> Insn {
        Insn::new(InsnKind::Mul {
            op: MulOp::Mla,
            set_flags: false,
            rd,
            rm,
            rs,
            ra: Some(ra),
        })
    }

    /// `ldr rd, addr` (word).
    pub fn ldr(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Load,
            size: MemSize::Word,
            rd,
            addr,
        })
    }

    /// `ldrb rd, addr`.
    pub fn ldrb(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Load,
            size: MemSize::Byte,
            rd,
            addr,
        })
    }

    /// `ldrh rd, addr`.
    pub fn ldrh(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Load,
            size: MemSize::Half,
            rd,
            addr,
        })
    }

    /// `str rd, addr` (word).
    pub fn str(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Store,
            size: MemSize::Word,
            rd,
            addr,
        })
    }

    /// `strb rd, addr`.
    pub fn strb(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Store,
            size: MemSize::Byte,
            rd,
            addr,
        })
    }

    /// `strh rd, addr`.
    pub fn strh(rd: Reg, addr: AddrMode) -> Insn {
        Insn::new(InsnKind::Mem {
            dir: MemDir::Store,
            size: MemSize::Half,
            rd,
            addr,
        })
    }

    /// `ldmia base(!), {regs}`.
    pub fn ldmia(base: Reg, writeback: bool, regs: RegSet) -> Insn {
        Insn::new(InsnKind::MemMulti {
            dir: MemDir::Load,
            base,
            writeback,
            regs,
            mode: MemMultiMode::Ia,
        })
    }

    /// `stmdb base(!), {regs}`.
    pub fn stmdb(base: Reg, writeback: bool, regs: RegSet) -> Insn {
        Insn::new(InsnKind::MemMulti {
            dir: MemDir::Store,
            base,
            writeback,
            regs,
            mode: MemMultiMode::Db,
        })
    }

    /// `push {regs}` — alias of `stmdb sp!, {regs}`.
    pub fn push(regs: RegSet) -> Insn {
        Insn::stmdb(Reg::SP, true, regs)
    }

    /// `pop {regs}` — alias of `ldmia sp!, {regs}`.
    pub fn pop(regs: RegSet) -> Insn {
        Insn::ldmia(Reg::SP, true, regs)
    }

    /// `umull rd_lo, rd_hi, rm, rs`.
    pub fn umull(rd_lo: Reg, rd_hi: Reg, rm: Reg, rs: Reg) -> Insn {
        Insn::new(InsnKind::MulLong {
            signed: false,
            rd_hi,
            rd_lo,
            rm,
            rs,
        })
    }

    /// `smull rd_lo, rd_hi, rm, rs`.
    pub fn smull(rd_lo: Reg, rd_hi: Reg, rm: Reg, rs: Reg) -> Insn {
        Insn::new(InsnKind::MulLong {
            signed: true,
            rd_hi,
            rd_lo,
            rm,
            rs,
        })
    }

    /// `b offset` (offset in instructions from the next instruction).
    pub fn b(offset: i32) -> Insn {
        Insn::new(InsnKind::Branch {
            link: false,
            offset,
        })
    }

    /// `bl offset`.
    pub fn bl(offset: i32) -> Insn {
        Insn::new(InsnKind::Branch { link: true, offset })
    }

    /// `bx rm`.
    pub fn bx(rm: Reg) -> Insn {
        Insn::new(InsnKind::Bx { rm })
    }

    /// `nop`.
    pub fn nop() -> Insn {
        Insn::new(InsnKind::Nop)
    }

    /// `trig #level` — simulated GPIO trigger edge.
    pub fn trig(high: bool) -> Insn {
        Insn::new(InsnKind::Trig { high })
    }

    /// `halt`.
    pub fn halt() -> Insn {
        Insn::new(InsnKind::Halt)
    }

    // ---- data-flow queries ---------------------------------------------

    /// The set of registers this instruction reads.
    pub fn reads(&self) -> RegSet {
        let mut set = RegSet::new();
        match &self.kind {
            InsnKind::Dp { rn, op2, .. } => {
                set.extend(rn.iter().copied());
                set.extend(op2.reads());
            }
            InsnKind::Mul { rm, rs, ra, .. } => {
                set.insert(*rm);
                set.insert(*rs);
                set.extend(ra.iter().copied());
            }
            InsnKind::Mem { dir, rd, addr, .. } => {
                set.extend(addr.reads());
                if *dir == MemDir::Store {
                    set.insert(*rd);
                }
            }
            InsnKind::MemMulti {
                dir, base, regs, ..
            } => {
                set.insert(*base);
                if *dir == MemDir::Store {
                    set = set.union(*regs);
                }
            }
            InsnKind::MulLong { rm, rs, .. } => {
                set.insert(*rm);
                set.insert(*rs);
            }
            InsnKind::Bx { rm } => set.insert(*rm),
            InsnKind::Branch { .. } | InsnKind::Nop | InsnKind::Trig { .. } | InsnKind::Halt => {}
        }
        set
    }

    /// The set of registers this instruction writes.
    pub fn writes(&self) -> RegSet {
        let mut set = RegSet::new();
        match &self.kind {
            InsnKind::Dp { rd, .. } => set.extend(rd.iter().copied()),
            InsnKind::Mul { rd, .. } => set.insert(*rd),
            InsnKind::Mem { dir, rd, addr, .. } => {
                if *dir == MemDir::Load {
                    set.insert(*rd);
                }
                if addr.writes_base() {
                    set.insert(addr.base);
                }
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                ..
            } => {
                if *dir == MemDir::Load {
                    set = set.union(*regs);
                }
                if *writeback {
                    set.insert(*base);
                }
            }
            InsnKind::MulLong { rd_hi, rd_lo, .. } => {
                set.insert(*rd_hi);
                set.insert(*rd_lo);
            }
            InsnKind::Branch { link, .. } => {
                if *link {
                    set.insert(Reg::LR);
                }
            }
            InsnKind::Bx { .. } | InsnKind::Nop | InsnKind::Trig { .. } | InsnKind::Halt => {}
        }
        set
    }

    /// Number of register-file read ports the instruction needs in the
    /// issue stage.
    ///
    /// Stores reserve a port for the data register in addition to the
    /// address registers, which is how the Table 1 `ld/st` pairing
    /// restrictions arise from a three-read-port register file.
    pub fn read_ports(&self) -> usize {
        match &self.kind {
            // ld/st reserve the LSU's two operand ports (base + data) as a
            // unit; loads leave the data port idle but still own it.
            InsnKind::Mem { addr, .. } => 1 + addr.reads().count(),
            // Multi-transfers iterate through the LSU's ports beat by
            // beat; they never demand more than the unit's two ports in
            // one cycle.
            InsnKind::MemMulti { .. } => 2,
            _ => self.reads().len(),
        }
    }

    /// Whether the instruction updates the flags.
    pub fn sets_flags(&self) -> bool {
        match &self.kind {
            InsnKind::Dp { set_flags, op, .. } => *set_flags || op.is_compare(),
            InsnKind::Mul { set_flags, .. } => *set_flags,
            _ => false,
        }
    }

    /// Whether the instruction reads the flags (conditional execution or
    /// carry-consuming ops).
    pub fn reads_flags(&self) -> bool {
        if self.cond != Cond::Al && self.cond != Cond::Nv {
            return true;
        }
        match &self.kind {
            InsnKind::Dp { op, .. } => op.uses_carry(),
            _ => false,
        }
    }

    /// The instruction class used by the dual-issue policy (Table 1 of the
    /// paper).
    pub fn class(&self) -> InsnClass {
        match &self.kind {
            InsnKind::Nop => InsnClass::Nop,
            InsnKind::Dp { op, op2, .. } => {
                if op2.uses_shifter() {
                    InsnClass::Shift
                } else if op.is_move() {
                    InsnClass::Mov
                } else if op2.is_imm() {
                    InsnClass::AluImm
                } else {
                    InsnClass::Alu
                }
            }
            InsnKind::Mul { .. } | InsnKind::MulLong { .. } => InsnClass::Mul,
            InsnKind::Mem { .. } | InsnKind::MemMulti { .. } => InsnClass::LdSt,
            InsnKind::Branch { .. } | InsnKind::Bx { .. } => InsnClass::Branch,
            // Trigger/halt are measurement pseudo-ops; they behave like
            // system instructions and never pair.
            InsnKind::Trig { .. } | InsnKind::Halt => InsnClass::System,
        }
    }

    /// Whether this is a control-flow instruction.
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InsnKind::Branch { .. } | InsnKind::Bx { .. })
    }

    /// Whether this is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InsnKind::Mem { .. } | InsnKind::MemMulti { .. })
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cond = self.cond.suffix();
        match &self.kind {
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let s = if *set_flags && !op.is_compare() {
                    "s"
                } else {
                    ""
                };
                write!(f, "{op}{cond}{s} ")?;
                let mut first = true;
                if let Some(rd) = rd {
                    write!(f, "{rd}")?;
                    first = false;
                }
                if let Some(rn) = rn {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{rn}")?;
                    first = false;
                }
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{op2}")
            }
            InsnKind::Mul {
                op,
                set_flags,
                rd,
                rm,
                rs,
                ra,
            } => {
                let s = if *set_flags { "s" } else { "" };
                write!(f, "{}{cond}{s} {rd}, {rm}, {rs}", op.mnemonic())?;
                if let Some(ra) = ra {
                    write!(f, ", {ra}")?;
                }
                Ok(())
            }
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr,
            } => {
                let mnem = match dir {
                    MemDir::Load => "ldr",
                    MemDir::Store => "str",
                };
                // UAL order: size suffix before the condition (`strbeq`).
                write!(f, "{mnem}{}{cond} {rd}, {addr}", size.suffix())
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                mode,
            } => {
                let reg_list = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    write!(f, "{{")?;
                    for (i, reg) in regs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{reg}")?;
                    }
                    write!(f, "}}")
                };
                // Canonical aliases for the stack idioms.
                if *base == Reg::SP && *writeback {
                    match (dir, mode) {
                        (MemDir::Store, MemMultiMode::Db) => {
                            write!(f, "push{cond} ")?;
                            return reg_list(f);
                        }
                        (MemDir::Load, MemMultiMode::Ia) => {
                            write!(f, "pop{cond} ")?;
                            return reg_list(f);
                        }
                        _ => {}
                    }
                }
                let mnem = match (dir, mode) {
                    (MemDir::Load, MemMultiMode::Ia) => "ldmia",
                    (MemDir::Load, MemMultiMode::Db) => "ldmdb",
                    (MemDir::Store, MemMultiMode::Ia) => "stmia",
                    (MemDir::Store, MemMultiMode::Db) => "stmdb",
                };
                write!(
                    f,
                    "{mnem}{cond} {base}{} ",
                    if *writeback { "!," } else { "," }
                )?;
                reg_list(f)
            }
            InsnKind::MulLong {
                signed,
                rd_hi,
                rd_lo,
                rm,
                rs,
            } => {
                let mnem = if *signed { "smull" } else { "umull" };
                write!(f, "{mnem}{cond} {rd_lo}, {rd_hi}, {rm}, {rs}")
            }
            InsnKind::Branch { link, offset } => {
                let mnem = if *link { "bl" } else { "b" };
                write!(f, "{mnem}{cond} {offset:+}")
            }
            InsnKind::Bx { rm } => write!(f, "bx{cond} {rm}"),
            InsnKind::Nop => write!(f, "nop{cond}"),
            InsnKind::Trig { high } => write!(f, "trig{cond} #{}", u8::from(*high)),
            InsnKind::Halt => write!(f, "halt{cond}"),
        }
    }
}

/// Instruction classes distinguished by the Cortex-A7 dual-issue policy
/// (rows/columns of Table 1 in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum InsnClass {
    /// Register or immediate moves.
    Mov = 0,
    /// Arithmetic/logic with a register second operand.
    Alu = 1,
    /// Arithmetic/logic with an immediate second operand.
    AluImm = 2,
    /// Multiplies.
    Mul = 3,
    /// Anything routed through the barrel shifter.
    Shift = 4,
    /// Branches.
    Branch = 5,
    /// Loads and stores.
    LdSt = 6,
    /// The never-executed conditional `nop` (not dual-issued on the A7).
    Nop = 7,
    /// Measurement pseudo-ops (trigger, halt).
    System = 8,
}

impl InsnClass {
    /// The seven classes that appear in Table 1, in the paper's column
    /// order.
    pub const TABLE1: [InsnClass; 7] = [
        InsnClass::Mov,
        InsnClass::Alu,
        InsnClass::AluImm,
        InsnClass::Mul,
        InsnClass::Shift,
        InsnClass::Branch,
        InsnClass::LdSt,
    ];

    /// Total number of classes.
    pub const COUNT: usize = 9;

    /// Short label used when rendering Table 1.
    pub fn label(self) -> &'static str {
        match self {
            InsnClass::Mov => "mov",
            InsnClass::Alu => "ALU",
            InsnClass::AluImm => "ALU w/ imm",
            InsnClass::Mul => "mul",
            InsnClass::Shift => "shifts",
            InsnClass::Branch => "branch",
            InsnClass::LdSt => "ld/st",
            InsnClass::Nop => "nop",
            InsnClass::System => "system",
        }
    }

    /// Index usable for matrix storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for InsnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShiftKind;

    #[test]
    fn classification_matches_table1_rows() {
        assert_eq!(Insn::mov(Reg::R0, Reg::R1).class(), InsnClass::Mov);
        assert_eq!(Insn::mov(Reg::R0, 7u32).class(), InsnClass::Mov);
        assert_eq!(Insn::add(Reg::R0, Reg::R1, Reg::R2).class(), InsnClass::Alu);
        assert_eq!(Insn::add(Reg::R0, Reg::R1, 4u32).class(), InsnClass::AluImm);
        assert_eq!(Insn::mul(Reg::R0, Reg::R1, Reg::R2).class(), InsnClass::Mul);
        assert_eq!(
            Insn::shift_imm(ShiftKind::Lsl, Reg::R0, Reg::R1, 3).class(),
            InsnClass::Shift
        );
        let shifted_add = Insn::add(
            Reg::R0,
            Reg::R1,
            Operand2::ShiftedReg {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: ShiftAmount::Imm(4),
            },
        );
        assert_eq!(shifted_add.class(), InsnClass::Shift);
        assert_eq!(Insn::b(-3).class(), InsnClass::Branch);
        assert_eq!(
            Insn::ldr(Reg::R0, AddrMode::base(Reg::R1)).class(),
            InsnClass::LdSt
        );
        assert_eq!(Insn::nop().class(), InsnClass::Nop);
    }

    #[test]
    fn read_write_sets_dp() {
        let insn = Insn::add(Reg::R0, Reg::R1, Reg::R2);
        assert_eq!(insn.reads(), [Reg::R1, Reg::R2].into_iter().collect());
        assert_eq!(insn.writes(), [Reg::R0].into_iter().collect());
        assert_eq!(insn.read_ports(), 2);
        let imm = Insn::add(Reg::R0, Reg::R1, 9u32);
        assert_eq!(imm.read_ports(), 1);
    }

    #[test]
    fn read_write_sets_mem() {
        let load = Insn::ldr(Reg::R0, AddrMode::base(Reg::R1));
        assert_eq!(load.reads(), [Reg::R1].into_iter().collect());
        assert_eq!(load.writes(), [Reg::R0].into_iter().collect());
        // The LSU owns two ports even for loads.
        assert_eq!(load.read_ports(), 2);

        let store = Insn::str(Reg::R0, AddrMode::base(Reg::R1));
        assert_eq!(store.reads(), [Reg::R0, Reg::R1].into_iter().collect());
        assert!(store.writes().is_empty());
        assert_eq!(store.read_ports(), 2);
    }

    #[test]
    fn read_write_sets_mul_and_branch() {
        let mla = Insn::mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(mla.reads().len(), 3);
        assert_eq!(mla.writes(), [Reg::R0].into_iter().collect());
        let bl = Insn::bl(5);
        assert_eq!(bl.writes(), [Reg::LR].into_iter().collect());
        assert!(bl.reads().is_empty());
    }

    #[test]
    fn writeback_addressing_writes_base() {
        let addr = AddrMode {
            base: Reg::R1,
            offset: crate::MemOffset::Imm(4),
            index: crate::IndexMode::PostIndex,
        };
        let load = Insn::ldr(Reg::R0, addr);
        assert!(load.writes().contains(Reg::R1));
        assert!(load.writes().contains(Reg::R0));
    }

    #[test]
    fn flags_queries() {
        assert!(Insn::cmp(Reg::R0, Reg::R1).sets_flags());
        assert!(!Insn::add(Reg::R0, Reg::R1, Reg::R2).sets_flags());
        let adc = Insn::dp(DpOp::Adc, Reg::R0, Reg::R1, Reg::R2);
        assert!(adc.reads_flags());
        let cond = Insn::add(Reg::R0, Reg::R1, Reg::R2).with_cond(Cond::Eq);
        assert!(cond.reads_flags());
        // Nv does not *evaluate* flags: it never executes.
        let nop_like = Insn::mov(Reg::R0, 0u32).with_cond(Cond::Nv);
        assert!(!nop_like.reads_flags());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Insn::mov(Reg::R0, 5u32).to_string(), "mov r0, #5");
        assert_eq!(
            Insn::add(Reg::R1, Reg::R2, Reg::R3).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(Insn::cmp(Reg::R1, 0u32).to_string(), "cmp r1, #0");
        assert_eq!(
            Insn::shift_imm(ShiftKind::Lsl, Reg::R0, Reg::R1, 3).to_string(),
            "mov r0, r1, lsl #3"
        );
        assert_eq!(
            Insn::mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3).to_string(),
            "mla r0, r1, r2, r3"
        );
        assert_eq!(
            Insn::ldrb(Reg::R0, AddrMode::base(Reg::R1)).to_string(),
            "ldrb r0, [r1]"
        );
        assert_eq!(Insn::b(4).with_cond(Cond::Ne).to_string(), "bne +4");
        assert_eq!(Insn::nop().to_string(), "nop");
        assert_eq!(Insn::trig(true).to_string(), "trig #1");
    }
}
