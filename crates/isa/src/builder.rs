//! Programmatic program construction.
//!
//! The CPI micro-benchmark generator builds thousands of small kernels
//! (instruction pair × repetition count × hazard pattern); doing that
//! through the text assembler would be wasteful, so [`ProgramBuilder`]
//! offers a direct, label-aware builder over [`Insn`] values.
//!
//! ```
//! use sca_isa::{Insn, InsnExt, ProgramBuilder, Reg};
//!
//! let program = ProgramBuilder::new(0x0)
//!     .push(Insn::mov(Reg::R0, 4u32))
//!     .label("loop")
//!     .push(Insn::sub(Reg::R0, Reg::R0, 1u32).flag_setting())
//!     .branch_to(sca_isa::Cond::Ne, false, "loop")
//!     .push(Insn::halt())
//!     .build()?;
//! assert_eq!(program.symbol("loop"), Some(4));
//! # Ok::<(), sca_isa::IsaError>(())
//! ```

use std::collections::BTreeMap;

use crate::{Cond, Insn, InsnKind, IsaError, Program};

/// Extension helpers on [`Insn`] used when building programs fluently.
pub trait InsnExt {
    /// Returns the flag-setting (`s` suffix) variant of a data-processing
    /// or multiply instruction; other kinds are returned unchanged.
    fn flag_setting(self) -> Insn;
}

impl InsnExt for Insn {
    fn flag_setting(mut self) -> Insn {
        match &mut self.kind {
            InsnKind::Dp { set_flags, .. } | InsnKind::Mul { set_flags, .. } => *set_flags = true,
            _ => {}
        }
        self
    }
}

#[derive(Debug)]
enum Slot {
    Ready(Insn),
    Branch {
        cond: Cond,
        link: bool,
        label: String,
    },
}

/// Builds a [`Program`] from instructions with symbolic branch targets.
#[derive(Debug)]
pub struct ProgramBuilder {
    base: u32,
    slots: Vec<Slot>,
    labels: BTreeMap<String, usize>,
}

impl ProgramBuilder {
    /// Starts an empty program at `base`.
    pub fn new(base: u32) -> ProgramBuilder {
        ProgramBuilder {
            base,
            slots: Vec::new(),
            labels: BTreeMap::new(),
        }
    }

    /// Appends one instruction.
    #[must_use]
    pub fn push(mut self, insn: Insn) -> ProgramBuilder {
        self.slots.push(Slot::Ready(insn));
        self
    }

    /// Appends every instruction from an iterator.
    #[must_use]
    pub fn extend<I: IntoIterator<Item = Insn>>(mut self, insns: I) -> ProgramBuilder {
        self.slots.extend(insns.into_iter().map(Slot::Ready));
        self
    }

    /// Appends `count` copies of `insn`.
    #[must_use]
    pub fn repeat(mut self, insn: Insn, count: usize) -> ProgramBuilder {
        for _ in 0..count {
            self.slots.push(Slot::Ready(insn));
        }
        self
    }

    /// Appends `count` `nop`s — the paper frames every benchmark kernel
    /// with 100 of them to flush pipeline state.
    #[must_use]
    pub fn nops(self, count: usize) -> ProgramBuilder {
        self.repeat(Insn::nop(), count)
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined — a builder-programming
    /// error, not a data error.
    #[must_use]
    pub fn label(mut self, name: impl Into<String>) -> ProgramBuilder {
        let name = name.into();
        let previous = self.labels.insert(name.clone(), self.slots.len());
        assert!(previous.is_none(), "label `{name}` defined twice");
        self
    }

    /// Appends a conditional branch (or branch-and-link) to a label, which
    /// may be defined before or after this point.
    #[must_use]
    pub fn branch_to(mut self, cond: Cond, link: bool, label: impl Into<String>) -> ProgramBuilder {
        self.slots.push(Slot::Branch {
            cond,
            link,
            label: label.into(),
        });
        self
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolves branches and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined labels or instructions whose fields
    /// do not fit their encodings.
    pub fn build(self) -> Result<Program, IsaError> {
        let mut insns = Vec::with_capacity(self.slots.len());
        for (index, slot) in self.slots.iter().enumerate() {
            let insn = match slot {
                Slot::Ready(insn) => *insn,
                Slot::Branch { cond, link, label } => {
                    let target = *self.labels.get(label).ok_or_else(|| IsaError::Asm {
                        line: index + 1,
                        message: format!("undefined label `{label}`"),
                    })?;
                    let offset = target as i64 - (index as i64 + 1);
                    Insn::new(InsnKind::Branch {
                        link: *link,
                        offset: offset as i32,
                    })
                    .with_cond(*cond)
                }
            };
            insns.push(insn);
        }
        let mut program = Program::from_insns(self.base, &insns)?;
        for (name, slot_index) in &self.labels {
            program.insert_symbol(name.clone(), self.base + (*slot_index as u32) * 4);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn builds_loop() {
        let program = ProgramBuilder::new(0)
            .push(Insn::mov(Reg::R0, 3u32))
            .label("top")
            .push(Insn::sub(Reg::R0, Reg::R0, 1u32).flag_setting())
            .branch_to(Cond::Ne, false, "top")
            .push(Insn::halt())
            .build()
            .unwrap();
        assert_eq!(program.symbol("top"), Some(4));
        let branch = program.insn_at(8).unwrap();
        match branch.kind {
            InsnKind::Branch { offset, .. } => assert_eq!(offset, -2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_label() {
        let program = ProgramBuilder::new(0)
            .branch_to(Cond::Al, false, "end")
            .nops(3)
            .label("end")
            .push(Insn::halt())
            .build()
            .unwrap();
        let branch = program.insn_at(0).unwrap();
        match branch.kind {
            InsnKind::Branch { offset, .. } => assert_eq!(offset, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_error() {
        let result = ProgramBuilder::new(0)
            .branch_to(Cond::Al, false, "nowhere")
            .build();
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let _ = ProgramBuilder::new(0).label("x").label("x");
    }

    #[test]
    fn repeat_and_nops() {
        let program = ProgramBuilder::new(0)
            .repeat(Insn::mov(Reg::R0, Reg::R1), 5)
            .nops(2)
            .build()
            .unwrap();
        assert_eq!(program.words().len(), 7);
        assert_eq!(program.insn_at(24).unwrap(), Insn::nop());
    }

    #[test]
    fn flag_setting_helper() {
        assert!(Insn::add(Reg::R0, Reg::R0, 1u32)
            .flag_setting()
            .sets_flags());
        assert!(Insn::mul(Reg::R0, Reg::R1, Reg::R2)
            .flag_setting()
            .sets_flags());
        // Unchanged for non-DP kinds.
        assert!(!Insn::nop().flag_setting().sets_flags());
    }
}
