//! Error types for the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding, decoding, or assembling
/// instructions.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum IsaError {
    /// Register index above 15.
    InvalidRegister(u8),
    /// Text did not name a register.
    ParseRegister(String),
    /// Text did not name a condition code.
    ParseCond(String),
    /// Text did not name a shift operation.
    ParseShift(String),
    /// Immediate not expressible as a rotated 8-bit constant.
    ImmediateRange(u32),
    /// Memory offset outside `-1023..=1023`.
    OffsetRange(i32),
    /// Shift amount outside its encoding field.
    ShiftRange(u8),
    /// Branch offset outside the signed 23-bit instruction range.
    BranchRange(i32),
    /// Word does not decode to a valid instruction.
    DecodeWord(u32),
    /// Assembly-source error, with 1-based line number.
    Asm {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl IsaError {
    /// Shorthand for an assembler error at `line`.
    pub(crate) fn asm(line: usize, message: impl Into<String>) -> IsaError {
        IsaError::Asm {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(idx) => write!(f, "register index {idx} out of range"),
            IsaError::ParseRegister(s) => write!(f, "`{s}` is not a register"),
            IsaError::ParseCond(s) => write!(f, "`{s}` is not a condition code"),
            IsaError::ParseShift(s) => write!(f, "`{s}` is not a shift operation"),
            IsaError::ImmediateRange(v) => {
                write!(
                    f,
                    "immediate 0x{v:x} is not encodable as a rotated 8-bit constant"
                )
            }
            IsaError::OffsetRange(v) => write!(f, "memory offset {v} outside -1023..=1023"),
            IsaError::ShiftRange(v) => write!(f, "shift amount {v} outside encoding range"),
            IsaError::BranchRange(v) => write!(f, "branch offset {v} outside signed 23-bit range"),
            IsaError::DecodeWord(w) => write!(f, "word 0x{w:08x} is not a valid instruction"),
            IsaError::Asm { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msg = IsaError::InvalidRegister(99).to_string();
        assert!(msg.starts_with("register"));
        assert!(!msg.ends_with('.'));
        let msg = IsaError::asm(3, "unknown mnemonic `foo`").to_string();
        assert_eq!(msg, "line 3: unknown mnemonic `foo`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
