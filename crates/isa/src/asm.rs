//! Two-pass text assembler.
//!
//! The accepted syntax is a pragmatic subset of ARM UAL:
//!
//! ```text
//! ; comment        @ comment        // comment
//!         .org   0x0
//!         .equ   TABLE, 0x400
//! start:  trig   #1
//!         mov    r0, #0xff
//!         adds   r1, r2, r3          ; flag-setting
//!         add    r1, r2, r3, lsl #4  ; shifted operand
//!         lsl    r4, r5, #2          ; = mov r4, r5, lsl #2
//!         mul    r6, r7, r8
//!         ldrb   r0, [r1, #1]
//!         str    r0, [r1], #4        ; post-index
//!         adr    r2, table           ; address constant
//! loop:   subs   r0, r0, #1
//!         bne    loop
//!         trig   #0
//!         halt
//! table:  .word  0xdeadbeef, 42
//!         .byte  1, 2, 3, 4
//!         .space 16
//!         .align 4
//! ```
//!
//! Labels resolve across the whole file (forward references allowed);
//! `.equ` constants must be defined before use. `b`/`bl` accept a label or
//! an absolute expression. The assembled [`Program`] records a symbol table
//! and an address → source-line map used by the leakage audit tooling.

use std::collections::BTreeMap;

use crate::{
    encode, AddrMode, Cond, DpOp, IndexMode, Insn, InsnKind, IsaError, MemDir, MemMultiMode,
    MemOffset, MemSize, MulOp, Operand2, Program, Reg, RegSet, RotatedImm, ShiftAmount, ShiftKind,
};

/// Assembles a source string into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Asm`] with a 1-based line number for syntax errors,
/// undefined symbols, and range violations.
///
/// ```
/// let program = sca_isa::assemble("
///     mov r0, #1
///     halt
/// ")?;
/// assert_eq!(program.len_bytes(), 8);
/// # Ok::<(), sca_isa::IsaError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    Assembler::new().assemble(source)
}

/// Assembles a source string through a caller-supplied memo cell: the
/// first call assembles and caches the image, later calls clone the
/// cached [`Program`]. Embedded cipher sources are assembled once per
/// process this way, so campaign code can re-stage a program image
/// without re-running the assembler.
///
/// ```
/// use std::sync::OnceLock;
/// static CACHE: OnceLock<sca_isa::Program> = OnceLock::new();
/// let a = sca_isa::assemble_cached("mov r0, #1\nhalt\n", &CACHE)?;
/// let b = sca_isa::assemble_cached("ignored on later calls", &CACHE)?;
/// assert_eq!(a.words(), b.words());
/// # Ok::<(), sca_isa::IsaError>(())
/// ```
///
/// # Errors
///
/// Propagates [`assemble`] errors (nothing is cached on failure).
pub fn assemble_cached(
    source: &str,
    cache: &'static std::sync::OnceLock<Program>,
) -> Result<Program, IsaError> {
    if let Some(program) = cache.get() {
        return Ok(program.clone());
    }
    let program = assemble(source)?;
    Ok(cache.get_or_init(|| program).clone())
}

/// The assembler. Construct with [`Assembler::new`], optionally seed
/// constants with [`Assembler::define`], then call
/// [`Assembler::assemble`].
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    predefined: BTreeMap<String, i64>,
}

impl Assembler {
    /// Creates an assembler with no predefined symbols.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Predefines a constant visible to the source (like `-D` for a C
    /// compiler); useful for parameterizing benchmark kernels.
    pub fn define(mut self, name: impl Into<String>, value: i64) -> Assembler {
        self.predefined.insert(name.into(), value);
        self
    }

    /// Runs both assembler passes over `source`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Asm`] describing the first error encountered.
    pub fn assemble(&self, source: &str) -> Result<Program, IsaError> {
        let mut lines = Vec::new();
        for (idx, text) in source.lines().enumerate() {
            lines.push(parse_line(idx + 1, text)?);
        }

        // Pass 1: lay out addresses and collect labels.
        let mut symbols = self.predefined.clone();
        let mut origin: Option<u32> = None;
        let mut emitted_any = false;
        let mut cursor: u32 = 0;
        for line in &lines {
            for label in &line.labels {
                if symbols.contains_key(label) {
                    return Err(IsaError::asm(
                        line.number,
                        format!("duplicate symbol `{label}`"),
                    ));
                }
                symbols.insert(label.clone(), i64::from(cursor));
            }
            match &line.stmt {
                None => {}
                Some(Stmt::Org(expr)) => {
                    let addr = expr.eval(&symbols, line.number)? as u32;
                    if !emitted_any && origin.is_none() {
                        origin = Some(addr);
                    } else if addr < cursor {
                        return Err(IsaError::asm(line.number, ".org going backwards"));
                    }
                    cursor = addr;
                    // Re-bind labels on this line to the new origin.
                    for label in &line.labels {
                        symbols.insert(label.clone(), i64::from(cursor));
                    }
                }
                Some(Stmt::Equ(name, expr)) => {
                    let value = expr.eval(&symbols, line.number)?;
                    symbols.insert(name.clone(), value);
                }
                Some(stmt) => {
                    emitted_any = true;
                    cursor += stmt.size(cursor, line.number)?;
                }
            }
        }

        // Pass 2: emit.
        let base = origin.unwrap_or(0);
        let mut image: Vec<u8> = Vec::new();
        let mut program = Program::from_words(0, Vec::new());
        program.set_base(base);
        let mut line_of_addr: Vec<(u32, usize)> = Vec::new();
        let mut cursor = base;
        // .equ values may shadow labels; rebuild with labels fixed relative
        // to the base address.
        let mut symbols2 = self.predefined.clone();
        {
            let mut scan_cursor = base;
            for line in &lines {
                for label in &line.labels {
                    symbols2.insert(label.clone(), i64::from(scan_cursor));
                }
                match &line.stmt {
                    None => {}
                    Some(Stmt::Org(expr)) => {
                        scan_cursor = expr.eval(&symbols2, line.number)? as u32;
                        for label in &line.labels {
                            symbols2.insert(label.clone(), i64::from(scan_cursor));
                        }
                    }
                    Some(Stmt::Equ(name, expr)) => {
                        let value = expr.eval(&symbols2, line.number)?;
                        symbols2.insert(name.clone(), value);
                    }
                    Some(stmt) => scan_cursor += stmt.size(scan_cursor, line.number)?,
                }
            }
        }
        let symbols = symbols2;

        let emit = |image: &mut Vec<u8>, cursor: &mut u32, bytes: &[u8]| {
            let offset = (*cursor - base) as usize;
            if image.len() < offset {
                image.resize(offset, 0);
            }
            if image.len() == offset {
                image.extend_from_slice(bytes);
            } else {
                // .org may not overlap already-emitted content; pass 1
                // enforces forward movement, so this is zero padding only.
                for (i, b) in bytes.iter().enumerate() {
                    if offset + i < image.len() {
                        image[offset + i] = *b;
                    } else {
                        image.push(*b);
                    }
                }
            }
            *cursor += bytes.len() as u32;
        };

        for line in &lines {
            match &line.stmt {
                None | Some(Stmt::Equ(..)) => {}
                Some(Stmt::Org(expr)) => {
                    cursor = expr.eval(&symbols, line.number)? as u32;
                }
                Some(Stmt::Word(exprs)) => {
                    align_to(&mut image, &mut cursor, base, 4);
                    for expr in exprs {
                        let value = expr.eval(&symbols, line.number)? as u32;
                        emit(&mut image, &mut cursor, &value.to_le_bytes());
                    }
                }
                Some(Stmt::Byte(exprs)) => {
                    for expr in exprs {
                        let value = expr.eval(&symbols, line.number)?;
                        emit(&mut image, &mut cursor, &[(value & 0xff) as u8]);
                    }
                }
                Some(Stmt::Space(expr)) => {
                    let count = expr.eval(&symbols, line.number)?;
                    if count < 0 {
                        return Err(IsaError::asm(line.number, "negative .space"));
                    }
                    emit(&mut image, &mut cursor, &vec![0u8; count as usize]);
                }
                Some(Stmt::Align(expr)) => {
                    let align = expr.eval(&symbols, line.number)?;
                    if align <= 0 || (align & (align - 1)) != 0 {
                        return Err(IsaError::asm(line.number, ".align must be a power of two"));
                    }
                    align_to(&mut image, &mut cursor, base, align as u32);
                }
                Some(Stmt::Insn(pinsn)) => {
                    align_to(&mut image, &mut cursor, base, 4);
                    let insn = pinsn.resolve(cursor, &symbols, line.number)?;
                    let word =
                        encode(&insn).map_err(|e| IsaError::asm(line.number, e.to_string()))?;
                    line_of_addr.push((cursor, line.number));
                    emit(&mut image, &mut cursor, &word.to_le_bytes());
                }
            }
        }

        while !image.len().is_multiple_of(4) {
            image.push(0);
        }
        for chunk in image.chunks_exact(4) {
            program.push_word(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        for (name, value) in &symbols {
            if !self.predefined.contains_key(name) {
                program.insert_symbol(name.clone(), *value as u32);
            }
        }
        for (addr, number) in line_of_addr {
            program.insert_source_line(addr, number);
        }
        let entry = program
            .symbol("start")
            .or_else(|| program.symbol("_start"))
            .unwrap_or(base);
        program.set_entry(entry);
        Ok(program)
    }
}

fn align_to(image: &mut Vec<u8>, cursor: &mut u32, base: u32, align: u32) {
    while !cursor.is_multiple_of(align) {
        let offset = (*cursor - base) as usize;
        if image.len() <= offset {
            image.push(0);
        }
        *cursor += 1;
    }
}

// ---------------------------------------------------------------------------
// Line AST

#[derive(Debug)]
struct Line {
    number: usize,
    labels: Vec<String>,
    stmt: Option<Stmt>,
}

#[derive(Debug)]
enum Stmt {
    Insn(PInsn),
    Word(Vec<Expr>),
    Byte(Vec<Expr>),
    Space(Expr),
    Align(Expr),
    Org(Expr),
    Equ(String, Expr),
}

impl Stmt {
    /// Size in bytes when laid out at `cursor` (pass 1).
    fn size(&self, cursor: u32, line: usize) -> Result<u32, IsaError> {
        Ok(match self {
            Stmt::Insn(_) => {
                // Instructions also force word alignment.
                let pad = cursor.next_multiple_of(4) - cursor;
                pad + 4
            }
            Stmt::Word(exprs) => {
                let pad = cursor.next_multiple_of(4) - cursor;
                pad + 4 * exprs.len() as u32
            }
            Stmt::Byte(exprs) => exprs.len() as u32,
            Stmt::Space(expr) => {
                // Sizes must be known in pass 1: only constants allowed.
                let n = expr
                    .eval(&BTreeMap::new(), line)
                    .map_err(|_| IsaError::asm(line, ".space size must be a literal constant"))?;
                n as u32
            }
            Stmt::Align(expr) => {
                let align = expr
                    .eval(&BTreeMap::new(), line)
                    .map_err(|_| IsaError::asm(line, ".align must be a literal constant"))?
                    as u32;
                if align == 0 || !align.is_power_of_two() {
                    return Err(IsaError::asm(line, ".align must be a power of two"));
                }
                (align - cursor % align) % align
            }
            Stmt::Org(_) | Stmt::Equ(..) => 0,
        })
    }
}

/// Instruction, possibly with an unresolved target expression.
#[derive(Debug)]
enum PInsn {
    Ready(Insn),
    Branch {
        cond: Cond,
        link: bool,
        target: Expr,
    },
    Adr {
        cond: Cond,
        rd: Reg,
        target: Expr,
    },
    /// Data-processing with a symbolic immediate (e.g. `mov r0, #STATE`),
    /// resolved against the symbol table in pass 2.
    DpImm {
        cond: Cond,
        op: DpOp,
        set_flags: bool,
        rd: Option<Reg>,
        rn: Option<Reg>,
        imm: Expr,
    },
}

impl PInsn {
    fn resolve(
        &self,
        addr: u32,
        symbols: &BTreeMap<String, i64>,
        line: usize,
    ) -> Result<Insn, IsaError> {
        match self {
            PInsn::Ready(insn) => Ok(*insn),
            PInsn::Branch { cond, link, target } => {
                let target = target.eval(symbols, line)? as u32;
                let delta = target.wrapping_sub(addr.wrapping_add(4)) as i32;
                if delta % 4 != 0 {
                    return Err(IsaError::asm(line, "branch target not word aligned"));
                }
                Ok(Insn::new(InsnKind::Branch {
                    link: *link,
                    offset: delta / 4,
                })
                .with_cond(*cond))
            }
            PInsn::Adr { cond, rd, target } => {
                let value = target.eval(symbols, line)? as u32;
                if RotatedImm::encode(value).is_none() {
                    return Err(IsaError::asm(
                        line,
                        format!("adr target 0x{value:x} not encodable as an immediate"),
                    ));
                }
                Ok(Insn::mov(*rd, value).with_cond(*cond))
            }
            PInsn::DpImm {
                cond,
                op,
                set_flags,
                rd,
                rn,
                imm,
            } => {
                let value = imm.eval(symbols, line)? as u32;
                Ok(Insn::new(InsnKind::Dp {
                    op: *op,
                    set_flags: *set_flags,
                    rd: *rd,
                    rn: *rn,
                    op2: Operand2::Imm(value),
                })
                .with_cond(*cond))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expressions

#[derive(Clone, Debug)]
enum Term {
    Num(i64),
    Sym(String),
}

#[derive(Clone, Debug)]
struct Expr {
    /// `(sign, term)` pairs summed left to right.
    terms: Vec<(i64, Term)>,
}

impl Expr {
    fn eval(&self, symbols: &BTreeMap<String, i64>, line: usize) -> Result<i64, IsaError> {
        let mut total = 0i64;
        for (sign, term) in &self.terms {
            let value = match term {
                Term::Num(n) => *n,
                Term::Sym(name) => *symbols
                    .get(name)
                    .ok_or_else(|| IsaError::asm(line, format!("undefined symbol `{name}`")))?,
            };
            total += sign * value;
        }
        Ok(total)
    }
}

// ---------------------------------------------------------------------------
// Lexer

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Directive(String),
    Num(i64),
    Comma,
    Colon,
    Hash,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Bang,
    Plus,
    Minus,
    Eq,
}

fn lex(line_no: usize, text: &str) -> Result<Vec<Tok>, IsaError> {
    let mut toks = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '@' => break,
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '#' => {
                toks.push(Tok::Hash);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '!' => {
                toks.push(Tok::Bang);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '.' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(IsaError::asm(line_no, "stray `.`"));
                }
                toks.push(Tok::Directive(text[start..end].to_ascii_lowercase()));
                i = end;
            }
            '0'..='9' => {
                let start = i;
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let raw = text[start..end].replace('_', "");
                let value = if let Some(hex) = raw.strip_prefix("0x").or(raw.strip_prefix("0X")) {
                    i64::from_str_radix(hex, 16)
                } else if let Some(bin) = raw.strip_prefix("0b").or(raw.strip_prefix("0B")) {
                    i64::from_str_radix(bin, 2)
                } else {
                    raw.parse()
                }
                .map_err(|_| IsaError::asm(line_no, format!("bad number `{raw}`")))?;
                toks.push(Tok::Num(value));
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                toks.push(Tok::Ident(text[start..end].to_owned()));
                i = end;
            }
            other => {
                return Err(IsaError::asm(
                    line_no,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let tok = self.toks.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), IsaError> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> IsaError {
        IsaError::asm(self.line, message)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn ident(&mut self) -> Result<String, IsaError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        let name = self.ident()?;
        name.parse().map_err(|e: IsaError| self.err(e.to_string()))
    }

    fn expr(&mut self) -> Result<Expr, IsaError> {
        let mut terms = Vec::new();
        let mut sign = 1i64;
        if self.eat(&Tok::Minus) {
            sign = -1;
        } else {
            self.eat(&Tok::Plus);
        }
        loop {
            match self.next() {
                Some(Tok::Num(n)) => terms.push((sign, Term::Num(n))),
                Some(Tok::Ident(s)) => terms.push((sign, Term::Sym(s))),
                other => return Err(self.err(format!("expected expression term, found {other:?}"))),
            }
            if self.eat(&Tok::Plus) {
                sign = 1;
            } else if self.eat(&Tok::Minus) {
                sign = -1;
            } else {
                break;
            }
        }
        Ok(Expr { terms })
    }

    /// `#expr`
    fn imm(&mut self) -> Result<Expr, IsaError> {
        self.expect(&Tok::Hash)?;
        self.expr()
    }
}

fn parse_line(number: usize, text: &str) -> Result<Line, IsaError> {
    let toks = lex(number, text)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        line: number,
    };
    let mut labels = Vec::new();

    // Leading `ident :` pairs are labels.
    while let (Some(Tok::Ident(name)), Some(Tok::Colon)) =
        (parser.toks.get(parser.pos), parser.toks.get(parser.pos + 1))
    {
        labels.push(name.clone());
        parser.pos += 2;
    }

    if parser.at_end() {
        return Ok(Line {
            number,
            labels,
            stmt: None,
        });
    }

    let stmt = match parser.next().expect("not at end") {
        Tok::Directive(name) => parse_directive(&mut parser, &name)?,
        Tok::Ident(mnemonic) => Stmt::Insn(parse_insn(&mut parser, &mnemonic)?),
        other => return Err(parser.err(format!("unexpected token {other:?}"))),
    };
    if !parser.at_end() {
        return Err(parser.err("trailing tokens after statement"));
    }
    Ok(Line {
        number,
        labels,
        stmt: Some(stmt),
    })
}

fn parse_directive(parser: &mut Parser, name: &str) -> Result<Stmt, IsaError> {
    match name {
        "word" => {
            let mut exprs = vec![parser.expr()?];
            while parser.eat(&Tok::Comma) {
                exprs.push(parser.expr()?);
            }
            Ok(Stmt::Word(exprs))
        }
        "byte" => {
            let mut exprs = vec![parser.expr()?];
            while parser.eat(&Tok::Comma) {
                exprs.push(parser.expr()?);
            }
            Ok(Stmt::Byte(exprs))
        }
        "space" | "skip" => Ok(Stmt::Space(parser.expr()?)),
        "align" => Ok(Stmt::Align(parser.expr()?)),
        "org" => Ok(Stmt::Org(parser.expr()?)),
        "equ" | "set" => {
            let name = parser.ident()?;
            parser.expect(&Tok::Comma)?;
            let expr = parser.expr()?;
            Ok(Stmt::Equ(name, expr))
        }
        other => Err(parser.err(format!("unknown directive `.{other}`"))),
    }
}

/// Splits `mnemonic` = base ++ cond? ++ "s"? against the known base table,
/// preferring the longest base (so `bls` parses as `b.ls`, `bleq` as
/// `bl.eq`, `adds` as `add.s`).
fn split_mnemonic(raw: &str) -> Option<(&'static str, Cond, bool)> {
    const BASES: [&str; 45] = [
        "strb", "strh", "ldrb", "ldrh", "trig", "halt", "and", "eor", "sub", "rsb", "add", "adc",
        "sbc", "bic", "cmp", "cmn", "tst", "teq", "mov", "mvn", "orr", "lsl", "lsr", "asr", "ror",
        "mul", "mla", "ldr", "str", "nop", "adr", "bl", "bx", "b", "rrx", "ldmia", "ldmdb",
        "ldmfd", "stmia", "stmdb", "stmfd", "push", "pop", "umull", "smull",
    ];
    let lower = raw.to_ascii_lowercase();
    let mut candidates: Vec<&'static str> = BASES
        .iter()
        .copied()
        .filter(|b| lower.starts_with(b))
        .collect();
    candidates.sort_by_key(|b| std::cmp::Reverse(b.len()));
    for base in candidates {
        let rest = &lower[base.len()..];
        let allows_s = matches!(
            base,
            "and"
                | "eor"
                | "sub"
                | "rsb"
                | "add"
                | "adc"
                | "sbc"
                | "bic"
                | "mov"
                | "mvn"
                | "orr"
                | "lsl"
                | "lsr"
                | "asr"
                | "ror"
                | "mul"
                | "mla"
        );
        let (rest, set_flags) = match rest.strip_suffix('s') {
            // Guard: `cs`/`ls`/`vs` are conditions ending in s.
            Some(head) if allows_s && head.len() != 1 => (head, true),
            _ => (rest, false),
        };
        if rest.is_empty() {
            return Some((base, Cond::Al, set_flags));
        }
        if let Ok(cond) = rest.parse::<Cond>() {
            return Some((base, cond, set_flags));
        }
    }
    None
}

fn parse_insn(parser: &mut Parser, mnemonic: &str) -> Result<PInsn, IsaError> {
    let (base, cond, set_flags) = split_mnemonic(mnemonic)
        .ok_or_else(|| parser.err(format!("unknown mnemonic `{mnemonic}`")))?;

    let finish_dp =
        |op: DpOp, set_flags: bool, rd: Option<Reg>, rn: Option<Reg>, op2: Op2Parse| -> PInsn {
            match op2 {
                Op2Parse::Ready(op2) => PInsn::Ready(
                    Insn::new(InsnKind::Dp {
                        op,
                        set_flags,
                        rd,
                        rn,
                        op2,
                    })
                    .with_cond(cond),
                ),
                Op2Parse::ImmExpr(imm) => PInsn::DpImm {
                    cond,
                    op,
                    set_flags,
                    rd,
                    rn,
                    imm,
                },
            }
        };
    let dp3 = |op: DpOp, parser: &mut Parser| -> Result<PInsn, IsaError> {
        let rd = parser.reg()?;
        parser.expect(&Tok::Comma)?;
        let rn = parser.reg()?;
        parser.expect(&Tok::Comma)?;
        let op2 = parse_operand2(parser)?;
        Ok(finish_dp(op, set_flags, Some(rd), Some(rn), op2))
    };

    match base {
        "mov" | "mvn" => {
            let op = if base == "mov" { DpOp::Mov } else { DpOp::Mvn };
            let rd = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let op2 = parse_operand2(parser)?;
            Ok(finish_dp(op, set_flags, Some(rd), None, op2))
        }
        "and" => dp3(DpOp::And, parser),
        "eor" => dp3(DpOp::Eor, parser),
        "sub" => dp3(DpOp::Sub, parser),
        "rsb" => dp3(DpOp::Rsb, parser),
        "add" => dp3(DpOp::Add, parser),
        "adc" => dp3(DpOp::Adc, parser),
        "sbc" => dp3(DpOp::Sbc, parser),
        "bic" => dp3(DpOp::Bic, parser),
        "orr" => dp3(DpOp::Orr, parser),
        "cmp" | "cmn" | "tst" | "teq" => {
            let op = match base {
                "cmp" => DpOp::Cmp,
                "cmn" => DpOp::Cmn,
                "tst" => DpOp::Tst,
                _ => DpOp::Teq,
            };
            let rn = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let op2 = parse_operand2(parser)?;
            Ok(finish_dp(op, true, None, Some(rn), op2))
        }
        "lsl" | "lsr" | "asr" | "ror" => {
            let kind: ShiftKind = base.parse().expect("shift mnemonic");
            let rd = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rm = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let amount = if parser.eat(&Tok::Hash) {
                let expr = parser.expr()?;
                let value = expr
                    .eval(&BTreeMap::new(), parser.line)
                    .map_err(|_| parser.err("shift amount must be a literal constant"))?;
                if !(0..=31).contains(&value) {
                    return Err(parser.err("shift amount outside 0..=31"));
                }
                ShiftAmount::Imm(value as u8)
            } else {
                ShiftAmount::Reg(parser.reg()?)
            };
            Ok(PInsn::Ready(
                Insn::new(InsnKind::Dp {
                    op: DpOp::Mov,
                    set_flags,
                    rd: Some(rd),
                    rn: None,
                    op2: Operand2::ShiftedReg { rm, kind, amount },
                })
                .with_cond(cond),
            ))
        }
        "mul" | "mla" => {
            let rd = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rm = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rs = parser.reg()?;
            let (op, ra) = if base == "mla" {
                parser.expect(&Tok::Comma)?;
                (MulOp::Mla, Some(parser.reg()?))
            } else {
                (MulOp::Mul, None)
            };
            Ok(PInsn::Ready(
                Insn::new(InsnKind::Mul {
                    op,
                    set_flags,
                    rd,
                    rm,
                    rs,
                    ra,
                })
                .with_cond(cond),
            ))
        }
        "ldr" | "ldrb" | "ldrh" | "str" | "strb" | "strh" => {
            let dir = if base.starts_with("ldr") {
                MemDir::Load
            } else {
                MemDir::Store
            };
            let size = match base.as_bytes().last() {
                Some(b'b') => MemSize::Byte,
                Some(b'h') => MemSize::Half,
                _ => MemSize::Word,
            };
            let rd = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let addr = parse_addr_mode(parser)?;
            Ok(PInsn::Ready(
                Insn::new(InsnKind::Mem {
                    dir,
                    size,
                    rd,
                    addr,
                })
                .with_cond(cond),
            ))
        }
        "b" | "bl" => {
            let target = parser.expr()?;
            Ok(PInsn::Branch {
                cond,
                link: base == "bl",
                target,
            })
        }
        "bx" => Ok(PInsn::Ready(Insn::bx(parser.reg()?).with_cond(cond))),
        "adr" => {
            let rd = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let target = parser.expr()?;
            Ok(PInsn::Adr { cond, rd, target })
        }
        "ldmia" | "ldmdb" | "ldmfd" | "stmia" | "stmdb" | "stmfd" => {
            // fd ("full descending") aliases: ldmfd = ldmia, stmfd = stmdb.
            let dir = if base.starts_with("ldm") {
                MemDir::Load
            } else {
                MemDir::Store
            };
            let mode = match &base[3..] {
                "ia" => MemMultiMode::Ia,
                "db" => MemMultiMode::Db,
                _ if dir == MemDir::Load => MemMultiMode::Ia,
                _ => MemMultiMode::Db,
            };
            let base_reg = parser.reg()?;
            let writeback = parser.eat(&Tok::Bang);
            parser.expect(&Tok::Comma)?;
            let regs = parse_reg_list(parser)?;
            Ok(PInsn::Ready(
                Insn::new(InsnKind::MemMulti {
                    dir,
                    base: base_reg,
                    writeback,
                    regs,
                    mode,
                })
                .with_cond(cond),
            ))
        }
        "push" | "pop" => {
            let regs = parse_reg_list(parser)?;
            let insn = if base == "push" {
                Insn::push(regs)
            } else {
                Insn::pop(regs)
            };
            Ok(PInsn::Ready(insn.with_cond(cond)))
        }
        "umull" | "smull" => {
            let rd_lo = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rd_hi = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rm = parser.reg()?;
            parser.expect(&Tok::Comma)?;
            let rs = parser.reg()?;
            let insn = if base == "umull" {
                Insn::umull(rd_lo, rd_hi, rm, rs)
            } else {
                Insn::smull(rd_lo, rd_hi, rm, rs)
            };
            Ok(PInsn::Ready(insn.with_cond(cond)))
        }
        "nop" => Ok(PInsn::Ready(Insn::nop().with_cond(cond))),
        "trig" => {
            let expr = parser.imm()?;
            let value = expr
                .eval(&BTreeMap::new(), parser.line)
                .map_err(|_| parser.err("trig level must be a literal 0 or 1"))?;
            Ok(PInsn::Ready(Insn::trig(value != 0).with_cond(cond)))
        }
        "halt" => Ok(PInsn::Ready(Insn::halt().with_cond(cond))),
        other => Err(parser.err(format!("unhandled mnemonic `{other}`"))),
    }
}

/// A parsed flexible operand: either fully resolved, or an immediate
/// expression carrying symbols for pass-2 resolution.
enum Op2Parse {
    Ready(Operand2),
    ImmExpr(Expr),
}

fn parse_operand2(parser: &mut Parser) -> Result<Op2Parse, IsaError> {
    if parser.peek() == Some(&Tok::Hash) {
        let expr = parser.imm()?;
        return match expr.eval(&BTreeMap::new(), parser.line) {
            Ok(value) => Ok(Op2Parse::Ready(Operand2::Imm(value as u32))),
            Err(_) => Ok(Op2Parse::ImmExpr(expr)),
        };
    }
    let rm = parser.reg()?;
    if !parser.eat(&Tok::Comma) {
        return Ok(Op2Parse::Ready(Operand2::Reg(rm)));
    }
    let kind: ShiftKind = parser
        .ident()?
        .parse()
        .map_err(|e: IsaError| parser.err(e.to_string()))?;
    let amount = if parser.eat(&Tok::Hash) {
        let expr = parser.expr()?;
        let value = expr
            .eval(&BTreeMap::new(), parser.line)
            .map_err(|_| parser.err("shift amount must be a literal constant"))?;
        if !(0..=31).contains(&value) {
            return Err(parser.err("shift amount outside 0..=31"));
        }
        ShiftAmount::Imm(value as u8)
    } else {
        ShiftAmount::Reg(parser.reg()?)
    };
    Ok(Op2Parse::Ready(Operand2::ShiftedReg { rm, kind, amount }))
}

fn parse_addr_mode(parser: &mut Parser) -> Result<AddrMode, IsaError> {
    parser.expect(&Tok::LBracket)?;
    let base = parser.reg()?;
    if parser.eat(&Tok::RBracket) {
        // `[rn]`, `[rn], #off`, `[rn], rm` (post-index)
        if parser.eat(&Tok::Comma) {
            let offset = parse_mem_offset(parser)?;
            return Ok(AddrMode {
                base,
                offset,
                index: IndexMode::PostIndex,
            });
        }
        return Ok(AddrMode::base(base));
    }
    parser.expect(&Tok::Comma)?;
    let offset = parse_mem_offset(parser)?;
    parser.expect(&Tok::RBracket)?;
    let index = if parser.eat(&Tok::Bang) {
        IndexMode::PreWriteback
    } else {
        IndexMode::Offset
    };
    Ok(AddrMode {
        base,
        offset,
        index,
    })
}

fn parse_mem_offset(parser: &mut Parser) -> Result<MemOffset, IsaError> {
    if parser.peek() == Some(&Tok::Hash) {
        let expr = parser.imm()?;
        let value = expr
            .eval(&BTreeMap::new(), parser.line)
            .map_err(|_| parser.err("memory offsets must be literal constants"))?;
        if !(-1023..=1023).contains(&value) {
            return Err(parser.err(format!("memory offset {value} outside -1023..=1023")));
        }
        return Ok(MemOffset::Imm(value as i32));
    }
    let sub = parser.eat(&Tok::Minus);
    let rm = parser.reg()?;
    if parser.eat(&Tok::Comma) {
        let kind: ShiftKind = parser
            .ident()?
            .parse()
            .map_err(|e: IsaError| parser.err(e.to_string()))?;
        let expr = parser.imm()?;
        let amount = expr
            .eval(&BTreeMap::new(), parser.line)
            .map_err(|_| parser.err("shift amount must be a literal constant"))?;
        if !(0..=15).contains(&amount) {
            return Err(parser.err("memory offset shift outside 0..=15"));
        }
        Ok(MemOffset::Reg {
            rm,
            kind,
            amount: amount as u8,
            sub,
        })
    } else {
        Ok(MemOffset::Reg {
            rm,
            kind: ShiftKind::Lsl,
            amount: 0,
            sub,
        })
    }
}

/// Parses `{r0, r2-r4, lr}`.
fn parse_reg_list(parser: &mut Parser) -> Result<RegSet, IsaError> {
    parser.expect(&Tok::LBrace)?;
    let mut regs = RegSet::new();
    loop {
        let first = parser.reg()?;
        if parser.eat(&Tok::Minus) {
            let last = parser.reg()?;
            if last.index() < first.index() {
                return Err(parser.err(format!("descending register range {first}-{last}")));
            }
            for i in first.index()..=last.index() {
                regs.insert(Reg::from_index(i as u8).expect("index < 16"));
            }
        } else {
            regs.insert(first);
        }
        if !parser.eat(&Tok::Comma) {
            break;
        }
    }
    parser.expect(&Tok::RBrace)?;
    if regs.is_empty() {
        return Err(parser.err("empty register list"));
    }
    Ok(regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, InsnClass};

    #[test]
    fn assembles_minimal_program() {
        let program = assemble("mov r0, #1\nhalt\n").unwrap();
        assert_eq!(program.len_bytes(), 8);
        assert_eq!(program.insn_at(0).unwrap(), Insn::mov(Reg::R0, 1u32));
        assert_eq!(program.insn_at(4).unwrap(), Insn::halt());
    }

    #[test]
    fn labels_and_branches() {
        let src = "
start:  mov r0, #4
loop:   subs r0, r0, #1
        bne loop
        halt
";
        let program = assemble(src).unwrap();
        assert_eq!(program.symbol("start"), Some(0));
        assert_eq!(program.symbol("loop"), Some(4));
        assert_eq!(program.entry(), 0);
        let branch = program.insn_at(8).unwrap();
        match branch.kind {
            InsnKind::Branch {
                link: false,
                offset,
            } => {
                // From 8, next insn is 12, target 4 → offset -2.
                assert_eq!(offset, -2);
            }
            other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(branch.cond, Cond::Ne);
    }

    #[test]
    fn forward_branch_reference() {
        let src = "
        b done
        nop
        nop
done:   halt
";
        let program = assemble(src).unwrap();
        let branch = program.insn_at(0).unwrap();
        match branch.kind {
            InsnKind::Branch { offset, .. } => assert_eq!(offset, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn mnemonic_suffix_disambiguation() {
        // `bls` is b.ls, not bl.s.
        let program = assemble("target: bls target\n").unwrap();
        let insn = program.insn_at(0).unwrap();
        assert_eq!(insn.cond, Cond::Ls);
        assert!(matches!(insn.kind, InsnKind::Branch { link: false, .. }));
        // `bleq` is bl.eq.
        let program = assemble("target: bleq target\n").unwrap();
        let insn = program.insn_at(0).unwrap();
        assert_eq!(insn.cond, Cond::Eq);
        assert!(matches!(insn.kind, InsnKind::Branch { link: true, .. }));
        // `blt` is b.lt.
        let program = assemble("target: blt target\n").unwrap();
        assert_eq!(program.insn_at(0).unwrap().cond, Cond::Lt);
        // `movs` sets flags.
        let program = assemble("movs r0, r1\n").unwrap();
        assert!(program.insn_at(0).unwrap().sets_flags());
        // `subscs`? no — `subcs` + flags is `subscs`... we support `subss`? Not
        // a real form; but `subcs` must parse as sub.cs without flags.
        let program = assemble("subcs r0, r0, #1\n").unwrap();
        let insn = program.insn_at(0).unwrap();
        assert_eq!(insn.cond, Cond::Cs);
        assert!(!insn.sets_flags());
    }

    #[test]
    fn shifted_operands_and_aliases() {
        let program = assemble("add r0, r1, r2, lsl #4\nlsl r3, r4, #2\nror r5, r6, r7\n").unwrap();
        assert_eq!(program.insn_at(0).unwrap().class(), InsnClass::Shift);
        assert_eq!(
            program.insn_at(4).unwrap(),
            Insn::shift_imm(ShiftKind::Lsl, Reg::R3, Reg::R4, 2)
        );
        let by_reg = program.insn_at(8).unwrap();
        match by_reg.kind {
            InsnKind::Dp {
                op2:
                    Operand2::ShiftedReg {
                        amount: ShiftAmount::Reg(rs),
                        ..
                    },
                ..
            } => {
                assert_eq!(rs, Reg::R7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_addressing_forms() {
        let src = "
        ldr  r0, [r1]
        ldr  r0, [r1, #8]
        ldr  r0, [r1, #-8]
        ldrb r0, [r1, r2]
        ldrh r0, [r1, -r2]
        str  r0, [r1, r2, lsl #2]
        str  r0, [r1, #4]!
        str  r0, [r1], #4
";
        let program = assemble(src).unwrap();
        assert_eq!(
            program.insn_at(0).unwrap(),
            Insn::ldr(Reg::R0, AddrMode::base(Reg::R1))
        );
        assert_eq!(
            program.insn_at(4).unwrap(),
            Insn::ldr(Reg::R0, AddrMode::imm_offset(Reg::R1, 8).unwrap())
        );
        assert_eq!(
            program.insn_at(8).unwrap(),
            Insn::ldr(Reg::R0, AddrMode::imm_offset(Reg::R1, -8).unwrap())
        );
        let neg_reg = program.insn_at(16).unwrap();
        match neg_reg.kind {
            InsnKind::Mem {
                addr:
                    AddrMode {
                        offset: MemOffset::Reg { sub, .. },
                        ..
                    },
                ..
            } => {
                assert!(sub);
            }
            other => panic!("unexpected {other:?}"),
        }
        let pre = program.insn_at(24).unwrap();
        match pre.kind {
            InsnKind::Mem { addr, .. } => assert_eq!(addr.index, IndexMode::PreWriteback),
            other => panic!("unexpected {other:?}"),
        }
        let post = program.insn_at(28).unwrap();
        match post.kind {
            InsnKind::Mem { addr, .. } => assert_eq!(addr.index, IndexMode::PostIndex),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_directives() {
        let src = "
        .org 0x100
data:   .word 0xdeadbeef, 1
bytes:  .byte 1, 2, 3
        .align 4
after:  .word bytes
        .space 8
end:    halt
";
        let program = assemble(src).unwrap();
        assert_eq!(program.base(), 0x100);
        assert_eq!(program.word_at(0x100), Some(0xdead_beef));
        assert_eq!(program.word_at(0x104), Some(1));
        assert_eq!(program.symbol("bytes"), Some(0x108));
        // 3 bytes then align 4 → `after` at 0x10c.
        assert_eq!(program.symbol("after"), Some(0x10c));
        assert_eq!(program.word_at(0x10c), Some(0x108));
        assert_eq!(program.symbol("end"), Some(0x118));
        assert_eq!(
            program.word_at(0x108).map(|w| w & 0xff_ffff),
            Some(0x030201)
        );
    }

    #[test]
    fn equ_and_predefined_constants() {
        let src = "
        .equ SIZE, 12
        mov r0, #SIZE
        add r1, r0, #SIZE + 4
";
        // Immediates may reference .equ constants and label symbols.
        let program = assemble(src).unwrap();
        assert_eq!(program.insn_at(0).unwrap(), Insn::mov(Reg::R0, 12u32));
        assert_eq!(
            program.insn_at(4).unwrap(),
            Insn::add(Reg::R1, Reg::R0, 16u32)
        );
        // .word can use them too.
        let program = assemble(".equ SIZE, 12\n.word SIZE + 4\n").unwrap();
        assert_eq!(program.word_at(0), Some(16));
        // Predefined constants work the same way.
        let program = Assembler::new()
            .define("N", 3)
            .assemble(".word N\n")
            .unwrap();
        assert_eq!(program.word_at(0), Some(3));
    }

    #[test]
    fn adr_pseudo() {
        let src = "
        .org 0x100
        adr r0, table
        halt
        .org 0x200
table:  .word 0
";
        let program = assemble(src).unwrap();
        assert_eq!(
            program.insn_at(0x100).unwrap(),
            Insn::mov(Reg::R0, 0x200u32)
        );
    }

    #[test]
    fn error_reporting_includes_line() {
        let err = assemble("nop\nfrob r0\n").unwrap_err();
        match err {
            IsaError::Asm { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(assemble("mov r0, #0x12345\n").is_err());
        assert!(assemble("b missing\n").is_err());
        assert!(assemble("dup: nop\ndup: nop\n").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "
; full line comment
        nop       ; trailing
        nop       @ also trailing
        nop       // c++ style
";
        let program = assemble(src).unwrap();
        assert_eq!(program.len_bytes(), 12);
    }

    #[test]
    fn multi_register_transfers() {
        let src = "
        push  {r0, r4-r6, lr}
        pop   {r0, r4-r6, pc}
        ldmia r1!, {r2, r3}
        stmdb r1, {r2, r3}
        umull r0, r1, r2, r3
        smullne r4, r5, r6, r7
";
        let program = assemble(src).unwrap();
        let expected: RegSet = [Reg::R0, Reg::R4, Reg::R5, Reg::R6, Reg::LR]
            .into_iter()
            .collect();
        assert_eq!(program.insn_at(0).unwrap(), Insn::push(expected));
        let pop = program.insn_at(4).unwrap();
        match pop.kind {
            InsnKind::MemMulti {
                dir: MemDir::Load,
                base,
                writeback,
                regs,
                ..
            } => {
                assert_eq!(base, Reg::SP);
                assert!(writeback);
                assert!(regs.contains(Reg::PC));
            }
            other => panic!("unexpected {other:?}"),
        }
        let ldm = program.insn_at(8).unwrap();
        match ldm.kind {
            InsnKind::MemMulti {
                writeback, mode, ..
            } => {
                assert!(writeback);
                assert_eq!(mode, MemMultiMode::Ia);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            program.insn_at(16).unwrap(),
            Insn::umull(Reg::R0, Reg::R1, Reg::R2, Reg::R3)
        );
        assert_eq!(program.insn_at(20).unwrap().cond, Cond::Ne);
    }

    #[test]
    fn reg_list_errors() {
        assert!(assemble("push {}\n").is_err());
        assert!(assemble("push {r4-r1}\n").is_err());
        assert!(assemble("push r0\n").is_err());
    }

    #[test]
    fn conditional_memory_and_halt() {
        let program = assemble("ldrbeq r0, [r1]\nhalteq\n").unwrap();
        let insn = program.insn_at(0).unwrap();
        assert_eq!(insn.cond, Cond::Eq);
        match insn.kind {
            InsnKind::Mem { size, .. } => assert_eq!(size, MemSize::Byte),
            other => panic!("unexpected {other:?}"),
        }
    }
}
