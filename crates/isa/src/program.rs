//! Assembled program images.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{decode, Insn, IsaError};

/// An assembled program: a contiguous little-endian image plus symbol and
/// source-line metadata.
///
/// The image is word-granular; data emitted by `.word`/`.byte`/`.space`
/// directives shares the address space with code, as on the real machine
/// (the AES S-box lives in the same image as the code that indexes it).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Load address of the first word.
    base: u32,
    /// Image contents, one 32-bit little-endian word per entry.
    words: Vec<u32>,
    /// Label → address.
    symbols: BTreeMap<String, u32>,
    /// Address → 1-based source line (for diagnostics and audits).
    source_lines: BTreeMap<u32, usize>,
    /// Execution entry point.
    entry: u32,
}

impl Program {
    /// Creates a program from raw words at a base address; the entry point
    /// defaults to `base`.
    pub fn from_words(base: u32, words: Vec<u32>) -> Program {
        Program {
            base,
            words,
            entry: base,
            ..Program::default()
        }
    }

    /// Creates a program from a sequence of instructions at `base`.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures (e.g. un-encodable immediates).
    pub fn from_insns(base: u32, insns: &[Insn]) -> Result<Program, IsaError> {
        let words = insns
            .iter()
            .map(crate::encode)
            .collect::<Result<Vec<u32>, _>>()?;
        Ok(Program::from_words(base, words))
    }

    /// Load address of the first word.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Execution entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the execution entry point.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// Image length in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The raw image words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Word at an absolute (word-aligned) address, if inside the image.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        self.words.get(((addr - self.base) / 4) as usize).copied()
    }

    /// Decoded instruction at an absolute address.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DecodeWord`] when the address is outside the
    /// image or holds data rather than a valid instruction.
    pub fn insn_at(&self, addr: u32) -> Result<Insn, IsaError> {
        let word = self.word_at(addr).ok_or(IsaError::DecodeWord(addr))?;
        decode(word)
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Source line (1-based) that produced the word at `addr`, if known.
    pub fn source_line(&self, addr: u32) -> Option<usize> {
        self.source_lines.get(&addr).copied()
    }

    /// Records (or moves) a symbol. Program rewriters — e.g. the
    /// countermeasure scheduler in `sca-sched` — use this to carry the
    /// symbol table across a relocation.
    pub fn insert_symbol(&mut self, name: String, addr: u32) {
        self.symbols.insert(name, addr);
    }

    /// Records the source line for the word at `addr` (see
    /// [`Program::source_line`]); rewriters use this to keep audit
    /// findings attributable after relocation.
    pub fn insert_source_line(&mut self, addr: u32, line: usize) {
        self.source_lines.insert(addr, line);
    }

    pub(crate) fn set_base(&mut self, base: u32) {
        self.base = base;
    }

    pub(crate) fn push_word(&mut self, word: u32) {
        self.words.push(word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn from_insns_and_lookup() {
        let program = Program::from_insns(
            0x100,
            &[
                Insn::mov(Reg::R0, 1u32),
                Insn::add(Reg::R1, Reg::R0, Reg::R0),
                Insn::halt(),
            ],
        )
        .unwrap();
        assert_eq!(program.base(), 0x100);
        assert_eq!(program.entry(), 0x100);
        assert_eq!(program.len_bytes(), 12);
        assert_eq!(program.insn_at(0x100).unwrap(), Insn::mov(Reg::R0, 1u32));
        assert_eq!(program.insn_at(0x108).unwrap(), Insn::halt());
        assert!(program.word_at(0x10c).is_none());
        assert!(program.word_at(0xfc).is_none());
        assert!(program.word_at(0x101).is_none());
    }

    #[test]
    fn symbols_and_source_lines() {
        let mut program = Program::from_words(0, vec![0, 0]);
        program.insert_symbol("loop".to_owned(), 4);
        program.insert_source_line(4, 7);
        assert_eq!(program.symbol("loop"), Some(4));
        assert_eq!(program.symbol("missing"), None);
        assert_eq!(program.source_line(4), Some(7));
        assert_eq!(program.source_line(0), None);
    }
}
