//! # sca-isa — the instruction-set substrate
//!
//! An A32-inspired 32-bit ISA used by the `superscalar-sca` project, a
//! reproduction of *"Side-channel security of superscalar CPUs: Evaluating
//! the Impact of Micro-architectural Features"* (Barenghi & Pelosi,
//! DAC 2018). The paper's case study is the ARM Cortex-A7; this crate
//! models the instruction classes that drive its dual-issue policy
//! (Table 1 of the paper) and its per-component leakage (Table 2):
//! moves, arithmetic/logic with register or immediate operands, barrel
//! shifts, multiplies, word and sub-word loads/stores, and branches —
//! plus the `nop` that the A7 implements as a *never-executed conditional
//! instruction with zero operands*, which is why it is semantically
//! neutral but not side-channel neutral.
//!
//! The crate provides:
//!
//! * instruction data types ([`Insn`], [`Operand2`], [`AddrMode`], …) with
//!   data-flow queries (read/write sets, read-port demand, classes);
//! * a fixed 32-bit binary [`encode`]/[`decode`] pair that round-trips;
//! * a two-pass text [`assemble`]r and a programmatic [`ProgramBuilder`];
//! * pure architectural semantics ([`eval_dp`], [`eval_mul`],
//!   [`apply_shift`]) shared with the pipeline simulator.
//!
//! ```
//! use sca_isa::{assemble, Insn, Reg};
//!
//! let program = assemble("
//!     start:  mov  r0, #0xff
//!             add  r1, r0, r0, lsl #4
//!             halt
//! ")?;
//! assert_eq!(program.entry(), 0);
//! assert_eq!(program.insn_at(0)?, Insn::mov(Reg::R0, 0xffu32));
//! # Ok::<(), sca_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod builder;
mod cond;
mod encode;
mod error;
mod insn;
mod interp;
mod operand;
mod program;
mod reg;
mod semantics;
mod shift;

pub use asm::{assemble, assemble_cached, Assembler};
pub use builder::{InsnExt, ProgramBuilder};
pub use cond::{Cond, Flags};
pub use encode::{decode, encode};
pub use error::IsaError;
pub use insn::{DpOp, Insn, InsnClass, InsnKind, MemDir, MemMultiMode, MemSize, MulOp};
pub use interp::{Interp, InterpError};
pub use operand::{AddrMode, IndexMode, MemOffset, Operand2, RotatedImm, ShiftAmount};
pub use program::Program;
pub use reg::{Reg, RegSet};
pub use semantics::{eval_dp, eval_mul, DpOutcome};
pub use shift::{apply_shift, ShiftKind, ShiftOut};
