//! Barrel-shifter operations.
//!
//! One of the two ALUs in the modeled core owns the single barrel shifter
//! (Section 3.2 of the paper deduces this from `shift` instructions never
//! dual-issuing with computational instructions). The shifter's output
//! buffer is a leakage source of its own (Table 2, "Shift Buffer"), so the
//! shift result is computed here as a standalone, observable value.
//!
//! Semantics follow A32 with one documented simplification: immediate
//! shift amounts are literal (`0..=31`); the A32 special encodings
//! (`lsr #0` ≡ `lsr #32`, `ror #0` ≡ `rrx`) are not used. Register-specified
//! amounts use the low 8 bits of the register, with the standard A32
//! behaviour for amounts ≥ 32.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// The four barrel-shifter operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl ShiftKind {
    /// All shift kinds in encoding order.
    pub const ALL: [ShiftKind; 4] = [
        ShiftKind::Lsl,
        ShiftKind::Lsr,
        ShiftKind::Asr,
        ShiftKind::Ror,
    ];

    /// Encoding field value.
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    pub(crate) fn from_bits(bits: u32) -> ShiftKind {
        ShiftKind::ALL[(bits & 0x3) as usize]
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }
}

impl fmt::Display for ShiftKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for ShiftKind {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lsl" => Ok(ShiftKind::Lsl),
            "lsr" => Ok(ShiftKind::Lsr),
            "asr" => Ok(ShiftKind::Asr),
            "ror" => Ok(ShiftKind::Ror),
            _ => Err(IsaError::ParseShift(s.to_owned())),
        }
    }
}

/// Result of a barrel-shifter evaluation: the shifted value and the
/// carry-out that a flag-setting logical operation would latch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftOut {
    /// Shifted value — the word asserted on the shifter output buffer.
    pub value: u32,
    /// Shifter carry-out.
    pub carry: bool,
}

/// Applies a barrel-shifter operation.
///
/// `amount` is the *effective* amount: for immediate-shift forms it is the
/// encoded 5-bit literal; for register-shift forms the caller passes the
/// low 8 bits of the shift register. A zero amount passes the value through
/// and propagates `carry_in` as carry-out, matching A32.
///
/// ```
/// use sca_isa::{apply_shift, ShiftKind};
///
/// let out = apply_shift(ShiftKind::Lsl, 0x8000_0001, 1, false);
/// assert_eq!(out.value, 2);
/// assert!(out.carry); // bit 31 shifted out
/// ```
pub fn apply_shift(kind: ShiftKind, value: u32, amount: u32, carry_in: bool) -> ShiftOut {
    let amount = amount & 0xff;
    if amount == 0 {
        return ShiftOut {
            value,
            carry: carry_in,
        };
    }
    match kind {
        ShiftKind::Lsl => {
            if amount < 32 {
                ShiftOut {
                    value: value << amount,
                    carry: (value >> (32 - amount)) & 1 != 0,
                }
            } else if amount == 32 {
                ShiftOut {
                    value: 0,
                    carry: value & 1 != 0,
                }
            } else {
                ShiftOut {
                    value: 0,
                    carry: false,
                }
            }
        }
        ShiftKind::Lsr => {
            if amount < 32 {
                ShiftOut {
                    value: value >> amount,
                    carry: (value >> (amount - 1)) & 1 != 0,
                }
            } else if amount == 32 {
                ShiftOut {
                    value: 0,
                    carry: value >> 31 != 0,
                }
            } else {
                ShiftOut {
                    value: 0,
                    carry: false,
                }
            }
        }
        ShiftKind::Asr => {
            if amount < 32 {
                ShiftOut {
                    value: ((value as i32) >> amount) as u32,
                    carry: (value >> (amount - 1)) & 1 != 0,
                }
            } else {
                let fill = if value >> 31 != 0 { u32::MAX } else { 0 };
                ShiftOut {
                    value: fill,
                    carry: value >> 31 != 0,
                }
            }
        }
        ShiftKind::Ror => {
            let rot = amount % 32;
            let value_out = value.rotate_right(rot);
            let carry = if rot == 0 {
                // amount is a nonzero multiple of 32
                value >> 31 != 0
            } else {
                (value >> (rot - 1)) & 1 != 0
            };
            ShiftOut {
                value: value_out,
                carry,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amount_is_identity() {
        for kind in ShiftKind::ALL {
            for carry in [false, true] {
                let out = apply_shift(kind, 0xdead_beef, 0, carry);
                assert_eq!(out.value, 0xdead_beef);
                assert_eq!(out.carry, carry);
            }
        }
    }

    #[test]
    fn lsl_basic() {
        assert_eq!(apply_shift(ShiftKind::Lsl, 1, 4, false).value, 16);
        let out = apply_shift(ShiftKind::Lsl, 0x8000_0000, 1, false);
        assert_eq!(out.value, 0);
        assert!(out.carry);
    }

    #[test]
    fn lsl_large_amounts() {
        let out = apply_shift(ShiftKind::Lsl, 0xffff_ffff, 32, false);
        assert_eq!(out.value, 0);
        assert!(out.carry);
        let out = apply_shift(ShiftKind::Lsl, 0xffff_ffff, 33, true);
        assert_eq!(out.value, 0);
        assert!(!out.carry);
    }

    #[test]
    fn lsr_basic() {
        let out = apply_shift(ShiftKind::Lsr, 0b110, 1, false);
        assert_eq!(out.value, 0b11);
        assert!(!out.carry);
        let out = apply_shift(ShiftKind::Lsr, 0b11, 1, false);
        assert_eq!(out.value, 0b1);
        assert!(out.carry);
    }

    #[test]
    fn lsr_32_and_beyond() {
        let out = apply_shift(ShiftKind::Lsr, 0x8000_0000, 32, false);
        assert_eq!(out.value, 0);
        assert!(out.carry);
        let out = apply_shift(ShiftKind::Lsr, 0xffff_ffff, 40, true);
        assert_eq!(out.value, 0);
        assert!(!out.carry);
    }

    #[test]
    fn asr_sign_extends() {
        let out = apply_shift(ShiftKind::Asr, 0x8000_0000, 4, false);
        assert_eq!(out.value, 0xf800_0000);
        let out = apply_shift(ShiftKind::Asr, 0x8000_0000, 64, false);
        assert_eq!(out.value, 0xffff_ffff);
        assert!(out.carry);
        let out = apply_shift(ShiftKind::Asr, 0x7fff_ffff, 64, true);
        assert_eq!(out.value, 0);
        assert!(!out.carry);
    }

    #[test]
    fn ror_rotates() {
        let out = apply_shift(ShiftKind::Ror, 0x0000_00f1, 4, false);
        assert_eq!(out.value, 0x1000_000f);
    }

    #[test]
    fn ror_carry_is_bit_amount_minus_one() {
        // 0xf1 = 0b1111_0001: rotating by 4 exposes bit 3 (= 0) as carry.
        let value = 0xf1u32;
        let out = apply_shift(ShiftKind::Ror, value, 4, false);
        assert_eq!(out.carry, (value >> 3) & 1 != 0);
        assert!(!out.carry);
        // Rotating by 1 exposes bit 0 (= 1).
        let out = apply_shift(ShiftKind::Ror, value, 1, false);
        assert!(out.carry);
    }

    #[test]
    fn ror_multiple_of_32() {
        let out = apply_shift(ShiftKind::Ror, 0x8000_0001, 32, false);
        assert_eq!(out.value, 0x8000_0001);
        assert!(out.carry);
        let out = apply_shift(ShiftKind::Ror, 0x7000_0001, 64, false);
        assert_eq!(out.value, 0x7000_0001);
        assert!(!out.carry);
    }

    #[test]
    fn amount_uses_low_byte_only() {
        let out = apply_shift(ShiftKind::Lsl, 0xabcd, 0x100, true);
        assert_eq!(out.value, 0xabcd);
        assert!(out.carry);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for kind in ShiftKind::ALL {
            assert_eq!(kind.mnemonic().parse::<ShiftKind>().unwrap(), kind);
            assert_eq!(ShiftKind::from_bits(kind.bits()), kind);
        }
    }
}
