//! Condition codes and the architectural flag state.
//!
//! Every instruction in the ISA is conditionally executed, exactly as in
//! A32. The paper leans on this: the Cortex-A7 `nop` is "a conditional
//! instruction (set never to execute) with zero-valued operands", which is
//! why it still drives the operand buses and write-back bus with zeros and
//! is *not* side-channel neutral.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// The N/Z/C/V architectural flags.
///
/// ```
/// use sca_isa::{Cond, Flags};
///
/// let flags = Flags { z: true, ..Flags::default() };
/// assert!(Cond::Eq.passes(flags));
/// assert!(!Cond::Ne.passes(flags));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Flags {
    /// Negative: result bit 31 set.
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Carry (or shifter carry-out for logical operations).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

/// An A32-style condition code.
///
/// [`Cond::Nv`] ("never") is retained — unlike modern A32 which repurposed
/// it — because the simulated core implements `nop` as a never-executed
/// conditional data-processing instruction (see the crate docs and the
/// paper's Section 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z set).
    Eq = 0,
    /// Not equal (Z clear).
    Ne = 1,
    /// Carry set / unsigned higher-or-same.
    Cs = 2,
    /// Carry clear / unsigned lower.
    Cc = 3,
    /// Minus / negative (N set).
    Mi = 4,
    /// Plus / positive-or-zero (N clear).
    Pl = 5,
    /// Overflow set.
    Vs = 6,
    /// Overflow clear.
    Vc = 7,
    /// Unsigned higher (C set and Z clear).
    Hi = 8,
    /// Unsigned lower-or-same (C clear or Z set).
    Ls = 9,
    /// Signed greater-or-equal (N == V).
    Ge = 10,
    /// Signed less (N != V).
    Lt = 11,
    /// Signed greater (Z clear and N == V).
    Gt = 12,
    /// Signed less-or-equal (Z set or N != V).
    Le = 13,
    /// Always.
    #[default]
    Al = 14,
    /// Never: the instruction occupies pipeline resources but does not
    /// architecturally execute.
    Nv = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// Encoding field value (bits `[31:28]` of an instruction word).
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes the four-bit condition field.
    pub(crate) fn from_bits(bits: u32) -> Cond {
        Cond::ALL[(bits & 0xf) as usize]
    }

    /// Evaluates the condition against the current flags.
    ///
    /// ```
    /// use sca_isa::{Cond, Flags};
    /// assert!(Cond::Al.passes(Flags::default()));
    /// assert!(!Cond::Nv.passes(Flags::default()));
    /// ```
    pub fn passes(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Al => true,
            Cond::Nv => false,
        }
    }

    /// The logically opposite condition (`Al`/`Nv` are each other's
    /// opposites).
    pub fn inverse(self) -> Cond {
        Cond::ALL[(self as usize) ^ 1]
    }

    /// The assembly suffix; empty for [`Cond::Al`].
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cond::Al {
            f.write_str("al")
        } else {
            f.write_str(self.suffix())
        }
    }
}

impl FromStr for Cond {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let cond = match lower.as_str() {
            "eq" => Cond::Eq,
            "ne" => Cond::Ne,
            "cs" | "hs" => Cond::Cs,
            "cc" | "lo" => Cond::Cc,
            "mi" => Cond::Mi,
            "pl" => Cond::Pl,
            "vs" => Cond::Vs,
            "vc" => Cond::Vc,
            "hi" => Cond::Hi,
            "ls" => Cond::Ls,
            "ge" => Cond::Ge,
            "lt" => Cond::Lt,
            "gt" => Cond::Gt,
            "le" => Cond::Le,
            "al" | "" => Cond::Al,
            "nv" => Cond::Nv,
            _ => return Err(IsaError::ParseCond(s.to_owned())),
        };
        Ok(cond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(n: bool, z: bool, c: bool, v: bool) -> Flags {
        Flags { n, z, c, v }
    }

    #[test]
    fn bits_round_trip() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_bits(cond.bits()), cond);
        }
    }

    #[test]
    fn eq_ne() {
        assert!(Cond::Eq.passes(flags(false, true, false, false)));
        assert!(!Cond::Eq.passes(flags(false, false, false, false)));
        assert!(Cond::Ne.passes(flags(false, false, false, false)));
    }

    #[test]
    fn unsigned_comparisons() {
        // Hi: C && !Z
        assert!(Cond::Hi.passes(flags(false, false, true, false)));
        assert!(!Cond::Hi.passes(flags(false, true, true, false)));
        // Ls: !C || Z
        assert!(Cond::Ls.passes(flags(false, true, true, false)));
        assert!(Cond::Ls.passes(flags(false, false, false, false)));
    }

    #[test]
    fn signed_comparisons() {
        // Ge: N == V
        assert!(Cond::Ge.passes(flags(true, false, false, true)));
        assert!(Cond::Ge.passes(flags(false, false, false, false)));
        assert!(!Cond::Ge.passes(flags(true, false, false, false)));
        // Gt: !Z && N == V
        assert!(Cond::Gt.passes(flags(false, false, false, false)));
        assert!(!Cond::Gt.passes(flags(false, true, false, false)));
        // Le: Z || N != V
        assert!(Cond::Le.passes(flags(false, true, false, false)));
        assert!(Cond::Le.passes(flags(true, false, false, false)));
    }

    #[test]
    fn always_and_never() {
        for n in [false, true] {
            for z in [false, true] {
                let f = flags(n, z, n, z);
                assert!(Cond::Al.passes(f));
                assert!(!Cond::Nv.passes(f));
            }
        }
    }

    #[test]
    fn inverse_is_complementary() {
        for cond in Cond::ALL {
            for bits in 0..16u8 {
                let f = flags(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_eq!(
                    cond.passes(f),
                    !cond.inverse().passes(f),
                    "cond {cond:?} flags {f}"
                );
            }
        }
    }

    #[test]
    fn parse_and_display() {
        for cond in Cond::ALL {
            if cond == Cond::Al {
                continue; // displays as "al", suffix is empty
            }
            assert_eq!(cond.suffix().parse::<Cond>().unwrap(), cond);
        }
        assert_eq!("hs".parse::<Cond>().unwrap(), Cond::Cs);
        assert_eq!("lo".parse::<Cond>().unwrap(), Cond::Cc);
        assert!("xx".parse::<Cond>().is_err());
    }
}
