//! Architectural reference interpreter — the ISA's golden model.
//!
//! Executes a [`Program`] one instruction at a time with no pipeline, no
//! caches and no timing: just the architectural semantics ([`eval_dp`],
//! [`apply_shift`], [`eval_mul`]) applied to registers, flags and a flat
//! little-endian memory. The pipeline simulator in `sca-uarch` must agree
//! with this interpreter on final architectural state for *every*
//! microarchitectural configuration — that conformance check is exactly
//! the paper's premise (the microarchitecture changes side-channel
//! behaviour, never results), and it is enforced by the
//! `uarch_conformance` differential proptest at the workspace root.
//!
//! ```
//! use sca_isa::{assemble, Interp, Reg};
//!
//! let program = assemble("
//!     mov r0, #6
//!     mov r1, #7
//!     mul r2, r0, r1
//!     halt
//! ")?;
//! let mut interp = Interp::new(0x1000);
//! interp.load(&program)?;
//! interp.run(1_000)?;
//! assert_eq!(interp.reg(Reg::R2), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{
    apply_shift, decode, eval_dp, eval_mul, Flags, Insn, InsnKind, IsaError, MemDir, MemMultiMode,
    MemOffset, MemSize, Operand2, Program, Reg, ShiftAmount,
};

/// Why the interpreter stopped abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// The word at `addr` is not a valid instruction (or lies outside
    /// memory).
    BadInstruction(u32),
    /// A data access fell outside the configured memory.
    BadAddress(u32),
    /// `run` exceeded its step budget without reaching `halt`.
    StepBudgetExceeded(u64),
    /// A program image does not fit in the configured memory.
    ImageTooLarge(u32),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::BadInstruction(addr) => {
                write!(f, "no decodable instruction at {addr:#x}")
            }
            InterpError::BadAddress(addr) => write!(f, "data access out of range at {addr:#x}"),
            InterpError::StepBudgetExceeded(steps) => {
                write!(f, "no halt within {steps} steps")
            }
            InterpError::ImageTooLarge(end) => {
                write!(f, "program image ends at {end:#x}, beyond memory")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The architectural interpreter: registers, flags, PC and a flat RAM.
#[derive(Clone, Debug)]
pub struct Interp {
    regs: [u32; 16],
    flags: Flags,
    pc: u32,
    mem: Vec<u8>,
    halted: bool,
}

impl Interp {
    /// Creates an interpreter with `mem_size` bytes of zeroed RAM.
    pub fn new(mem_size: u32) -> Interp {
        Interp {
            regs: [0; 16],
            flags: Flags::default(),
            pc: 0,
            mem: vec![0; mem_size as usize],
            halted: false,
        }
    }

    /// Loads a program image and points the PC at its entry.
    ///
    /// # Errors
    ///
    /// [`InterpError::ImageTooLarge`] when the image does not fit.
    pub fn load(&mut self, program: &Program) -> Result<(), InterpError> {
        let end = program.base() + program.len_bytes();
        if end as usize > self.mem.len() {
            return Err(InterpError::ImageTooLarge(end));
        }
        for (i, word) in program.words().iter().enumerate() {
            self.write_u32(program.base() + (i as u32) * 4, *word)?;
        }
        self.pc = program.entry();
        self.halted = false;
        Ok(())
    }

    /// Current value of a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Sets a register.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs[reg.index()] = value;
    }

    /// Current flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Sets the flags.
    pub fn set_flags(&mut self, flags: Flags) {
        self.flags = flags;
    }

    /// Whether `halt` was executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadAddress`] when out of range.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], InterpError> {
        let i = self.check(addr, len)?;
        Ok(&self.mem[i..i + len as usize])
    }

    /// Copies bytes into memory at `addr`.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadAddress`] when out of range.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), InterpError> {
        let i = self.check(addr, data.len() as u32)?;
        self.mem[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Runs until `halt`, returning the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Propagates bad fetches/accesses; aborts with
    /// [`InterpError::StepBudgetExceeded`] after `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, InterpError> {
        let mut steps = 0u64;
        while !self.halted {
            if steps >= max_steps {
                return Err(InterpError::StepBudgetExceeded(max_steps));
            }
            self.step()?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates decode and memory faults.
    pub fn step(&mut self) -> Result<(), InterpError> {
        let addr = self.pc;
        let word = self.read_u32(addr)?;
        let insn = decode(word).map_err(|_: IsaError| InterpError::BadInstruction(addr))?;
        self.pc = addr.wrapping_add(4);
        self.exec(insn, addr)
    }

    /// Reads a register as an operand; PC reads yield `addr + 8`, as in
    /// the pipelined core.
    fn operand(&self, reg: Reg, addr: u32) -> u32 {
        if reg == Reg::PC {
            addr.wrapping_add(8)
        } else {
            self.regs[reg.index()]
        }
    }

    fn exec(&mut self, insn: Insn, addr: u32) -> Result<(), InterpError> {
        if !insn.cond.passes(self.flags) {
            return Ok(());
        }
        match insn.kind {
            InsnKind::Nop | InsnKind::Trig { .. } => {}
            InsnKind::Halt => self.halted = true,
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let rn_val = rn.map(|r| self.operand(r, addr));
                let (op2_val, shifter_carry) = match op2 {
                    Operand2::Imm(v) => (v, self.flags.c),
                    Operand2::Reg(rm) => (self.operand(rm, addr), self.flags.c),
                    Operand2::ShiftedReg { rm, kind, amount } => {
                        let rm_val = self.operand(rm, addr);
                        let amount_val = match amount {
                            ShiftAmount::Imm(n) => u32::from(n),
                            ShiftAmount::Reg(rs) => self.operand(rs, addr) & 0xff,
                        };
                        let out = apply_shift(kind, rm_val, amount_val, self.flags.c);
                        (out.value, out.carry)
                    }
                };
                let out = eval_dp(op, rn_val.unwrap_or(0), op2_val, shifter_carry, self.flags);
                if set_flags || op.is_compare() {
                    self.flags = out.flags;
                }
                if let Some(rd) = rd {
                    if rd == Reg::PC {
                        self.pc = out.value & !3;
                    } else {
                        self.regs[rd.index()] = out.value;
                    }
                }
            }
            InsnKind::Mul {
                op: _,
                set_flags,
                rd,
                rm,
                rs,
                ra,
            } => {
                let value = eval_mul(
                    self.operand(rm, addr),
                    self.operand(rs, addr),
                    ra.map(|r| self.operand(r, addr)),
                );
                if set_flags {
                    self.flags.n = value >> 31 != 0;
                    self.flags.z = value == 0;
                }
                self.regs[rd.index()] = value;
            }
            InsnKind::MulLong {
                signed,
                rd_hi,
                rd_lo,
                rm,
                rs,
            } => {
                let rm_val = self.operand(rm, addr);
                let rs_val = self.operand(rs, addr);
                let product = if signed {
                    (i64::from(rm_val as i32) * i64::from(rs_val as i32)) as u64
                } else {
                    u64::from(rm_val) * u64::from(rs_val)
                };
                self.regs[rd_lo.index()] = product as u32;
                self.regs[rd_hi.index()] = (product >> 32) as u32;
            }
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr: mode,
            } => {
                let base_val = self.operand(mode.base, addr);
                let offset_val = match mode.offset {
                    MemOffset::Imm(imm) => i64::from(imm),
                    MemOffset::Reg {
                        rm,
                        kind,
                        amount,
                        sub,
                    } => {
                        let shifted = apply_shift(
                            kind,
                            self.operand(rm, addr),
                            u32::from(amount),
                            self.flags.c,
                        )
                        .value;
                        if sub {
                            -i64::from(shifted)
                        } else {
                            i64::from(shifted)
                        }
                    }
                };
                let effective = (i64::from(base_val) + offset_val) as u32;
                let access_addr = match mode.index {
                    crate::IndexMode::PostIndex => base_val,
                    _ => effective,
                };
                // The store data register is read before any base
                // writeback, matching the pipeline's issue-stage reads.
                let data_val = (dir == MemDir::Store).then(|| self.operand(rd, addr));
                if mode.writes_base() {
                    self.regs[mode.base.index()] = effective;
                }
                match dir {
                    MemDir::Load => {
                        let value = match size {
                            MemSize::Word => self.read_u32(access_addr)?,
                            MemSize::Byte => u32::from(self.read_u8(access_addr)?),
                            MemSize::Half => u32::from(self.read_u16(access_addr)?),
                        };
                        if rd == Reg::PC {
                            self.pc = value & !3;
                        } else {
                            self.regs[rd.index()] = value;
                        }
                    }
                    MemDir::Store => {
                        let value = data_val.expect("stores read their data register");
                        match size {
                            MemSize::Word => self.write_u32(access_addr, value)?,
                            MemSize::Byte => self.write_u8(access_addr, value as u8)?,
                            MemSize::Half => self.write_u16(access_addr, value as u16)?,
                        }
                    }
                }
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                mode,
            } => {
                let base_val = self.operand(base, addr);
                let n = regs.len() as u32;
                let start = match mode {
                    MemMultiMode::Ia => base_val,
                    MemMultiMode::Db => base_val.wrapping_sub(4 * n),
                };
                let new_base = match mode {
                    MemMultiMode::Ia => base_val.wrapping_add(4 * n),
                    MemMultiMode::Db => start,
                };
                let base_reloaded = dir == MemDir::Load && regs.contains(base);
                if writeback && !base_reloaded {
                    self.regs[base.index()] = new_base;
                }
                let mut branch_target = None;
                for (i, reg) in regs.iter().enumerate() {
                    let beat_addr = start.wrapping_add(4 * i as u32);
                    match dir {
                        MemDir::Load => {
                            let value = self.read_u32(beat_addr)?;
                            if reg == Reg::PC {
                                branch_target = Some(value & !3);
                            } else {
                                self.regs[reg.index()] = value;
                            }
                        }
                        MemDir::Store => {
                            let value = self.operand(reg, addr);
                            self.write_u32(beat_addr, value)?;
                        }
                    }
                }
                if let Some(target) = branch_target {
                    self.pc = target;
                }
            }
            InsnKind::Branch { link, offset } => {
                if link {
                    self.regs[Reg::LR.index()] = addr.wrapping_add(4);
                }
                self.pc = addr
                    .wrapping_add(4)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            InsnKind::Bx { rm } => {
                self.pc = self.operand(rm, addr) & !3;
            }
        }
        Ok(())
    }

    // ---- flat memory with the LSU's alignment discipline ----------------

    fn check(&self, addr: u32, len: u32) -> Result<usize, InterpError> {
        let end = addr.checked_add(len).ok_or(InterpError::BadAddress(addr))?;
        if end as usize > self.mem.len() {
            return Err(InterpError::BadAddress(addr));
        }
        Ok(addr as usize)
    }

    fn read_u8(&self, addr: u32) -> Result<u8, InterpError> {
        let i = self.check(addr, 1)?;
        Ok(self.mem[i])
    }

    /// Halfword reads align down (bit 0 cleared), as the LSU does.
    fn read_u16(&self, addr: u32) -> Result<u16, InterpError> {
        let addr = addr & !1;
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.mem[i], self.mem[i + 1]]))
    }

    /// Word reads align down (low two bits cleared), as the LSU does.
    fn read_u32(&self, addr: u32) -> Result<u32, InterpError> {
        let addr = addr & !3;
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.mem[i],
            self.mem[i + 1],
            self.mem[i + 2],
            self.mem[i + 3],
        ]))
    }

    fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), InterpError> {
        let i = self.check(addr, 1)?;
        self.mem[i] = value;
        Ok(())
    }

    fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), InterpError> {
        let addr = addr & !1;
        let i = self.check(addr, 2)?;
        self.mem[i..i + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), InterpError> {
        let addr = addr & !3;
        let i = self.check(addr, 4)?;
        self.mem[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run(src: &str) -> Interp {
        let program = assemble(src).expect("assembles");
        let mut interp = Interp::new(1 << 16);
        interp.load(&program).expect("loads");
        interp.run(1_000_000).expect("halts");
        interp
    }

    #[test]
    fn arithmetic_and_flags() {
        let i = run("
            mov r0, #5
            adds r1, r0, #0xff
            subs r2, r0, #5
            moveq r3, #1
            halt
        ");
        assert_eq!(i.reg(Reg::R1), 0x104);
        assert_eq!(i.reg(Reg::R2), 0);
        assert_eq!(i.reg(Reg::R3), 1, "eq condition after subs to zero");
        assert!(i.flags().z);
    }

    #[test]
    fn loops_and_branches() {
        let i = run("
            mov r0, #10
            mov r1, #0
loop:       add r1, r1, r0
            subs r0, r0, #1
            bne loop
            halt
        ");
        assert_eq!(i.reg(Reg::R1), 55);
    }

    #[test]
    fn calls_and_stack() {
        let i = run("
            mov sp, #0x800
            mov r0, #4
            bl double
            bl double
            halt
double:     push {lr}
            add r0, r0, r0
            pop {pc}
        ");
        assert_eq!(i.reg(Reg::R0), 16);
        assert_eq!(i.reg(Reg::SP), 0x800);
    }

    #[test]
    fn memory_subword_round_trip() {
        let i = run("
            mov r10, #0x400
            mov r0, #0xab
            strb r0, [r10, #1]
            ldr r1, [r10]
            ldrh r2, [r10]
            ldrb r3, [r10, #1]
            halt
        ");
        assert_eq!(i.reg(Reg::R1), 0x0000_ab00);
        assert_eq!(i.reg(Reg::R2), 0xab00);
        assert_eq!(i.reg(Reg::R3), 0xab);
    }

    #[test]
    fn step_budget_guards_infinite_loops() {
        let program = assemble("loop: b loop\n").unwrap();
        let mut interp = Interp::new(0x100);
        interp.load(&program).unwrap();
        assert_eq!(interp.run(100), Err(InterpError::StepBudgetExceeded(100)),);
    }

    #[test]
    fn data_is_not_an_instruction() {
        let program = assemble(".word 0xffffffff\n").unwrap();
        let mut interp = Interp::new(0x100);
        interp.load(&program).unwrap();
        assert_eq!(interp.run(10), Err(InterpError::BadInstruction(0)));
    }
}
