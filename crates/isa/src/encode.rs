//! Binary instruction encoding and decoding.
//!
//! The ISA uses a fixed 32-bit, A32-inspired layout. Bits `[31:28]` hold
//! the condition and bits `[27:24]` a major opcode selecting the format:
//!
//! | major | format |
//! |-------|--------|
//! | `0x0` | data-processing, register operand |
//! | `0x1` | data-processing, rotated immediate |
//! | `0x2` | data-processing, register shifted by immediate |
//! | `0x3` | data-processing, register shifted by register |
//! | `0x4` | load/store, immediate offset |
//! | `0x5` | load/store, register offset |
//! | `0x6` | multiply / multiply-accumulate |
//! | `0x7` | branch / branch-and-link |
//! | `0x8` | branch to register |
//! | `0x9` | no-op |
//! | `0xa` | trigger pseudo-op |
//! | `0xb` | halt pseudo-op |
//!
//! Encoding and decoding round-trip exactly; this is checked by unit and
//! property tests.

use crate::{
    AddrMode, Cond, DpOp, IndexMode, Insn, InsnKind, IsaError, MemDir, MemMultiMode, MemOffset,
    MemSize, MulOp, Operand2, Reg, RegSet, RotatedImm, ShiftAmount, ShiftKind,
};

const MAJOR_DP_REG: u32 = 0x0;
const MAJOR_DP_IMM: u32 = 0x1;
const MAJOR_DP_SHIFT_IMM: u32 = 0x2;
const MAJOR_DP_SHIFT_REG: u32 = 0x3;
const MAJOR_MEM_IMM: u32 = 0x4;
const MAJOR_MEM_REG: u32 = 0x5;
const MAJOR_MUL: u32 = 0x6;
const MAJOR_BRANCH: u32 = 0x7;
const MAJOR_BX: u32 = 0x8;
const MAJOR_NOP: u32 = 0x9;
const MAJOR_TRIG: u32 = 0xa;
const MAJOR_HALT: u32 = 0xb;
const MAJOR_MEM_MULTI: u32 = 0xc;
const MAJOR_MUL_LONG: u32 = 0xd;

fn field(value: u32, lo: u32, width: u32) -> u32 {
    (value >> lo) & ((1 << width) - 1)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Errors
///
/// Returns an error when a value does not fit its encoding field:
/// an immediate that is not a [`RotatedImm`], a memory offset outside
/// `-1023..=1023`, a shifted memory offset amount above 15, or a branch
/// offset outside the signed 23-bit range.
pub fn encode(insn: &Insn) -> Result<u32, IsaError> {
    let cond = insn.cond.bits() << 28;
    let word = match &insn.kind {
        InsnKind::Dp {
            op,
            set_flags,
            rd,
            rn,
            op2,
        } => {
            let common = (op.bits() << 20)
                | (u32::from(*set_flags) << 19)
                | ((rd.map_or(0, |r| r.index() as u32)) << 15)
                | ((rn.map_or(0, |r| r.index() as u32)) << 11);
            match op2 {
                Operand2::Reg(rm) => (MAJOR_DP_REG << 24) | common | ((rm.index() as u32) << 7),
                Operand2::Imm(value) => {
                    let imm = RotatedImm::encode(*value).ok_or(IsaError::ImmediateRange(*value))?;
                    let (imm8, rot) = imm.fields();
                    (MAJOR_DP_IMM << 24) | common | (rot << 8) | imm8
                }
                Operand2::ShiftedReg { rm, kind, amount } => {
                    let base = common | ((rm.index() as u32) << 7) | (kind.bits() << 5);
                    match amount {
                        ShiftAmount::Imm(n) => {
                            if *n > 31 {
                                return Err(IsaError::ShiftRange(*n));
                            }
                            (MAJOR_DP_SHIFT_IMM << 24) | base | u32::from(*n)
                        }
                        ShiftAmount::Reg(rs) => {
                            (MAJOR_DP_SHIFT_REG << 24) | base | ((rs.index() as u32) << 1)
                        }
                    }
                }
            }
        }
        InsnKind::Mem {
            dir,
            size,
            rd,
            addr,
        } => {
            let idx = match addr.index {
                IndexMode::Offset => 0,
                IndexMode::PreWriteback => 1,
                IndexMode::PostIndex => 2,
            };
            let common = (u32::from(*dir == MemDir::Load) << 23)
                | (size.bits() << 21)
                | (idx << 19)
                | ((rd.index() as u32) << 14)
                | ((addr.base.index() as u32) << 10);
            match addr.offset {
                MemOffset::Imm(imm) => {
                    if !(-1023..=1023).contains(&imm) {
                        return Err(IsaError::OffsetRange(imm));
                    }
                    let up = u32::from(imm >= 0) << 18;
                    (MAJOR_MEM_IMM << 24) | common | up | (imm.unsigned_abs() & 0x3ff)
                }
                MemOffset::Reg {
                    rm,
                    kind,
                    amount,
                    sub,
                } => {
                    if amount > 15 {
                        return Err(IsaError::ShiftRange(amount));
                    }
                    let up = u32::from(!sub) << 18;
                    (MAJOR_MEM_REG << 24)
                        | common
                        | up
                        | ((rm.index() as u32) << 6)
                        | (kind.bits() << 4)
                        | u32::from(amount)
                }
            }
        }
        InsnKind::Mul {
            op,
            set_flags,
            rd,
            rm,
            rs,
            ra,
        } => {
            (MAJOR_MUL << 24)
                | (u32::from(*op == MulOp::Mla) << 23)
                | (u32::from(*set_flags) << 22)
                | ((rd.index() as u32) << 18)
                | ((rm.index() as u32) << 14)
                | ((rs.index() as u32) << 10)
                | ((ra.map_or(0, |r| r.index() as u32)) << 6)
        }
        InsnKind::Branch { link, offset } => {
            const RANGE: i32 = 1 << 22;
            if !(-RANGE..RANGE).contains(offset) {
                return Err(IsaError::BranchRange(*offset));
            }
            (MAJOR_BRANCH << 24) | (u32::from(*link) << 23) | ((*offset as u32) & 0x7f_ffff)
        }
        InsnKind::MemMulti {
            dir,
            base,
            writeback,
            regs,
            mode,
        } => {
            let mut rlist = 0u32;
            for reg in regs.iter() {
                rlist |= 1 << reg.index();
            }
            (MAJOR_MEM_MULTI << 24)
                | (u32::from(*dir == MemDir::Load) << 23)
                | (u32::from(*writeback) << 22)
                | (u32::from(*mode == MemMultiMode::Db) << 21)
                | ((base.index() as u32) << 16)
                | rlist
        }
        InsnKind::MulLong {
            signed,
            rd_hi,
            rd_lo,
            rm,
            rs,
        } => {
            (MAJOR_MUL_LONG << 24)
                | (u32::from(*signed) << 23)
                | ((rd_hi.index() as u32) << 16)
                | ((rd_lo.index() as u32) << 12)
                | ((rm.index() as u32) << 8)
                | ((rs.index() as u32) << 4)
        }
        InsnKind::Bx { rm } => (MAJOR_BX << 24) | rm.index() as u32,
        InsnKind::Nop => MAJOR_NOP << 24,
        InsnKind::Trig { high } => (MAJOR_TRIG << 24) | u32::from(*high),
        InsnKind::Halt => MAJOR_HALT << 24,
    };
    Ok(cond | word)
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`IsaError::DecodeWord`] if the major opcode or a sub-field does
/// not name a valid instruction.
pub fn decode(word: u32) -> Result<Insn, IsaError> {
    let cond = Cond::from_bits(field(word, 28, 4));
    let major = field(word, 24, 4);
    let kind = match major {
        MAJOR_DP_REG | MAJOR_DP_IMM | MAJOR_DP_SHIFT_IMM | MAJOR_DP_SHIFT_REG => {
            let op = DpOp::from_bits(field(word, 20, 4)).ok_or(IsaError::DecodeWord(word))?;
            let set_flags = field(word, 19, 1) != 0;
            let rd_field = Reg::from_field(field(word, 15, 4));
            let rn_field = Reg::from_field(field(word, 11, 4));
            let rd = if op.is_compare() {
                None
            } else {
                Some(rd_field)
            };
            let rn = if op.is_move() { None } else { Some(rn_field) };
            let op2 = match major {
                MAJOR_DP_REG => Operand2::Reg(Reg::from_field(field(word, 7, 4))),
                MAJOR_DP_IMM => Operand2::Imm(
                    RotatedImm::from_fields(field(word, 0, 8), field(word, 8, 3)).value(),
                ),
                MAJOR_DP_SHIFT_IMM => Operand2::ShiftedReg {
                    rm: Reg::from_field(field(word, 7, 4)),
                    kind: ShiftKind::from_bits(field(word, 5, 2)),
                    amount: ShiftAmount::Imm(field(word, 0, 5) as u8),
                },
                _ => Operand2::ShiftedReg {
                    rm: Reg::from_field(field(word, 7, 4)),
                    kind: ShiftKind::from_bits(field(word, 5, 2)),
                    amount: ShiftAmount::Reg(Reg::from_field(field(word, 1, 4))),
                },
            };
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            }
        }
        MAJOR_MEM_IMM | MAJOR_MEM_REG => {
            let dir = if field(word, 23, 1) != 0 {
                MemDir::Load
            } else {
                MemDir::Store
            };
            let size = MemSize::from_bits(field(word, 21, 2));
            let index = match field(word, 19, 2) {
                0 => IndexMode::Offset,
                1 => IndexMode::PreWriteback,
                2 => IndexMode::PostIndex,
                _ => return Err(IsaError::DecodeWord(word)),
            };
            let up = field(word, 18, 1) != 0;
            let rd = Reg::from_field(field(word, 14, 4));
            let base = Reg::from_field(field(word, 10, 4));
            let offset = if major == MAJOR_MEM_IMM {
                let magnitude = field(word, 0, 10) as i32;
                MemOffset::Imm(if up { magnitude } else { -magnitude })
            } else {
                MemOffset::Reg {
                    rm: Reg::from_field(field(word, 6, 4)),
                    kind: ShiftKind::from_bits(field(word, 4, 2)),
                    amount: field(word, 0, 4) as u8,
                    sub: !up,
                }
            };
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr: AddrMode {
                    base,
                    offset,
                    index,
                },
            }
        }
        MAJOR_MUL => {
            let mla = field(word, 23, 1) != 0;
            InsnKind::Mul {
                op: if mla { MulOp::Mla } else { MulOp::Mul },
                set_flags: field(word, 22, 1) != 0,
                rd: Reg::from_field(field(word, 18, 4)),
                rm: Reg::from_field(field(word, 14, 4)),
                rs: Reg::from_field(field(word, 10, 4)),
                ra: if mla {
                    Some(Reg::from_field(field(word, 6, 4)))
                } else {
                    None
                },
            }
        }
        MAJOR_BRANCH => {
            let raw = field(word, 0, 23);
            // Sign-extend the 23-bit field.
            let offset = ((raw << 9) as i32) >> 9;
            InsnKind::Branch {
                link: field(word, 23, 1) != 0,
                offset,
            }
        }
        MAJOR_MEM_MULTI => {
            let mut regs = RegSet::new();
            for i in 0..16u8 {
                if field(word, u32::from(i), 1) != 0 {
                    regs.insert(Reg::from_index(i).expect("index < 16"));
                }
            }
            InsnKind::MemMulti {
                dir: if field(word, 23, 1) != 0 {
                    MemDir::Load
                } else {
                    MemDir::Store
                },
                writeback: field(word, 22, 1) != 0,
                mode: if field(word, 21, 1) != 0 {
                    MemMultiMode::Db
                } else {
                    MemMultiMode::Ia
                },
                base: Reg::from_field(field(word, 16, 4)),
                regs,
            }
        }
        MAJOR_MUL_LONG => InsnKind::MulLong {
            signed: field(word, 23, 1) != 0,
            rd_hi: Reg::from_field(field(word, 16, 4)),
            rd_lo: Reg::from_field(field(word, 12, 4)),
            rm: Reg::from_field(field(word, 8, 4)),
            rs: Reg::from_field(field(word, 4, 4)),
        },
        MAJOR_BX => InsnKind::Bx {
            rm: Reg::from_field(field(word, 0, 4)),
        },
        MAJOR_NOP => InsnKind::Nop,
        MAJOR_TRIG => InsnKind::Trig {
            high: field(word, 0, 1) != 0,
        },
        MAJOR_HALT => InsnKind::Halt,
        _ => return Err(IsaError::DecodeWord(word)),
    };
    Ok(Insn { cond, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Insn;

    fn round_trip(insn: Insn) {
        let word = encode(&insn).unwrap_or_else(|e| panic!("encode {insn}: {e}"));
        let back = decode(word).unwrap_or_else(|e| panic!("decode {insn} (0x{word:08x}): {e}"));
        assert_eq!(back, insn, "round trip of {insn} via 0x{word:08x}");
    }

    #[test]
    fn round_trip_dp_forms() {
        round_trip(Insn::mov(Reg::R0, Reg::R1));
        round_trip(Insn::mov(Reg::R0, 0xff00u32));
        round_trip(Insn::mvn(Reg::R7, 0u32));
        round_trip(Insn::add(Reg::R1, Reg::R2, Reg::R3));
        round_trip(Insn::add(Reg::R1, Reg::R2, 0xffu32));
        round_trip(Insn::eor(Reg::R4, Reg::R5, Reg::R6).with_cond(Cond::Ne));
        round_trip(Insn::cmp(Reg::R1, 0u32));
        round_trip(Insn::cmp(Reg::R1, Reg::R2));
        let mut s = Insn::sub(Reg::R1, Reg::R1, 1u32);
        if let InsnKind::Dp { set_flags, .. } = &mut s.kind {
            *set_flags = true;
        }
        round_trip(s);
    }

    #[test]
    fn round_trip_shifted_forms() {
        round_trip(Insn::shift_imm(ShiftKind::Lsl, Reg::R0, Reg::R1, 31));
        round_trip(Insn::shift_imm(ShiftKind::Ror, Reg::R0, Reg::R1, 8));
        let by_reg = Insn::new(InsnKind::Dp {
            op: DpOp::Add,
            set_flags: false,
            rd: Some(Reg::R0),
            rn: Some(Reg::R1),
            op2: Operand2::ShiftedReg {
                rm: Reg::R2,
                kind: ShiftKind::Lsr,
                amount: ShiftAmount::Reg(Reg::R3),
            },
        });
        round_trip(by_reg);
    }

    #[test]
    fn round_trip_mem_forms() {
        round_trip(Insn::ldr(Reg::R0, AddrMode::base(Reg::R1)));
        round_trip(Insn::ldrb(
            Reg::R2,
            AddrMode::imm_offset(Reg::R3, 17).unwrap(),
        ));
        round_trip(Insn::ldrh(
            Reg::R2,
            AddrMode::imm_offset(Reg::R3, -1023).unwrap(),
        ));
        round_trip(Insn::str(Reg::R4, AddrMode::reg_offset(Reg::R5, Reg::R6)));
        round_trip(Insn::strb(
            Reg::R4,
            AddrMode {
                base: Reg::R5,
                offset: MemOffset::Reg {
                    rm: Reg::R6,
                    kind: ShiftKind::Lsl,
                    amount: 2,
                    sub: true,
                },
                index: IndexMode::PreWriteback,
            },
        ));
        round_trip(Insn::strh(
            Reg::R4,
            AddrMode {
                base: Reg::R5,
                offset: MemOffset::Imm(4),
                index: IndexMode::PostIndex,
            },
        ));
    }

    #[test]
    fn round_trip_mul_branch_misc() {
        round_trip(Insn::mul(Reg::R0, Reg::R1, Reg::R2));
        round_trip(Insn::mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3));
        round_trip(Insn::b(0));
        round_trip(Insn::b(-200));
        round_trip(Insn::bl(12345));
        round_trip(Insn::bx(Reg::LR));
        round_trip(Insn::nop());
        round_trip(Insn::nop().with_cond(Cond::Nv));
        round_trip(Insn::trig(true));
        round_trip(Insn::trig(false));
        round_trip(Insn::halt());
    }

    #[test]
    fn encode_rejects_out_of_range() {
        assert!(matches!(
            encode(&Insn::mov(Reg::R0, 0x1234_5678u32)),
            Err(IsaError::ImmediateRange(_))
        ));
        assert!(matches!(
            encode(&Insn::b(1 << 23)),
            Err(IsaError::BranchRange(_))
        ));
        let bad_shift = Insn::new(InsnKind::Dp {
            op: DpOp::Mov,
            set_flags: false,
            rd: Some(Reg::R0),
            rn: None,
            op2: Operand2::ShiftedReg {
                rm: Reg::R1,
                kind: ShiftKind::Lsl,
                amount: ShiftAmount::Imm(32),
            },
        });
        assert!(matches!(encode(&bad_shift), Err(IsaError::ShiftRange(_))));
    }

    #[test]
    fn decode_rejects_bad_major() {
        // Major 0xe..0xf are unused.
        for major in 0xeu32..=0xf {
            let word = major << 24;
            assert!(decode(word).is_err(), "major {major:#x} should not decode");
        }
    }

    #[test]
    fn round_trip_multi_and_long() {
        let regs: RegSet = [Reg::R0, Reg::R4, Reg::LR].into_iter().collect();
        round_trip(Insn::push(regs));
        round_trip(Insn::pop(regs));
        round_trip(Insn::ldmia(Reg::R1, false, regs));
        round_trip(Insn::stmdb(Reg::R2, true, regs).with_cond(Cond::Ne));
        round_trip(Insn::umull(Reg::R0, Reg::R1, Reg::R2, Reg::R3));
        round_trip(Insn::smull(Reg::R4, Reg::R5, Reg::R6, Reg::R7));
    }

    #[test]
    fn branch_sign_extension() {
        let word = encode(&Insn::b(-1)).unwrap();
        let insn = decode(word).unwrap();
        assert!(matches!(
            insn.kind,
            InsnKind::Branch {
                link: false,
                offset: -1
            }
        ));
    }
}
