//! Instruction operands: flexible second operands and memory addressing
//! modes.
//!
//! The distinction between register and immediate second operands is
//! *microarchitecturally* significant in the paper: two arithmetic/logic
//! instructions dual-issue on the Cortex-A7 only when one of them uses an
//! immediate, because the register file has three read ports (Section 3.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{IsaError, Reg, ShiftKind};

/// Amount for a shifted-register operand: a 5-bit literal or a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ShiftAmount {
    /// Literal amount `0..=31`.
    Imm(u8),
    /// Amount taken from the low byte of a register.
    Reg(Reg),
}

impl fmt::Display for ShiftAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShiftAmount::Imm(n) => write!(f, "#{n}"),
            ShiftAmount::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// The flexible second operand of a data-processing instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand2 {
    /// Rotated 8-bit immediate (see [`RotatedImm`]).
    Imm(u32),
    /// Plain register operand.
    Reg(Reg),
    /// Register routed through the barrel shifter.
    ShiftedReg {
        /// Register to shift.
        rm: Reg,
        /// Shift operation.
        kind: ShiftKind,
        /// Shift amount.
        amount: ShiftAmount,
    },
}

impl Operand2 {
    /// Registers read by this operand.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        let (a, b) = match self {
            Operand2::Imm(_) => (None, None),
            Operand2::Reg(r) => (Some(*r), None),
            Operand2::ShiftedReg { rm, amount, .. } => match amount {
                ShiftAmount::Imm(_) => (Some(*rm), None),
                ShiftAmount::Reg(rs) => (Some(*rm), Some(*rs)),
            },
        };
        a.into_iter().chain(b)
    }

    /// Whether the operand needs the barrel shifter.
    pub fn uses_shifter(&self) -> bool {
        matches!(self, Operand2::ShiftedReg { .. })
    }

    /// Whether the operand is an immediate.
    pub fn is_imm(&self) -> bool {
        matches!(self, Operand2::Imm(_))
    }
}

impl From<Reg> for Operand2 {
    fn from(r: Reg) -> Operand2 {
        Operand2::Reg(r)
    }
}

impl From<u32> for Operand2 {
    fn from(v: u32) -> Operand2 {
        Operand2::Imm(v)
    }
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Imm(v) => {
                if *v < 10 {
                    write!(f, "#{v}")
                } else {
                    write!(f, "#0x{v:x}")
                }
            }
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::ShiftedReg { rm, kind, amount } => write!(f, "{rm}, {kind} {amount}"),
        }
    }
}

/// An 8-bit immediate rotated right by a multiple of four bits — the
/// encodable immediate space of this ISA.
///
/// A32 uses `imm8 ror (2*rot4)`; this ISA's tighter field budget uses
/// `imm8 ror (4*rot3)`, which still covers every byte-aligned constant
/// (`0xff`, `0xff00_0000`, …) used by the benchmarks and by AES.
///
/// ```
/// use sca_isa::RotatedImm;
///
/// let imm = RotatedImm::encode(0xff00_0000).unwrap();
/// assert_eq!(imm.value(), 0xff00_0000);
/// assert!(RotatedImm::encode(0x1234_5678).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RotatedImm {
    imm8: u8,
    /// Rotation divided by four, `0..=7`.
    rot: u8,
}

impl RotatedImm {
    /// Finds an encoding for `value`, preferring the smallest rotation.
    ///
    /// Returns `None` if the value is not expressible as an 8-bit constant
    /// rotated right by a multiple of four bits.
    pub fn encode(value: u32) -> Option<RotatedImm> {
        for rot in 0..8u8 {
            let unrotated = value.rotate_left(u32::from(rot) * 4);
            if unrotated <= 0xff {
                return Some(RotatedImm {
                    imm8: unrotated as u8,
                    rot,
                });
            }
        }
        None
    }

    /// Reconstructs the immediate value.
    pub fn value(self) -> u32 {
        u32::from(self.imm8).rotate_right(u32::from(self.rot) * 4)
    }

    /// Raw field values `(imm8, rot)` for the encoder.
    pub(crate) fn fields(self) -> (u32, u32) {
        (u32::from(self.imm8), u32::from(self.rot))
    }

    pub(crate) fn from_fields(imm8: u32, rot: u32) -> RotatedImm {
        RotatedImm {
            imm8: (imm8 & 0xff) as u8,
            rot: (rot & 0x7) as u8,
        }
    }
}

/// Pre/post indexing for memory accesses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum IndexMode {
    /// `[rn, off]` — offset addressing, base unchanged.
    #[default]
    Offset,
    /// `[rn, off]!` — pre-indexed with base writeback.
    PreWriteback,
    /// `[rn], off` — post-indexed (base used, then updated).
    PostIndex,
}

/// The offset part of an addressing mode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemOffset {
    /// Signed immediate offset (range `-1023..=1023`).
    Imm(i32),
    /// (Optionally shifted) register offset, added or subtracted.
    Reg {
        /// Offset register.
        rm: Reg,
        /// Shift applied to `rm`.
        kind: ShiftKind,
        /// Literal shift amount `0..=15`.
        amount: u8,
        /// Whether the offset is subtracted.
        sub: bool,
    },
}

impl MemOffset {
    /// A plain register offset with no shift.
    pub fn reg(rm: Reg) -> MemOffset {
        MemOffset::Reg {
            rm,
            kind: ShiftKind::Lsl,
            amount: 0,
            sub: false,
        }
    }

    /// Whether this is a zero immediate offset.
    pub fn is_zero(&self) -> bool {
        matches!(self, MemOffset::Imm(0))
    }
}

/// A load/store addressing mode.
///
/// ```
/// use sca_isa::{AddrMode, Reg};
///
/// let simple = AddrMode::base(Reg::R1);
/// assert_eq!(simple.to_string(), "[r1]");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AddrMode {
    /// Base register.
    pub base: Reg,
    /// Offset to apply.
    pub offset: MemOffset,
    /// Indexing discipline.
    pub index: IndexMode,
}

impl AddrMode {
    /// `[rn]` — base register only.
    pub fn base(base: Reg) -> AddrMode {
        AddrMode {
            base,
            offset: MemOffset::Imm(0),
            index: IndexMode::Offset,
        }
    }

    /// `[rn, #imm]` — immediate offset.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OffsetRange`] if `imm` is outside `-1023..=1023`.
    pub fn imm_offset(base: Reg, imm: i32) -> Result<AddrMode, IsaError> {
        if !(-1023..=1023).contains(&imm) {
            return Err(IsaError::OffsetRange(imm));
        }
        Ok(AddrMode {
            base,
            offset: MemOffset::Imm(imm),
            index: IndexMode::Offset,
        })
    }

    /// `[rn, rm]` — register offset.
    pub fn reg_offset(base: Reg, rm: Reg) -> AddrMode {
        AddrMode {
            base,
            offset: MemOffset::reg(rm),
            index: IndexMode::Offset,
        }
    }

    /// Registers read when computing the address (base plus any offset
    /// register).
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        let off = match self.offset {
            MemOffset::Reg { rm, .. } => Some(rm),
            MemOffset::Imm(_) => None,
        };
        std::iter::once(self.base).chain(off)
    }

    /// Whether the base register is written back (pre/post indexing).
    pub fn writes_base(&self) -> bool {
        !matches!(self.index, IndexMode::Offset)
    }
}

impl fmt::Display for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let offset = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            match self.offset {
                MemOffset::Imm(v) => write!(f, ", #{v}"),
                MemOffset::Reg {
                    rm,
                    kind,
                    amount,
                    sub,
                } => {
                    let sign = if sub { "-" } else { "" };
                    if amount == 0 && kind == ShiftKind::Lsl {
                        write!(f, ", {sign}{rm}")
                    } else {
                        write!(f, ", {sign}{rm}, {kind} #{amount}")
                    }
                }
            }
        };
        match self.index {
            IndexMode::Offset => {
                write!(f, "[{}", self.base)?;
                if !self.offset.is_zero() {
                    offset(f)?;
                }
                write!(f, "]")
            }
            IndexMode::PreWriteback => {
                write!(f, "[{}", self.base)?;
                offset(f)?;
                write!(f, "]!")
            }
            IndexMode::PostIndex => {
                write!(f, "[{}]", self.base)?;
                offset(f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotated_imm_round_trip_common_constants() {
        for value in [
            0u32,
            1,
            2,
            0xff,
            0x100,
            0xff00,
            0xff_0000,
            0xff00_0000,
            0xf000_000f,
            0x240,
            200,
            63,
        ] {
            let imm = RotatedImm::encode(value)
                .unwrap_or_else(|| panic!("0x{value:08x} should be encodable"));
            assert_eq!(imm.value(), value);
        }
    }

    #[test]
    fn rotated_imm_rejects_wide_values() {
        assert!(RotatedImm::encode(0x101).is_none());
        assert!(RotatedImm::encode(0x1234_5678).is_none());
        assert!(RotatedImm::encode(0xffff_ffff).is_none());
        // Unlike A32 (rotation granularity 2), this ISA rotates in steps of
        // four bits, so a byte value straddling a nibble boundary does not
        // encode.
        assert!(RotatedImm::encode(0x3fc).is_none());
    }

    #[test]
    fn rotated_imm_field_round_trip() {
        let imm = RotatedImm::encode(0xff00_0000).unwrap();
        let (imm8, rot) = imm.fields();
        assert_eq!(RotatedImm::from_fields(imm8, rot), imm);
    }

    #[test]
    fn operand2_reads() {
        let none: Vec<Reg> = Operand2::Imm(4).reads().collect();
        assert!(none.is_empty());
        let one: Vec<Reg> = Operand2::Reg(Reg::R3).reads().collect();
        assert_eq!(one, vec![Reg::R3]);
        let shifted = Operand2::ShiftedReg {
            rm: Reg::R1,
            kind: ShiftKind::Lsl,
            amount: ShiftAmount::Reg(Reg::R2),
        };
        let two: Vec<Reg> = shifted.reads().collect();
        assert_eq!(two, vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn addr_mode_display() {
        assert_eq!(AddrMode::base(Reg::R1).to_string(), "[r1]");
        assert_eq!(
            AddrMode::imm_offset(Reg::R1, 8).unwrap().to_string(),
            "[r1, #8]"
        );
        assert_eq!(
            AddrMode::imm_offset(Reg::R1, -8).unwrap().to_string(),
            "[r1, #-8]"
        );
        assert_eq!(
            AddrMode::reg_offset(Reg::R2, Reg::R3).to_string(),
            "[r2, r3]"
        );
        let pre = AddrMode {
            base: Reg::R1,
            offset: MemOffset::Imm(4),
            index: IndexMode::PreWriteback,
        };
        assert_eq!(pre.to_string(), "[r1, #4]!");
        let post = AddrMode {
            base: Reg::R1,
            offset: MemOffset::Imm(4),
            index: IndexMode::PostIndex,
        };
        assert_eq!(post.to_string(), "[r1], #4");
    }

    #[test]
    fn addr_mode_offset_range() {
        assert!(AddrMode::imm_offset(Reg::R0, 1023).is_ok());
        assert!(AddrMode::imm_offset(Reg::R0, 1024).is_err());
        assert!(AddrMode::imm_offset(Reg::R0, -1024).is_err());
    }

    #[test]
    fn addr_mode_reads_and_writeback() {
        let m = AddrMode::reg_offset(Reg::R2, Reg::R3);
        let reads: Vec<Reg> = m.reads().collect();
        assert_eq!(reads, vec![Reg::R2, Reg::R3]);
        assert!(!m.writes_base());
        let pre = AddrMode {
            base: Reg::R1,
            offset: MemOffset::Imm(4),
            index: IndexMode::PreWriteback,
        };
        assert!(pre.writes_base());
    }
}
