//! Property tests for the buffer pool: pin/unpin balance, eviction
//! invariants, and concurrent interleavings at several pool sizes.
//!
//! The pool's contract has three load-bearing clauses the trace store
//! relies on:
//!
//! 1. **Pin accounting** — `pinned()` equals the number of live
//!    [`PinnedPage`] guards at every instant, and a pinned frame is
//!    never evicted or invalidated;
//! 2. **Bounded residency** — `len() <= capacity` after every
//!    operation, with [`StoreError::PoolExhausted`] exactly when a miss
//!    arrives while every frame is pinned;
//! 3. **Coherence** — a fetch always yields the bytes `load` would
//!    produce for that page, whether served from a frame or loaded.
//!
//! [`PinnedPage`]: sca_store::PinnedPage

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sca_store::{BufferPool, PinnedPage, StoreError};

/// The canonical content of a page in these tests: a recognizable
/// page-indexed byte pattern long enough to catch slot mix-ups.
fn page_bytes(page: u64) -> Vec<u8> {
    (0..16)
        .map(|i| (page as u8).wrapping_mul(31).wrapping_add(i))
        .collect()
}

fn load(page: u64) -> impl FnOnce() -> Result<Vec<u8>, StoreError> {
    move || Ok(page_bytes(page))
}

/// One scripted pool operation.
#[derive(Clone, Debug)]
enum Op {
    /// Fetch a page and keep the guard.
    Hold(u64),
    /// Fetch a page and drop the guard immediately.
    Touch(u64),
    /// Drop the oldest held guard (no-op when none are held).
    Release,
    /// Invalidate a page's frame.
    Invalidate(u64),
}

fn arb_op(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages).prop_map(Op::Hold),
        (0..pages).prop_map(Op::Touch),
        Just(Op::Release),
        (0..pages).prop_map(Op::Invalidate),
    ]
}

/// Replays a script against a pool, checking the model after every
/// step. The model only tracks what the contract promises: the multiset
/// of pinned pages — residency of *unpinned* frames is the pool's own
/// business (clock order is an implementation detail).
fn check_script(capacity: usize, ops: &[Op]) {
    let pool = BufferPool::new(capacity);
    let mut held: Vec<PinnedPage<'_>> = Vec::new();
    // page -> live guard count
    let mut pins: BTreeMap<u64, usize> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Hold(page) | Op::Touch(page) => {
                let distinct_pinned: BTreeSet<u64> = pins.keys().copied().collect();
                let must_fail =
                    distinct_pinned.len() >= pool.capacity() && !distinct_pinned.contains(page);
                match pool.fetch(*page, load(*page)) {
                    Ok(guard) => {
                        assert!(!must_fail, "fetch({page}) succeeded with all frames pinned");
                        assert_eq!(&*guard, &page_bytes(*page)[..], "wrong bytes for {page}");
                        assert_eq!(guard.page_index(), *page);
                        if matches!(op, Op::Hold(_)) {
                            *pins.entry(*page).or_insert(0) += 1;
                            held.push(guard);
                        }
                    }
                    Err(StoreError::PoolExhausted) => {
                        assert!(must_fail, "spurious exhaustion fetching {page}");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            Op::Release => {
                if !held.is_empty() {
                    let guard = held.remove(0);
                    let page = guard.page_index();
                    let count = pins.get_mut(&page).expect("held page is tracked");
                    *count -= 1;
                    if *count == 0 {
                        pins.remove(&page);
                    }
                    drop(guard);
                }
            }
            Op::Invalidate(page) => {
                let dropped = pool.invalidate(*page);
                assert!(
                    !(dropped && pins.contains_key(page)),
                    "invalidate({page}) dropped a pinned frame"
                );
            }
        }
        // Invariants that hold after every operation.
        assert!(pool.len() <= pool.capacity(), "residency exceeded capacity");
        let expected_pins: usize = pins.values().sum();
        assert_eq!(pool.pinned(), expected_pins, "pin accounting diverged");
        assert_eq!(pool.pinned(), held.len());
        // Every pinned page is resident: re-fetching it must hit, not
        // reload (hit count strictly increases, miss count does not).
        if let Some(&page) = pins.keys().next() {
            let before = pool.stats();
            let again = pool
                .fetch(page, || panic!("pinned page {page} was not resident"))
                .expect("re-fetch of a pinned page cannot exhaust the pool");
            drop(again);
            let after = pool.stats();
            assert_eq!(after.hits, before.hits + 1);
            assert_eq!(after.misses, before.misses);
        }
    }

    drop(held);
    assert_eq!(pool.pinned(), 0, "guards leaked pins");
    let stats = pool.stats();
    assert!(
        stats.evictions <= stats.misses,
        "every eviction is caused by a loading miss: {stats:?}"
    );
}

proptest! {
    /// Clause-by-clause model check over random scripts at pool sizes
    /// from degenerate (1 frame) to comfortably larger than the working
    /// set.
    #[test]
    fn pool_respects_pins_capacity_and_coherence(
        capacity in 1usize..6,
        ops in proptest::collection::vec(arb_op(10), 1..60),
    ) {
        check_script(capacity, &ops);
    }

    /// Touch-only traffic (no held guards) can never exhaust the pool,
    /// at any capacity, and the counters add up: every fetch is a hit
    /// or a miss.
    #[test]
    fn unpinned_traffic_never_exhausts(
        capacity in 1usize..5,
        pages in proptest::collection::vec(0u64..32, 1..80),
    ) {
        let pool = BufferPool::new(capacity);
        for &page in &pages {
            let guard = pool.fetch(page, load(page)).expect("no pins, no exhaustion");
            assert_eq!(&*guard, &page_bytes(page)[..]);
        }
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, pages.len() as u64);
        assert!(stats.evictions <= stats.misses);
        assert!(pool.len() <= capacity);
        assert_eq!(pool.pinned(), 0);
    }
}

/// Concurrent interleavings: hammer one pool from several threads at
/// several pool sizes, each thread holding up to two guards at a time.
/// Thread count times guards-per-thread stays below every tested
/// capacity's worst case only for the largest pool — the smaller pools
/// exercise the exhaustion path concurrently, which must surface as
/// `PoolExhausted`, never as a wrong page or a torn buffer.
#[test]
fn concurrent_interleavings_preserve_coherence() {
    const THREADS: u64 = 8;
    const ITERS: u64 = 300;
    for capacity in [1usize, 2, 4, 16] {
        let pool = Arc::new(BufferPool::new(capacity));
        let loads = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pool = Arc::clone(&pool);
                let loads = Arc::clone(&loads);
                scope.spawn(move || {
                    // Deterministic per-thread page walk (LCG).
                    let mut x = t.wrapping_mul(0x9e37_79b9) | 1;
                    let mut held: Vec<PinnedPage<'_>> = Vec::new();
                    for _ in 0..ITERS {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let page = (x >> 33) % 13;
                        match pool.fetch(page, || {
                            loads.fetch_add(1, Ordering::Relaxed);
                            Ok(page_bytes(page))
                        }) {
                            Ok(guard) => {
                                assert_eq!(&*guard, &page_bytes(page)[..], "torn or wrong page");
                                if x & 4 == 0 {
                                    held.push(guard);
                                    if held.len() > 2 {
                                        held.remove(0);
                                    }
                                }
                            }
                            // Small pools under concurrent pins may
                            // legitimately exhaust; drop what we hold
                            // and move on.
                            Err(StoreError::PoolExhausted) => held.clear(),
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
        });
        assert_eq!(pool.pinned(), 0, "capacity {capacity}: pins leaked");
        assert!(pool.len() <= capacity);
        let stats = pool.stats();
        assert_eq!(
            stats.misses,
            loads.load(Ordering::Relaxed),
            "capacity {capacity}"
        );
        assert!(stats.hits > 0, "capacity {capacity}: expected some hits");
    }
}
