//! The trace store: one directory holding a corpus of quantized traces
//! in checksummed pages, plus the checkpoint log that makes campaigns
//! over it crash-safe.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::StoreError;
use crate::meta::StoreMeta;
use crate::page::{PageFile, PageGeometry, TraceRecord};
use crate::pool::BufferPool;
use crate::wal::{CheckpointLog, CheckpointRecord};

/// Default number of page buffers the read path keeps resident.
pub const DEFAULT_POOL_FRAMES: usize = 64;

/// A persistent, crash-safe corpus of power traces.
///
/// Appends are per-slot `pwrite`s (idempotent — rewriting a trace
/// produces identical bytes), reads go through a pinning [`BufferPool`],
/// and [`checkpoint`](TraceStore::checkpoint) syncs the pages before
/// logging the claim, so a checkpoint's `high_water` never overstates
/// what is durable.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    meta: StoreMeta,
    geom: PageGeometry,
    pool: BufferPool,
    writers: Mutex<HashMap<u64, Arc<PageFile>>>,
    wal: Mutex<Option<CheckpointLog>>,
}

impl TraceStore {
    /// Creates a store directory for a new corpus, writing its header.
    /// The directory may exist but must not already hold a store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Geometry`] for impossible record shapes and
    /// propagates I/O errors.
    pub fn create(dir: &Path, meta: StoreMeta) -> Result<TraceStore, StoreError> {
        let geom = PageGeometry::new(meta.input_len as usize, meta.samples as usize)?;
        fs::create_dir_all(dir)?;
        let mut meta = meta;
        meta.page_capacity = geom.capacity as u64;
        meta.save(dir)?;
        Ok(TraceStore::assemble(dir, meta, geom))
    }

    /// Opens an existing store, whatever its fingerprint (the caller
    /// inspects [`meta`](TraceStore::meta) — used by merge/re-analysis).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a damaged header, `Io` when
    /// absent, `Geometry` if the header describes an impossible layout.
    pub fn open_any(dir: &Path) -> Result<TraceStore, StoreError> {
        let meta = StoreMeta::load(dir)?;
        let geom = PageGeometry::new(meta.input_len as usize, meta.samples as usize)?;
        if meta.page_capacity != geom.capacity as u64 {
            return Err(StoreError::Geometry {
                what: format!(
                    "header page capacity {} does not match derived {}",
                    meta.page_capacity, geom.capacity
                ),
            });
        }
        Ok(TraceStore::assemble(dir, meta, geom))
    }

    /// Opens an existing store and insists it holds exactly the corpus
    /// described by `expected` (identity fields and layout).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::FingerprintMismatch`] naming the first
    /// differing field, plus everything [`open_any`](Self::open_any)
    /// can return.
    pub fn open(dir: &Path, expected: &StoreMeta) -> Result<TraceStore, StoreError> {
        let store = TraceStore::open_any(dir)?;
        let found = &store.meta;
        if let Some(what) = expected.key.diff(&found.key) {
            return Err(StoreError::FingerprintMismatch { what });
        }
        for (name, want, got) in [
            ("window start", expected.window_start, found.window_start),
            ("samples", expected.samples, found.samples),
            ("total traces", expected.total_traces, found.total_traces),
            ("input length", expected.input_len, found.input_len),
        ] {
            if want != got {
                return Err(StoreError::FingerprintMismatch {
                    what: format!("{name} {got} on disk vs {want} expected"),
                });
            }
        }
        Ok(store)
    }

    /// Opens `dir` as the corpus in `expected` — resuming it when a
    /// store is already there, creating it otherwise.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open) / [`create`](Self::create).
    pub fn open_or_create(dir: &Path, expected: &StoreMeta) -> Result<TraceStore, StoreError> {
        if dir.join(crate::meta::META_FILE).exists() {
            TraceStore::open(dir, expected)
        } else {
            TraceStore::create(dir, expected.clone())
        }
    }

    fn assemble(dir: &Path, meta: StoreMeta, geom: PageGeometry) -> TraceStore {
        TraceStore {
            dir: dir.to_path_buf(),
            meta,
            geom,
            pool: BufferPool::new(DEFAULT_POOL_FRAMES),
            writers: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
        }
    }

    /// The store's header.
    #[must_use]
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The store's record layout.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geom
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn writer(&self, page_index: u64) -> Result<Arc<PageFile>, StoreError> {
        let mut writers = self.writers.lock().expect("writers lock");
        if let Some(page) = writers.get(&page_index) {
            return Ok(Arc::clone(page));
        }
        let page = Arc::new(PageFile::open_or_create(&self.dir, self.geom, page_index)?);
        writers.insert(page_index, Arc::clone(&page));
        Ok(page)
    }

    fn check_shape(&self, index: u64, input: &[u8], trace: &[f32]) -> Result<(), StoreError> {
        if input.len() != self.geom.input_len || trace.len() != self.geom.samples {
            return Err(StoreError::Geometry {
                what: format!(
                    "append of {} input bytes x {} samples into a {} x {} store",
                    input.len(),
                    trace.len(),
                    self.geom.input_len,
                    self.geom.samples
                ),
            });
        }
        if index >= self.meta.total_traces {
            return Err(StoreError::Geometry {
                what: format!(
                    "trace index {index} out of range (store holds {})",
                    self.meta.total_traces
                ),
            });
        }
        Ok(())
    }

    /// Writes trace `index`. Safe to call from several shard workers at
    /// once, and idempotent for a fixed `(seed, index)` trace.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Geometry`] on shape mismatch and propagates
    /// I/O errors.
    pub fn append(&self, index: u64, input: &[u8], trace: &[f32]) -> Result<(), StoreError> {
        self.check_shape(index, input, trace)?;
        let page_index = self.geom.page_of(index);
        self.writer(page_index)?
            .write_slot(self.geom.slot_of(index), input, trace)?;
        self.pool.invalidate(page_index);
        sca_telemetry::counter!("store/slots_written").inc();
        Ok(())
    }

    /// Fault injection: writes only a prefix of trace `index`'s record,
    /// simulating a crash mid-write.
    ///
    /// # Errors
    ///
    /// As [`append`](Self::append).
    pub fn append_torn(
        &self,
        index: u64,
        input: &[u8],
        trace: &[f32],
        keep_bytes: usize,
    ) -> Result<(), StoreError> {
        self.check_shape(index, input, trace)?;
        let page_index = self.geom.page_of(index);
        self.writer(page_index)?.write_slot_torn(
            self.geom.slot_of(index),
            input,
            trace,
            keep_bytes,
        )?;
        self.pool.invalidate(page_index);
        Ok(())
    }

    /// Flushes every page written through this handle to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync_pages(&self) -> Result<(), StoreError> {
        let writers = self.writers.lock().expect("writers lock");
        for page in writers.values() {
            page.sync()?;
        }
        Ok(())
    }

    fn with_wal<T>(
        &self,
        f: impl FnOnce(&mut CheckpointLog) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut wal = self.wal.lock().expect("wal lock");
        if wal.is_none() {
            *wal = Some(CheckpointLog::open(&self.dir)?);
        }
        f(wal.as_mut().expect("wal opened"))
    }

    /// Durably records that traces `0..high_water` are on disk and
    /// folded into the serialized sink `state`: pages are synced first,
    /// then the claim is appended to the log.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn checkpoint(
        &self,
        high_water: u64,
        analysis_tag: u64,
        state: Vec<u8>,
    ) -> Result<(), StoreError> {
        self.sync_pages()?;
        sca_telemetry::counter!("store/checkpoint_bytes").add(state.len() as u64);
        self.with_wal(|wal| {
            wal.append(&CheckpointRecord {
                high_water,
                analysis_tag,
                state,
            })
        })
    }

    /// Fault injection: like [`checkpoint`](Self::checkpoint) but tears
    /// the log record after `keep_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn checkpoint_torn(
        &self,
        high_water: u64,
        analysis_tag: u64,
        state: Vec<u8>,
        keep_bytes: usize,
    ) -> Result<(), StoreError> {
        self.sync_pages()?;
        self.with_wal(|wal| {
            wal.append_torn(
                &CheckpointRecord {
                    high_water,
                    analysis_tag,
                    state,
                },
                keep_bytes,
            )
        })
    }

    /// The most recent valid checkpoint for `analysis_tag`, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from the log scan.
    pub fn last_checkpoint(
        &self,
        analysis_tag: u64,
    ) -> Result<Option<CheckpointRecord>, StoreError> {
        CheckpointLog::last(&self.dir, analysis_tag)
    }

    /// Reads trace `index`, or `None` when its slot has never been
    /// (fully) written.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Geometry`] for out-of-range indices and
    /// propagates I/O errors; a missing page file reads as `None`.
    pub fn read_trace(&self, index: u64) -> Result<Option<TraceRecord>, StoreError> {
        if index >= self.meta.total_traces {
            return Err(StoreError::Geometry {
                what: format!(
                    "trace index {index} out of range (store holds {})",
                    self.meta.total_traces
                ),
            });
        }
        let page_index = self.geom.page_of(index);
        // A page file that was never created holds no traces; the pool
        // can only have it resident if it once existed on disk.
        if !PageFile::path(&self.dir, page_index).exists() {
            return Ok(None);
        }
        let page = self.fetch_page(page_index)?;
        Ok(self
            .geom
            .decode_slot(page_index, self.geom.slot_of(index), &page))
    }

    fn fetch_page(&self, page_index: u64) -> Result<crate::pool::PinnedPage<'_>, StoreError> {
        self.pool.fetch(page_index, || {
            PageFile::open_existing(&self.dir, self.geom, page_index)?.read_page()
        })
    }

    /// Per-trace validity bitmap over the whole declared corpus.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (missing pages read as all-invalid).
    pub fn coverage(&self) -> Result<Vec<bool>, StoreError> {
        let total = self.meta.total_traces;
        let mut covered = vec![false; total as usize];
        let mut page_index = 0u64;
        while page_index * self.geom.capacity as u64 <= total {
            let first = page_index * self.geom.capacity as u64;
            if first >= total {
                break;
            }
            if PageFile::path(&self.dir, page_index).exists() {
                let page = self.fetch_page(page_index)?;
                for slot in 0..self.geom.capacity {
                    let index = first + slot as u64;
                    if index >= total {
                        break;
                    }
                    covered[index as usize] =
                        self.geom.decode_slot(page_index, slot, &page).is_some();
                }
            }
            page_index += 1;
        }
        Ok(covered)
    }

    /// How many of the declared traces are durably present.
    ///
    /// # Errors
    ///
    /// As [`coverage`](Self::coverage).
    pub fn valid_count(&self) -> Result<u64, StoreError> {
        Ok(self.coverage()?.iter().filter(|&&c| c).count() as u64)
    }

    /// Whether every declared trace is present.
    ///
    /// # Errors
    ///
    /// As [`coverage`](Self::coverage).
    pub fn is_complete(&self) -> Result<bool, StoreError> {
        Ok(self.coverage()?.iter().all(|&c| c))
    }

    /// Streams traces `range` in strictly increasing index order through
    /// `visit(index, input, samples)` — the re-analysis hot path. Page
    /// buffers come from the pool, so repeated streams of a small corpus
    /// do no repeat I/O.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Incomplete`] at the first missing trace and
    /// propagates I/O errors and `visit` failures.
    pub fn stream<E: From<StoreError>>(
        &self,
        range: std::ops::Range<u64>,
        mut visit: impl FnMut(u64, &[u8], &[f32]) -> Result<(), E>,
    ) -> Result<(), E> {
        let total = self.meta.total_traces;
        for index in range {
            if index >= total {
                return Err(StoreError::Geometry {
                    what: format!("stream index {index} out of range (store holds {total})"),
                }
                .into());
            }
            let (input, trace) = self.read_trace(index)?.ok_or(StoreError::Incomplete {
                missing: index,
                total,
            })?;
            visit(index, &input, &trace)?;
        }
        Ok(())
    }

    /// Copies every valid trace of `other` into this store. Both must
    /// describe the identical corpus; because slot writes are idempotent
    /// encodings of identical traces, merging is a plain set union —
    /// commutative and order-independent by construction.
    ///
    /// Returns how many traces were copied.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::FingerprintMismatch`] when the stores
    /// disagree, and propagates I/O errors.
    pub fn merge_from(&self, other: &TraceStore) -> Result<u64, StoreError> {
        if let Some(what) = self.meta.key.diff(&other.meta.key) {
            return Err(StoreError::FingerprintMismatch { what });
        }
        if self.meta.window_start != other.meta.window_start
            || self.meta.samples != other.meta.samples
            || self.meta.total_traces != other.meta.total_traces
            || self.meta.input_len != other.meta.input_len
        {
            return Err(StoreError::FingerprintMismatch {
                what: "window or layout differs".to_owned(),
            });
        }
        let mut copied = 0u64;
        let covered = other.coverage()?;
        for (index, &present) in covered.iter().enumerate() {
            if !present {
                continue;
            }
            let (input, trace) = other
                .read_trace(index as u64)?
                .expect("coverage said present");
            self.append(index as u64, &input, &trace)?;
            copied += 1;
        }
        self.sync_pages()?;
        Ok(copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::CorpusKey;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(total: u64) -> StoreMeta {
        StoreMeta {
            key: CorpusKey {
                label: "unit".to_owned(),
                seed: 7,
                noise_sd_bits: 0.5f64.to_bits(),
                noise_baseline_bits: 1.0f64.to_bits(),
                executions_per_trace: 2,
            },
            window_start: 0,
            samples: 9,
            window_cycles: 9,
            total_traces: total,
            input_len: 4,
            page_capacity: 0, // filled in by create()
        }
    }

    fn trace_for(index: u64) -> (Vec<u8>, Vec<f32>) {
        let input = (index as u32).to_le_bytes().to_vec();
        let trace = (0..9).map(|s| (index * 100 + s) as f32 * 0.5).collect();
        (input, trace)
    }

    fn fill(store: &TraceStore, range: std::ops::Range<u64>) {
        for index in range {
            let (input, trace) = trace_for(index);
            store.append(index, &input, &trace).unwrap();
        }
    }

    #[test]
    fn append_stream_and_coverage_agree() {
        let dir = scratch("sca_store_store_basic");
        let store = TraceStore::create(&dir, meta(10)).unwrap();
        fill(&store, 0..6);
        assert_eq!(store.valid_count().unwrap(), 6);
        assert!(!store.is_complete().unwrap());
        let mut seen = Vec::new();
        store
            .stream::<StoreError>(0..6, |index, input, trace| {
                let (want_input, want_trace) = trace_for(index);
                assert_eq!(input, &want_input[..]);
                assert_eq!(trace, &want_trace[..]);
                seen.push(index);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        // Streaming past the filled prefix names the first hole.
        let err = store
            .stream::<StoreError>(0..10, |_, _, _| Ok(()))
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::Incomplete {
                missing: 6,
                total: 10
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_checks_the_fingerprint() {
        let dir = scratch("sca_store_store_fp");
        drop(TraceStore::create(&dir, meta(10)).unwrap());
        assert!(TraceStore::open(&dir, &meta(10)).is_ok());
        let mut other = meta(10);
        other.key.seed ^= 1;
        assert!(matches!(
            TraceStore::open(&dir, &other),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        let mut resized = meta(11);
        resized.page_capacity = 0;
        assert!(matches!(
            TraceStore::open(&dir, &resized),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_round_trip_per_analysis() {
        let dir = scratch("sca_store_store_ckpt");
        let store = TraceStore::create(&dir, meta(10)).unwrap();
        fill(&store, 0..4);
        store.checkpoint(4, 11, vec![1, 2, 3]).unwrap();
        store.checkpoint(4, 22, vec![9]).unwrap();
        fill(&store, 4..8);
        store.checkpoint(8, 11, vec![4, 5]).unwrap();
        let ck = store.last_checkpoint(11).unwrap().unwrap();
        assert_eq!((ck.high_water, ck.state), (8, vec![4, 5]));
        let ck = store.last_checkpoint(22).unwrap().unwrap();
        assert_eq!((ck.high_water, ck.state), (4, vec![9]));
        assert_eq!(store.last_checkpoint(33).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_a_union_and_order_independent() {
        let dir_a = scratch("sca_store_store_merge_a");
        let dir_b = scratch("sca_store_store_merge_b");
        let dir_c = scratch("sca_store_store_merge_c");
        let a = TraceStore::create(&dir_a, meta(10)).unwrap();
        let b = TraceStore::create(&dir_b, meta(10)).unwrap();
        fill(&a, 0..5);
        fill(&b, 3..10); // overlap on 3..5 writes identical bytes
        let c = TraceStore::create(&dir_c, meta(10)).unwrap();
        assert_eq!(c.merge_from(&b).unwrap(), 7);
        assert_eq!(c.merge_from(&a).unwrap(), 5);
        assert!(c.is_complete().unwrap());
        c.stream::<StoreError>(0..10, |index, input, trace| {
            let (want_input, want_trace) = trace_for(index);
            assert_eq!((input, trace), (&want_input[..], &want_trace[..]));
            Ok(())
        })
        .unwrap();
        for dir in [&dir_a, &dir_b, &dir_c] {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn merge_refuses_foreign_corpora() {
        let dir_a = scratch("sca_store_store_merge_fa");
        let dir_b = scratch("sca_store_store_merge_fb");
        let a = TraceStore::create(&dir_a, meta(10)).unwrap();
        let mut foreign = meta(10);
        foreign.key.label = "other".to_owned();
        let b = TraceStore::create(&dir_b, foreign).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn torn_append_reads_as_missing_until_rewritten() {
        let dir = scratch("sca_store_store_torn");
        let store = TraceStore::create(&dir, meta(10)).unwrap();
        let (input, trace) = trace_for(2);
        store.append_torn(2, &input, &trace, 5).unwrap();
        assert_eq!(store.read_trace(2).unwrap(), None);
        store.append(2, &input, &trace).unwrap();
        assert_eq!(store.read_trace(2).unwrap(), Some((input, trace)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_violations_are_rejected() {
        let dir = scratch("sca_store_store_shape");
        let store = TraceStore::create(&dir, meta(4)).unwrap();
        let (input, trace) = trace_for(0);
        assert!(matches!(
            store.append(0, &input[..2], &trace),
            Err(StoreError::Geometry { .. })
        ));
        assert!(matches!(
            store.append(4, &input, &trace),
            Err(StoreError::Geometry { .. })
        ));
        assert!(matches!(
            store.read_trace(4),
            Err(StoreError::Geometry { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
