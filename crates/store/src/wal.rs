//! The write-ahead checkpoint log.
//!
//! An append-only file of framed records, each carrying the campaign's
//! high-water trace index and a serialized sink snapshot. Records are
//! `[payload_len][checksum][payload]`; a crash mid-append leaves a torn
//! tail that fails its checksum, so a scan stops at the first invalid
//! frame and resume recovers from the last checkpoint that was fully
//! written. Opening the log for append first truncates the torn tail so
//! the resumed run's own records never land after garbage.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use crate::error::{fnv1a64, StoreError};

/// File name of the checkpoint log inside a store directory.
pub const WAL_FILE: &str = "checkpoints.wal";

const WAL_MAGIC: &[u8; 4] = b"SCWL";
const WAL_VERSION: u32 = 1;
const WAL_HEADER_BYTES: usize = 8;

/// Hashes an analysis name into the tag stored with each checkpoint, so
/// one corpus can carry interleaved checkpoints for several analyses
/// (per leakage model, TVLA) without restoring the wrong sink state.
#[must_use]
pub fn analysis_tag(name: &str) -> u64 {
    fnv1a64(name.as_bytes())
}

/// One recovered checkpoint: every trace below `high_water` is durable
/// in the page files, and `state` restores the analysis sink to the
/// exact bit pattern it had at that boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Traces `0..high_water` are on disk and folded into `state`.
    pub high_water: u64,
    /// Which analysis this snapshot belongs to (see [`analysis_tag`]).
    pub analysis_tag: u64,
    /// Serialized sink state (exact `f64` bit patterns).
    pub state: Vec<u8>,
}

impl CheckpointRecord {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + self.state.len());
        payload.extend_from_slice(&self.high_water.to_le_bytes());
        payload.extend_from_slice(&self.analysis_tag.to_le_bytes());
        payload.extend_from_slice(&self.state);
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Scan result: the records that validate, in file order, plus the byte
/// length of the valid prefix.
#[derive(Debug, Default)]
struct Scan {
    records: Vec<CheckpointRecord>,
    valid_len: u64,
}

fn scan(bytes: &[u8]) -> Result<Scan, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt {
        file: WAL_FILE,
        what: what.to_owned(),
    };
    if bytes.len() < WAL_HEADER_BYTES || &bytes[..4] != WAL_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let mut out = Scan {
        records: Vec::new(),
        valid_len: WAL_HEADER_BYTES as u64,
    };
    let mut at = WAL_HEADER_BYTES;
    loop {
        // Anything that fails to parse from here on is a torn tail:
        // stop, keeping what validated so far.
        if at + 16 > bytes.len() {
            break;
        }
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        let Some(end) = (at + 16).checked_add(len) else {
            break;
        };
        if end > bytes.len() || len < 16 {
            break;
        }
        let payload = &bytes[at + 16..end];
        if fnv1a64(payload) != checksum {
            break;
        }
        out.records.push(CheckpointRecord {
            high_water: u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
            analysis_tag: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
            state: payload[16..].to_vec(),
        });
        at = end;
        out.valid_len = at as u64;
    }
    Ok(out)
}

/// The open checkpoint log of one store directory.
#[derive(Debug)]
pub struct CheckpointLog {
    file: std::fs::File,
}

impl CheckpointLog {
    /// Opens (creating if needed) the log for appending. A torn tail
    /// left by a crash is truncated away first.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when the header itself is
    /// damaged, and propagates I/O errors.
    pub fn open(dir: &Path) -> Result<CheckpointLog, StoreError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
        } else {
            let bytes = std::fs::read(&path)?;
            let valid = scan(&bytes)?;
            if valid.valid_len < len {
                file.set_len(valid.valid_len)?;
                file.sync_all()?;
            }
        }
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(CheckpointLog { file })
    }

    /// Appends one checkpoint record and fsyncs. The caller must have
    /// synced the page files covering `record.high_water` first — the
    /// write-ahead contract is "pages durable, then the claim".
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<(), StoreError> {
        self.file.write_all(&record.encode())?;
        self.file.sync_all()?;
        sca_telemetry::counter!("store/wal_fsyncs").inc();
        Ok(())
    }

    /// Fault injection: appends only the first `keep_bytes` of the
    /// framed record, simulating a crash mid-checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_torn(
        &mut self,
        record: &CheckpointRecord,
        keep_bytes: usize,
    ) -> Result<(), StoreError> {
        let bytes = record.encode();
        let keep = keep_bytes.min(bytes.len());
        self.file.write_all(&bytes[..keep])?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Reads the most recent valid checkpoint for `analysis_tag`, or
    /// `None` when the log is missing or holds none for that analysis.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a damaged header and
    /// propagates I/O errors other than `NotFound`.
    pub fn last(dir: &Path, analysis_tag: u64) -> Result<Option<CheckpointRecord>, StoreError> {
        let bytes = match std::fs::read(dir.join(WAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let valid = scan(&bytes)?;
        Ok(valid
            .records
            .into_iter()
            .rev()
            .find(|r| r.analysis_tag == analysis_tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(high_water: u64, tag: u64) -> CheckpointRecord {
        CheckpointRecord {
            high_water,
            analysis_tag: tag,
            state: vec![high_water as u8; 5],
        }
    }

    #[test]
    fn last_returns_the_newest_record_per_tag() {
        let dir = scratch("sca_store_wal_last");
        let mut log = CheckpointLog::open(&dir).unwrap();
        log.append(&record(10, 1)).unwrap();
        log.append(&record(10, 2)).unwrap();
        log.append(&record(20, 1)).unwrap();
        assert_eq!(CheckpointLog::last(&dir, 1).unwrap(), Some(record(20, 1)));
        assert_eq!(CheckpointLog::last(&dir, 2).unwrap(), Some(record(10, 2)));
        assert_eq!(CheckpointLog::last(&dir, 3).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_reopen() {
        let dir = scratch("sca_store_wal_torn");
        let full_len;
        {
            let mut log = CheckpointLog::open(&dir).unwrap();
            log.append(&record(10, 1)).unwrap();
            full_len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
            log.append_torn(&record(20, 1), 9).unwrap();
        }
        // The torn record does not shadow the valid one...
        assert_eq!(CheckpointLog::last(&dir, 1).unwrap(), Some(record(10, 1)));
        // ...and reopening for append truncates it away.
        let mut log = CheckpointLog::open(&dir).unwrap();
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), full_len);
        log.append(&record(30, 1)).unwrap();
        assert_eq!(CheckpointLog::last(&dir, 1).unwrap(), Some(record(30, 1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_torn_prefix_keeps_earlier_records_recoverable() {
        // Sweep all tear lengths of the second record's frame.
        let probe = record(20, 7).encode();
        for keep in 0..probe.len() {
            let dir = scratch(&format!("sca_store_wal_sweep_{keep}"));
            let mut log = CheckpointLog::open(&dir).unwrap();
            log.append(&record(10, 7)).unwrap();
            log.append_torn(&record(20, 7), keep).unwrap();
            let last = CheckpointLog::last(&dir, 7).unwrap().unwrap();
            if keep == probe.len() {
                assert_eq!(last.high_water, 20);
            } else {
                assert_eq!(last.high_water, 10, "keep={keep}");
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn missing_log_reads_as_no_checkpoint() {
        let dir = scratch("sca_store_wal_missing");
        assert_eq!(CheckpointLog::last(&dir, 1).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_header_is_corrupt_not_empty() {
        let dir = scratch("sca_store_wal_header");
        drop(CheckpointLog::open(&dir).unwrap());
        fs::write(dir.join(WAL_FILE), b"XXXXYYYY").unwrap();
        assert!(matches!(
            CheckpointLog::last(&dir, 1),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
