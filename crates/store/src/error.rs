//! Typed store errors.
//!
//! Every error is `Clone` (I/O errors are captured as kind + message) so
//! the campaign layers can keep their `Clone` error enums.

use std::fmt;
use std::io;

/// Why a store operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O failure, captured as `kind: message`.
    Io(String),
    /// A file exists but its magic/version/checksum is wrong.
    Corrupt {
        /// Which store file is damaged.
        file: &'static str,
        /// What was wrong with it.
        what: String,
    },
    /// The store on disk was produced by a different campaign
    /// configuration than the one trying to use it.
    FingerprintMismatch {
        /// Human-readable description of the first differing field.
        what: String,
    },
    /// A read path (streaming, merging) needs traces the store does not
    /// hold.
    Incomplete {
        /// First missing trace index.
        missing: u64,
        /// Total traces the store is declared to hold.
        total: u64,
    },
    /// An append disagreed with the store geometry (input length or
    /// samples per trace).
    Geometry {
        /// What disagreed.
        what: String,
    },
    /// Every buffer-pool frame is pinned; nothing can be evicted.
    PoolExhausted,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(message) => write!(f, "store I/O error: {message}"),
            StoreError::Corrupt { file, what } => write!(f, "corrupt store file '{file}': {what}"),
            StoreError::FingerprintMismatch { what } => {
                write!(f, "store fingerprint mismatch: {what}")
            }
            StoreError::Incomplete { missing, total } => write!(
                f,
                "store is incomplete: trace {missing} of {total} is not covered"
            ),
            StoreError::Geometry { what } => write!(f, "store geometry violation: {what}"),
            StoreError::PoolExhausted => {
                f.write_str("buffer pool exhausted: every frame is pinned")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(format!("{}: {e}", e.kind()))
    }
}

/// FNV-1a 64-bit hash — the store's checksum primitive. Not
/// cryptographic; it only has to catch torn writes and bit rot.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Continues an FNV-1a 64 hash from a prior state (for checksums over
/// several disjoint fields without concatenating them).
#[must_use]
pub fn fnv1a64_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_continue_equals_concatenation() {
        let whole = fnv1a64(b"hello world");
        let parts = fnv1a64_continue(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, parts);
    }

    #[test]
    fn io_errors_convert_and_display() {
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"), "{e}");
    }
}
