//! A small buffer pool over page buffers: bounded frames, pin counts,
//! and clock (second-chance) eviction.
//!
//! Readers [`fetch`](BufferPool::fetch) a page and hold it through a
//! [`PinnedPage`] guard; while any guard is live the frame cannot be
//! evicted. Unpinned frames carry a reference bit that the clock hand
//! clears on its first pass and evicts on its second, approximating LRU
//! without per-access list surgery.

use std::sync::{Arc, Mutex};

use crate::error::StoreError;

/// Running pool counters, exposed for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to load the page.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

#[derive(Debug)]
struct Frame {
    page_index: u64,
    buf: Arc<Vec<u8>>,
    pins: usize,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Inner {
    frames: Vec<Frame>,
    hand: usize,
    stats: PoolStats,
}

/// A bounded cache of page buffers with pinning and clock eviction.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` frames (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Maximum resident frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("pool lock").frames.len()
    }

    /// Whether no frames are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock").stats
    }

    /// Sum of pin counts across resident frames.
    #[must_use]
    pub fn pinned(&self) -> usize {
        let inner = self.inner.lock().expect("pool lock");
        inner.frames.iter().map(|f| f.pins).sum()
    }

    /// Returns page `page_index` pinned, loading it with `load` on a
    /// miss (evicting an unpinned frame first when the pool is full).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::PoolExhausted`] when the pool is full and
    /// every frame is pinned, and propagates `load` failures.
    pub fn fetch(
        &self,
        page_index: u64,
        load: impl FnOnce() -> Result<Vec<u8>, StoreError>,
    ) -> Result<PinnedPage<'_>, StoreError> {
        let mut inner = self.inner.lock().expect("pool lock");
        if let Some(at) = inner.frames.iter().position(|f| f.page_index == page_index) {
            let frame = &mut inner.frames[at];
            frame.pins += 1;
            frame.referenced = true;
            let buf = Arc::clone(&frame.buf);
            inner.stats.hits += 1;
            sca_telemetry::counter!("store/page_hits").inc();
            return Ok(PinnedPage {
                pool: self,
                page_index,
                buf,
            });
        }
        if inner.frames.len() >= self.capacity {
            Self::evict_one(&mut inner)?;
        }
        // Load while holding the lock: fetches are serialized, which is
        // the price of a single-mutex pool and fine at store page sizes.
        let buf = Arc::new(load()?);
        inner.stats.misses += 1;
        sca_telemetry::counter!("store/page_misses").inc();
        inner.frames.push(Frame {
            page_index,
            buf: Arc::clone(&buf),
            pins: 1,
            referenced: true,
        });
        Ok(PinnedPage {
            pool: self,
            page_index,
            buf,
        })
    }

    /// Drops the frame caching `page_index`, if resident and unpinned —
    /// writers call this after changing a page on disk so readers do not
    /// see stale bytes. Returns whether a frame was dropped.
    pub fn invalidate(&self, page_index: u64) -> bool {
        let mut inner = self.inner.lock().expect("pool lock");
        if let Some(at) = inner.frames.iter().position(|f| f.page_index == page_index) {
            if inner.frames[at].pins == 0 {
                inner.frames.swap_remove(at);
                inner.hand = 0;
                return true;
            }
        }
        false
    }

    fn evict_one(inner: &mut Inner) -> Result<(), StoreError> {
        // Two sweeps: the first clears reference bits (second chance),
        // the second takes the first unpinned frame. A frame whose bit
        // was cleared on sweep one is evictable on sweep two, so two
        // full passes always suffice — unless everything is pinned.
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let at = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[at];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            inner.frames.swap_remove(at);
            inner.hand = at % inner.frames.len().max(1);
            inner.stats.evictions += 1;
            sca_telemetry::counter!("store/page_evictions").inc();
            return Ok(());
        }
        Err(StoreError::PoolExhausted)
    }

    fn unpin(&self, page_index: u64) {
        let mut inner = self.inner.lock().expect("pool lock");
        if let Some(frame) = inner.frames.iter_mut().find(|f| f.page_index == page_index) {
            debug_assert!(frame.pins > 0, "unpin without a matching pin");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

/// A pinned page buffer; the frame stays resident until this guard
/// drops.
#[derive(Debug)]
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    page_index: u64,
    buf: Arc<Vec<u8>>,
}

impl PinnedPage<'_> {
    /// The pinned page's index.
    #[must_use]
    pub fn page_index(&self) -> u64 {
        self.page_index
    }
}

impl std::ops::Deref for PinnedPage<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.page_index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(page_index: u64) -> impl FnOnce() -> Result<Vec<u8>, StoreError> {
        move || Ok(vec![page_index as u8; 8])
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = BufferPool::new(2);
        {
            let a = pool.fetch(1, load(1)).unwrap();
            assert_eq!(&*a, &[1u8; 8]);
        }
        let _b = pool.fetch(1, load(1)).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn capacity_is_respected_via_eviction() {
        let pool = BufferPool::new(2);
        for page in 0..5 {
            let _p = pool.fetch(page, load(page)).unwrap();
        }
        assert!(pool.len() <= 2);
        assert_eq!(pool.stats().evictions, 3);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let pool = BufferPool::new(2);
        let a = pool.fetch(0, load(0)).unwrap();
        for page in 1..6 {
            let _p = pool.fetch(page, load(page)).unwrap();
        }
        // Page 0 stayed resident the whole time: re-fetch is a hit.
        let hits_before = pool.stats().hits;
        let again = pool.fetch(0, load(0)).unwrap();
        assert_eq!(pool.stats().hits, hits_before + 1);
        assert_eq!(&*a, &*again);
    }

    #[test]
    fn fully_pinned_pool_reports_exhaustion() {
        let pool = BufferPool::new(2);
        let _a = pool.fetch(0, load(0)).unwrap();
        let _b = pool.fetch(1, load(1)).unwrap();
        assert!(matches!(
            pool.fetch(2, load(2)),
            Err(StoreError::PoolExhausted)
        ));
    }

    #[test]
    fn invalidate_drops_unpinned_frames_only() {
        let pool = BufferPool::new(2);
        let a = pool.fetch(0, load(0)).unwrap();
        assert!(!pool.invalidate(0), "pinned frame must survive");
        drop(a);
        assert!(pool.invalidate(0));
        assert!(!pool.invalidate(0), "already gone");
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn clock_prefers_evicting_the_colder_frame() {
        let pool = BufferPool::new(2);
        {
            let _a = pool.fetch(0, load(0)).unwrap();
            let _b = pool.fetch(1, load(1)).unwrap();
        }
        // Touch page 0 so page 1 is the cold one.
        drop(pool.fetch(0, load(0)).unwrap());
        // Force both reference bits clear, then re-reference page 0.
        drop(pool.fetch(2, load(2)).unwrap()); // evicts something, clears bits
        let resident_after: Vec<u64> = {
            let inner = pool.inner.lock().unwrap();
            inner.frames.iter().map(|f| f.page_index).collect()
        };
        assert!(resident_after.contains(&2));
        assert_eq!(resident_after.len(), 2);
    }
}
