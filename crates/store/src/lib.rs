//! Persistent trace corpus for crash-safe, resumable side-channel
//! campaigns.
//!
//! A trace in this workspace is a pure function of `(seed, index)`, so a
//! corpus is worth keeping: re-analyzing under a new leakage model or
//! window should stream stored samples, not resimulate a superscalar
//! pipeline. This crate provides the storage layer the campaign engine
//! builds that on:
//!
//! * [`meta`] — the index header: a [`CorpusKey`] fingerprint of
//!   `(target, seed, noise profile, executions)` plus the analysis
//!   window and page geometry, checksummed and written atomically.
//! * [`page`] — fixed-size page files of quantized samples. Each slot
//!   carries an FNV-1a checksum salted with its `(page, slot)` home, so
//!   validity is per-record: torn writes damage exactly one slot, and
//!   appends are idempotent single-`pwrite`s with no read-modify-write.
//! * [`pool`] — a bounded buffer pool with pin counts and clock
//!   (second-chance) eviction feeding the streaming read path.
//! * [`wal`] — the write-ahead checkpoint log: framed, checksummed
//!   records of `(high-water trace index, serialized sink state)`;
//!   pages are fsynced *before* the claim is logged, torn tails are
//!   skipped on scan and truncated on reopen.
//! * [`locks`] — [`KeyLocks`], an in-process table of per-key
//!   exclusive locks so shard workers sharing one corpus root serialize
//!   writers per store while distinct stores stay fully concurrent.
//! * [`store`] — [`TraceStore`], tying the layers together with
//!   `append`/`stream`/`checkpoint`/`merge_from`, plus the fault
//!   injection entry points (`append_torn`, `checkpoint_torn`) the
//!   crash-recovery test suite drives.
//!
//! # Determinism contract
//!
//! Because slot encodings are deterministic and traces are functions of
//! `(seed, index)`, rewriting a slot after a crash reproduces identical
//! bytes, and merging partial stores is a plain set union — commutative
//! and order-independent. The campaign layer builds its byte-identical
//! resume/merge verdict guarantees on exactly these two properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod locks;
pub mod meta;
pub mod page;
pub mod pool;
pub mod store;
pub mod wal;

pub use error::{fnv1a64, fnv1a64_continue, StoreError};
pub use locks::{KeyLockGuard, KeyLocks};
pub use meta::{CorpusKey, StoreMeta, META_FILE};
pub use page::{PageFile, PageGeometry, TraceRecord, PAGE_HEADER_BYTES, TARGET_PAGE_BYTES};
pub use pool::{BufferPool, PinnedPage, PoolStats};
pub use store::{TraceStore, DEFAULT_POOL_FRAMES};
pub use wal::{analysis_tag, CheckpointLog, CheckpointRecord, WAL_FILE};
