//! Per-key mutual exclusion for shared corpus directories.
//!
//! A [`TraceStore`](crate::TraceStore) assumes one writer per
//! directory: concurrent appends to the same store would race on page
//! slots and interleave checkpoint records. When many workers share one
//! corpus root — the campaign server's shard pool is the motivating
//! case — each store directory is identified by a stable `u64` key (a
//! fingerprint of its [`CorpusKey`](crate::CorpusKey)), and [`KeyLocks`]
//! serializes writers per key while leaving distinct keys fully
//! concurrent.
//!
//! The table is purely in-process. Cross-process exclusion is out of
//! scope: the server owns its corpus root for the lifetime of the
//! process, which is the deployment shape the ROADMAP's campaign
//! service describes.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One key's lock word: `busy` flips under the mutex, `cv` wakes
/// blocked acquirers when the holder releases.
#[derive(Debug, Default)]
struct LockEntry {
    busy: Mutex<bool>,
    cv: Condvar,
}

/// An in-process table of per-key exclusive locks.
///
/// [`acquire`](KeyLocks::acquire) blocks until the key is free and
/// returns an RAII [`KeyLockGuard`]; dropping the guard releases the
/// key and wakes one waiter. Entries are created on first use and kept
/// for the table's lifetime — the key space is small (one per distinct
/// campaign spec), so there is no eviction.
///
/// ```
/// use sca_store::KeyLocks;
///
/// let locks = KeyLocks::new();
/// let guard = locks.acquire(0xdac_2018);
/// assert!(locks.try_acquire(0xdac_2018).is_none());
/// drop(guard);
/// assert!(locks.try_acquire(0xdac_2018).is_some());
/// ```
#[derive(Debug, Default)]
pub struct KeyLocks {
    entries: Mutex<HashMap<u64, Arc<LockEntry>>>,
}

impl KeyLocks {
    /// Creates an empty lock table.
    #[must_use]
    pub fn new() -> KeyLocks {
        KeyLocks::default()
    }

    fn entry(&self, key: u64) -> Arc<LockEntry> {
        let mut entries = self.entries.lock().expect("lock table poisoned");
        Arc::clone(entries.entry(key).or_default())
    }

    /// Blocks until `key` is free, then holds it exclusively until the
    /// returned guard is dropped.
    #[must_use]
    pub fn acquire(&self, key: u64) -> KeyLockGuard {
        let entry = self.entry(key);
        {
            let mut busy = entry.busy.lock().expect("key lock poisoned");
            while *busy {
                busy = entry.cv.wait(busy).expect("key lock poisoned");
            }
            *busy = true;
        }
        KeyLockGuard { entry, key }
    }

    /// Acquires `key` only if it is currently free; `None` when another
    /// guard holds it.
    #[must_use]
    pub fn try_acquire(&self, key: u64) -> Option<KeyLockGuard> {
        let entry = self.entry(key);
        {
            let mut busy = entry.busy.lock().expect("key lock poisoned");
            if *busy {
                return None;
            }
            *busy = true;
        }
        Some(KeyLockGuard { entry, key })
    }
}

/// Exclusive hold on one key of a [`KeyLocks`] table; releases (and
/// wakes one blocked acquirer) on drop.
#[derive(Debug)]
pub struct KeyLockGuard {
    entry: Arc<LockEntry>,
    key: u64,
}

impl KeyLockGuard {
    /// The key this guard holds.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl Drop for KeyLockGuard {
    fn drop(&mut self) {
        let mut busy = self.entry.busy.lock().expect("key lock poisoned");
        *busy = false;
        drop(busy);
        self.entry.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn distinct_keys_do_not_contend() {
        let locks = KeyLocks::new();
        let a = locks.acquire(1);
        let b = locks.acquire(2);
        assert_eq!(a.key(), 1);
        assert_eq!(b.key(), 2);
    }

    #[test]
    fn try_acquire_reflects_holder() {
        let locks = KeyLocks::new();
        let guard = locks.acquire(7);
        assert!(locks.try_acquire(7).is_none());
        drop(guard);
        let reacquired = locks.try_acquire(7).expect("free after drop");
        assert_eq!(reacquired.key(), 7);
    }

    #[test]
    fn contended_key_serializes_critical_sections() {
        // 8 threads × 100 increments through a non-atomic cell, guarded
        // only by the key lock: any mutual-exclusion bug shows up as a
        // lost update.
        let locks = Arc::new(KeyLocks::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let locks = Arc::clone(&locks);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let _guard = locks.acquire(42);
                    let seen = counter.load(Ordering::Relaxed);
                    thread::yield_now();
                    counter.store(seen + 1, Ordering::Relaxed);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("worker panicked");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }
}
