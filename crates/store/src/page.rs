//! Fixed-size trace pages with per-slot checksums.
//!
//! A page file holds `capacity` trace records at fixed offsets after a
//! small header. Each record carries its own FNV-1a checksum salted with
//! `(page_index, slot)`, so validity is decided **per slot**: a torn
//! write corrupts exactly the slot it tore, appends are idempotent
//! single-`pwrite` operations (no read-modify-write), and a resumed
//! campaign can rewrite slots at or above the checkpoint high-water mark
//! without first repairing the rest of the page.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::error::{fnv1a64_continue, StoreError};

/// Target page size the capacity is derived from. Pages hold at least
/// one record even when a record exceeds this.
pub const TARGET_PAGE_BYTES: usize = 32 * 1024;

/// Bytes of page header before the first slot.
pub const PAGE_HEADER_BYTES: usize = 16;

/// A decoded trace record: the campaign input bytes and the windowed
/// power samples, exactly as appended.
pub type TraceRecord = (Vec<u8>, Vec<f32>);

const PAGE_MAGIC: &[u8; 4] = b"SCPG";
const PAGE_VERSION: u32 = 1;

/// Salt every slot checksum starts from, binding a record to its exact
/// `(page, slot)` location so a misplaced-but-intact record never
/// validates.
fn slot_salt(page_index: u64, slot: usize) -> u64 {
    let mut hash = fnv1a64_continue(0xcbf2_9ce4_8422_2325, &page_index.to_le_bytes());
    hash = fnv1a64_continue(hash, &(slot as u64).to_le_bytes());
    hash
}

/// The store's record layout: how traces map onto pages and slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageGeometry {
    /// Campaign input bytes per trace.
    pub input_len: usize,
    /// Samples per trace (each stored as an `f32` bit pattern).
    pub samples: usize,
    /// Records per page.
    pub capacity: usize,
}

impl PageGeometry {
    /// Derives the geometry for a record shape, sizing pages near
    /// [`TARGET_PAGE_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Geometry`] when `samples` is zero.
    pub fn new(input_len: usize, samples: usize) -> Result<PageGeometry, StoreError> {
        if samples == 0 {
            return Err(StoreError::Geometry {
                what: "a trace must have at least one sample".to_owned(),
            });
        }
        let record = input_len + 4 * samples + 8;
        Ok(PageGeometry {
            input_len,
            samples,
            capacity: (TARGET_PAGE_BYTES / record).max(1),
        })
    }

    /// Bytes per record: input, samples as `f32` LE, slot checksum.
    #[must_use]
    pub fn record_bytes(&self) -> usize {
        self.input_len + 4 * self.samples + 8
    }

    /// Total bytes of one page file.
    #[must_use]
    pub fn page_bytes(&self) -> usize {
        PAGE_HEADER_BYTES + self.capacity * self.record_bytes()
    }

    /// Page holding trace `index`.
    #[must_use]
    pub fn page_of(&self, index: u64) -> u64 {
        index / self.capacity as u64
    }

    /// Slot of trace `index` within its page.
    #[must_use]
    pub fn slot_of(&self, index: u64) -> usize {
        (index % self.capacity as u64) as usize
    }

    /// Byte offset of `slot` within the page.
    #[must_use]
    pub fn slot_offset(&self, slot: usize) -> usize {
        PAGE_HEADER_BYTES + slot * self.record_bytes()
    }

    /// Encodes one record: input bytes, sample bit patterns, then the
    /// salted slot checksum over everything before it.
    #[must_use]
    pub fn encode_slot(
        &self,
        page_index: u64,
        slot: usize,
        input: &[u8],
        trace: &[f32],
    ) -> Vec<u8> {
        debug_assert_eq!(input.len(), self.input_len);
        debug_assert_eq!(trace.len(), self.samples);
        let mut out = Vec::with_capacity(self.record_bytes());
        out.extend_from_slice(input);
        for &sample in trace {
            out.extend_from_slice(&sample.to_bits().to_le_bytes());
        }
        let checksum = fnv1a64_continue(slot_salt(page_index, slot), &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes the record in `slot` from a whole-page buffer, or `None`
    /// when the slot checksum does not validate (never written, or torn).
    #[must_use]
    pub fn decode_slot(&self, page_index: u64, slot: usize, page: &[u8]) -> Option<TraceRecord> {
        let start = self.slot_offset(slot);
        let end = start + self.record_bytes();
        if end > page.len() {
            return None;
        }
        let record = &page[start..end];
        let payload = &record[..record.len() - 8];
        let stored = u64::from_le_bytes(record[record.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a64_continue(slot_salt(page_index, slot), payload) != stored {
            return None;
        }
        let input = payload[..self.input_len].to_vec();
        let trace = payload[self.input_len..]
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
            .collect();
        Some((input, trace))
    }

    /// File name of a page inside a store directory.
    #[must_use]
    pub fn file_name(page_index: u64) -> String {
        format!("page-{page_index:08}.scp")
    }
}

/// One open page file; slot writes are positioned (`pwrite`) and need
/// only `&self`, so shard workers can append through a shared handle.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    page_index: u64,
    geom: PageGeometry,
}

impl PageFile {
    /// Path of page `page_index` under `dir`.
    #[must_use]
    pub fn path(dir: &Path, page_index: u64) -> PathBuf {
        dir.join(PageGeometry::file_name(page_index))
    }

    /// Opens page `page_index` for writing, creating (and sizing) the
    /// file when absent. A damaged header — e.g. a crash tore the very
    /// creation of this page — is rewritten; slot checksums, not the
    /// header, decide record validity.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_or_create(
        dir: &Path,
        geom: PageGeometry,
        page_index: u64,
    ) -> Result<PageFile, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(PageFile::path(dir, page_index))?;
        let expected = geom.page_bytes() as u64;
        if file.metadata()?.len() != expected {
            file.set_len(expected)?;
        }
        let mut header = [0u8; PAGE_HEADER_BYTES];
        let valid_header = file.read_exact_at(&mut header, 0).is_ok()
            && PageFile::check_header(&header, page_index).is_ok();
        if !valid_header {
            file.write_all_at(&PageFile::header_bytes(page_index), 0)?;
        }
        Ok(PageFile {
            file,
            page_index,
            geom,
        })
    }

    /// Opens an existing page read-only, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a bad header and propagates
    /// I/O errors (including `NotFound` when the page was never written).
    pub fn open_existing(
        dir: &Path,
        geom: PageGeometry,
        page_index: u64,
    ) -> Result<PageFile, StoreError> {
        let file = File::open(PageFile::path(dir, page_index))?;
        let mut header = [0u8; PAGE_HEADER_BYTES];
        file.read_exact_at(&mut header, 0)
            .map_err(StoreError::from)?;
        PageFile::check_header(&header, page_index)?;
        Ok(PageFile {
            file,
            page_index,
            geom,
        })
    }

    fn header_bytes(page_index: u64) -> [u8; PAGE_HEADER_BYTES] {
        let mut header = [0u8; PAGE_HEADER_BYTES];
        header[..4].copy_from_slice(PAGE_MAGIC);
        header[4..8].copy_from_slice(&PAGE_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&page_index.to_le_bytes());
        header
    }

    fn check_header(header: &[u8; PAGE_HEADER_BYTES], page_index: u64) -> Result<(), StoreError> {
        let corrupt = |what: String| StoreError::Corrupt { file: "page", what };
        if &header[..4] != PAGE_MAGIC {
            return Err(corrupt("bad magic".to_owned()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != PAGE_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let stored = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        if stored != page_index {
            return Err(corrupt(format!(
                "page index {stored} does not match file name ({page_index})"
            )));
        }
        Ok(())
    }

    /// Writes one record into `slot`. Idempotent: rewriting a slot with
    /// the same trace produces identical bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_slot(&self, slot: usize, input: &[u8], trace: &[f32]) -> Result<(), StoreError> {
        let record = self.geom.encode_slot(self.page_index, slot, input, trace);
        self.file
            .write_all_at(&record, self.geom.slot_offset(slot) as u64)?;
        Ok(())
    }

    /// Fault injection: writes only the first `keep_bytes` of the
    /// record, simulating a crash mid-`pwrite` (a half-written slot).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_slot_torn(
        &self,
        slot: usize,
        input: &[u8],
        trace: &[f32],
        keep_bytes: usize,
    ) -> Result<(), StoreError> {
        let record = self.geom.encode_slot(self.page_index, slot, input, trace);
        let keep = keep_bytes.min(record.len());
        self.file
            .write_all_at(&record[..keep], self.geom.slot_offset(slot) as u64)?;
        Ok(())
    }

    /// Reads the whole page into memory (for the buffer pool).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn read_page(&self) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; self.geom.page_bytes()];
        self.file.read_exact_at(&mut buf, 0)?;
        Ok(buf)
    }

    /// Flushes the page to stable storage (called before a checkpoint
    /// record may claim its traces are durable).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        sca_telemetry::counter!("store/fsyncs").inc();
        Ok(())
    }

    /// This page's index.
    #[must_use]
    pub fn page_index(&self) -> u64 {
        self.page_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: u32) -> (Vec<u8>, Vec<f32>) {
        let input = vec![i as u8, (i >> 8) as u8, 0xab, 0xcd];
        let trace: Vec<f32> = (0..7).map(|s| (i * 10 + s) as f32 * 0.25).collect();
        (input, trace)
    }

    #[test]
    fn slots_round_trip_and_unwritten_slots_read_none() {
        let dir = scratch("sca_store_page_rt");
        let geom = PageGeometry::new(4, 7).unwrap();
        let page = PageFile::open_or_create(&dir, geom, 3).unwrap();
        let (input, trace) = record(42);
        page.write_slot(2, &input, &trace).unwrap();
        let buf = page.read_page().unwrap();
        assert_eq!(geom.decode_slot(3, 2, &buf), Some((input, trace)));
        assert_eq!(geom.decode_slot(3, 0, &buf), None);
        assert_eq!(geom.decode_slot(3, 1, &buf), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_slot_fails_checksum_and_rewrite_is_idempotent() {
        let dir = scratch("sca_store_page_torn");
        let geom = PageGeometry::new(4, 7).unwrap();
        let page = PageFile::open_or_create(&dir, geom, 0).unwrap();
        let (input, trace) = record(7);
        // The crash tears the slot's very first write: only a prefix
        // lands, so the checksum (at the record's tail) never does.
        page.write_slot_torn(1, &input, &trace, geom.record_bytes() / 2)
            .unwrap();
        let buf = page.read_page().unwrap();
        assert_eq!(
            geom.decode_slot(0, 1, &buf),
            None,
            "torn slot must not validate"
        );
        // Resume rewrites the slot and it validates...
        page.write_slot(1, &input, &trace).unwrap();
        let clean = page.read_page().unwrap();
        assert!(geom.decode_slot(0, 1, &clean).is_some());
        // ...and rewriting again is byte-idempotent.
        page.write_slot(1, &input, &trace).unwrap();
        assert_eq!(page.read_page().unwrap(), clean);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_binds_record_to_its_location() {
        let geom = PageGeometry::new(4, 7).unwrap();
        let (input, trace) = record(3);
        let rec = geom.encode_slot(5, 2, &input, &trace);
        let mut page = vec![0u8; geom.page_bytes()];
        // Plant the slot-2 record into slot 0: intact bytes, wrong home.
        let at = geom.slot_offset(0);
        page[at..at + rec.len()].copy_from_slice(&rec);
        assert_eq!(geom.decode_slot(5, 0, &page), None);
        let at2 = geom.slot_offset(2);
        page[at2..at2 + rec.len()].copy_from_slice(&rec);
        assert!(geom.decode_slot(5, 2, &page).is_some());
        assert_eq!(geom.decode_slot(6, 2, &page), None, "wrong page index");
    }

    #[test]
    fn geometry_targets_32k_pages_and_holds_at_least_one_record() {
        let geom = PageGeometry::new(16, 300).unwrap();
        assert!(geom.capacity >= 1);
        assert!(geom.page_bytes() <= TARGET_PAGE_BYTES + PAGE_HEADER_BYTES + geom.record_bytes());
        let huge = PageGeometry::new(16, 1_000_000).unwrap();
        assert_eq!(huge.capacity, 1);
        assert!(PageGeometry::new(16, 0).is_err());
        // page/slot arithmetic
        assert_eq!(geom.page_of(0), 0);
        let cap = geom.capacity as u64;
        assert_eq!(geom.page_of(cap), 1);
        assert_eq!(geom.slot_of(cap + 3), 3);
    }

    #[test]
    fn open_or_create_repairs_a_torn_header() {
        let dir = scratch("sca_store_page_header");
        let geom = PageGeometry::new(4, 7).unwrap();
        {
            let page = PageFile::open_or_create(&dir, geom, 9).unwrap();
            let (input, trace) = record(1);
            page.write_slot(0, &input, &trace).unwrap();
        }
        // Damage the header in place.
        let path = PageFile::path(&dir, 9);
        let bytes = {
            let mut b = fs::read(&path).unwrap();
            b[0] ^= 0xff;
            b
        };
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PageFile::open_existing(&dir, geom, 9),
            Err(StoreError::Corrupt { .. })
        ));
        let page = PageFile::open_or_create(&dir, geom, 9).unwrap();
        let buf = page.read_page().unwrap();
        assert!(
            geom.decode_slot(9, 0, &buf).is_some(),
            "slot survives header repair"
        );
        assert!(PageFile::open_existing(&dir, geom, 9).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
