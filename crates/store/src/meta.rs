//! The store's index header: what corpus this is and how it is laid
//! out on disk.
//!
//! A trace corpus is a pure function of `(seed, target, window,
//! noise profile)` — the [`CorpusKey`] captures exactly those fields, so
//! opening a store under a different campaign configuration fails with a
//! [`StoreError::FingerprintMismatch`] instead of silently analyzing the
//! wrong traces.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::error::{fnv1a64, StoreError};

/// File name of the index header inside a store directory.
pub const META_FILE: &str = "store.meta";

const META_MAGIC: &[u8; 4] = b"SCAM";
const META_VERSION: u32 = 1;

/// Identity of a trace corpus: every field that changes the traces
/// themselves. Two campaigns with equal keys (and equal windows, held in
/// [`StoreMeta`]) produce bit-identical corpora, which is what makes a
/// store reusable across analyses and mergeable across machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusKey {
    /// Target label (registry name of the cipher under attack).
    pub label: String,
    /// Campaign master seed (already salted per phase by the caller).
    pub seed: u64,
    /// Bit pattern of the per-execution noise standard deviation.
    pub noise_sd_bits: u64,
    /// Bit pattern of the noise baseline.
    pub noise_baseline_bits: u64,
    /// Executions averaged into each trace.
    pub executions_per_trace: u64,
}

impl CorpusKey {
    /// Describes the first field differing from `other`, if any.
    pub fn diff(&self, other: &CorpusKey) -> Option<String> {
        if self.label != other.label {
            return Some(format!("label '{}' vs '{}'", self.label, other.label));
        }
        if self.seed != other.seed {
            return Some(format!("seed {:#x} vs {:#x}", self.seed, other.seed));
        }
        if self.noise_sd_bits != other.noise_sd_bits
            || self.noise_baseline_bits != other.noise_baseline_bits
        {
            return Some("noise profile differs".to_owned());
        }
        if self.executions_per_trace != other.executions_per_trace {
            return Some(format!(
                "executions per trace {} vs {}",
                self.executions_per_trace, other.executions_per_trace
            ));
        }
        None
    }
}

/// The store's on-disk index header: corpus identity plus page-file
/// geometry. Written once at store creation and never mutated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Corpus identity fingerprint.
    pub key: CorpusKey,
    /// First analyzed sample of each trace (window start, in samples).
    pub window_start: u64,
    /// Samples per stored trace (the analysis window length).
    pub samples: u64,
    /// The window's span in CPU cycles — display metadata for verdict
    /// headings; not part of the fingerprint proper.
    pub window_cycles: u64,
    /// Total traces the finished campaign holds.
    pub total_traces: u64,
    /// Campaign input bytes per trace.
    pub input_len: u64,
    /// Trace records per page.
    pub page_capacity: u64,
}

impl StoreMeta {
    /// The fingerprint hash over every identity field (key + window) —
    /// handy for naming store directories.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&self.encode_identity())
    }

    fn encode_identity(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.key.label.len() as u64).to_le_bytes());
        out.extend_from_slice(self.key.label.as_bytes());
        for v in [
            self.key.seed,
            self.key.noise_sd_bits,
            self.key.noise_baseline_bits,
            self.key.executions_per_trace,
            self.window_start,
            self.samples,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_identity();
        for v in [
            self.window_cycles,
            self.total_traces,
            self.input_len,
            self.page_capacity,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<StoreMeta, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt {
            file: META_FILE,
            what: what.to_owned(),
        };
        struct Cursor<'a> {
            at: usize,
            payload: &'a [u8],
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                let end = self.at.checked_add(n)?;
                let slice = self.payload.get(self.at..end)?;
                self.at = end;
                Some(slice)
            }
            fn u64(&mut self) -> Option<u64> {
                self.take(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
        }
        let mut cur = Cursor { at: 0, payload };
        let label_len = cur.u64().ok_or_else(|| corrupt("truncated payload"))? as usize;
        let label_bytes = cur
            .take(label_len)
            .ok_or_else(|| corrupt("truncated payload"))?;
        let label =
            String::from_utf8(label_bytes.to_vec()).map_err(|_| corrupt("label is not UTF-8"))?;
        let mut fields = [0u64; 10];
        for f in &mut fields {
            *f = cur.u64().ok_or_else(|| corrupt("truncated payload"))?;
        }
        if cur.at != payload.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(StoreMeta {
            key: CorpusKey {
                label,
                seed: fields[0],
                noise_sd_bits: fields[1],
                noise_baseline_bits: fields[2],
                executions_per_trace: fields[3],
            },
            window_start: fields[4],
            samples: fields[5],
            window_cycles: fields[6],
            total_traces: fields[7],
            input_len: fields[8],
            page_capacity: fields[9],
        })
    }

    /// Writes the header to `dir/store.meta` (atomically: temp file +
    /// rename) and fsyncs it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(payload.len() + 16);
        bytes.extend_from_slice(META_MAGIC);
        bytes.extend_from_slice(&META_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        let tmp = dir.join("store.meta.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, dir.join(META_FILE))?;
        Ok(())
    }

    /// Loads and verifies the header from `dir/store.meta`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on bad magic, version, length or
    /// checksum, and propagates I/O errors (including `NotFound`).
    pub fn load(dir: &Path) -> Result<StoreMeta, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt {
            file: META_FILE,
            what: what.to_owned(),
        };
        let bytes = fs::read(dir.join(META_FILE))?;
        if bytes.len() < 16 || &bytes[..4] != META_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != META_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 16 + len + 8 {
            return Err(corrupt("wrong length"));
        }
        let payload = &bytes[16..16 + len];
        let checksum = u64::from_le_bytes(bytes[16 + len..].try_into().expect("8 bytes"));
        if fnv1a64(payload) != checksum {
            return Err(corrupt("checksum mismatch"));
        }
        StoreMeta::decode(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            key: CorpusKey {
                label: "aes128".to_owned(),
                seed: 0xdac_2018,
                noise_sd_bits: 4.5f64.to_bits(),
                noise_baseline_bits: 80.0f64.to_bits(),
                executions_per_trace: 8,
            },
            window_start: 120,
            samples: 333,
            window_cycles: 80,
            total_traces: 700,
            input_len: 16,
            page_capacity: 24,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("sca_store_meta_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let meta = sample_meta();
        meta.save(&dir).unwrap();
        let back = StoreMeta::load(&dir).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.fingerprint(), meta.fingerprint());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join("sca_store_meta_corrupt_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        sample_meta().save(&dir).unwrap();
        let path = dir.join(META_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            StoreMeta::load(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_diff_names_the_field() {
        let a = sample_meta().key;
        let mut b = a.clone();
        assert_eq!(a.diff(&b), None);
        b.seed ^= 1;
        assert!(a.diff(&b).unwrap().contains("seed"));
        b = a.clone();
        b.label = "speck".into();
        assert!(a.diff(&b).unwrap().contains("label"));
    }

    #[test]
    fn fingerprint_tracks_identity_not_display_fields() {
        let a = sample_meta();
        let mut b = a.clone();
        b.window_cycles = 999; // display metadata only
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.samples = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
