//! # sca-sched — countermeasure scheduling for `sca-isa` programs
//!
//! The paper's Section 4.2 observation is that *semantics-preserving*
//! schedule changes decide side-channel security on a superscalar core:
//! two shares of a masked secret leak when they meet in a shared
//! pipeline buffer, and stop leaking when an instruction is scheduled
//! between them or when a commutative operand swap moves one share to a
//! different operand-bus lane. This crate turns those two observations
//! into automatic program rewriters:
//!
//! * [`harden_program`] — the **share-distance scheduler**: inserts
//!   public *scrub* instructions so that two share-carrying instructions
//!   are never closer than a configured distance. Between memory
//!   operations the scrub is a public store (`strb scrub_value,
//!   [scrub_base]`), which rewrites the operand buses, the LSU IS/EX
//!   operand buffers, the memory-data register *and* the align buffer
//!   with public values — breaking transition leakage like the
//!   mask-cancelling `HD(S[x_i]^m, S[x_j]^m)` of consecutive masked
//!   S-box stores. Between ALU operations the scrub is
//!   `eor scrub_value, scrub_value, scrub_value`, which drives public
//!   values onto both shared operand buses and the IS/EX buffers.
//! * [`pin_lanes`] — the **lane-pinning rewriter**: when two adjacent
//!   instructions read shares in the *same* operand position (and would
//!   therefore drive them over the same operand bus back to back), it
//!   swaps the commutative operands of the younger instruction so the
//!   shares ride different lanes.
//!
//! Both passes relocate the program: branch offsets are recomputed from
//! an old-index → new-index map, and symbols and source lines are
//! carried across, so hardened programs remain runnable and auditable.
//! Architectural behaviour is preserved by construction — the scrub
//! instructions only touch the two *reserved* registers named in
//! [`HardenConfig`], which the target program must treat as public
//! scratch (the masked AES in `sca-aes` reserves `r6`/`r10` for exactly
//! this).
//!
//! ```
//! use sca_isa::assemble;
//! use sca_sched::{harden_program, HardenConfig, SharePolicy};
//!
//! // Two shares stored back to back: their HD leaks in the LSU.
//! let program = assemble("
//! copy:   strb r0, [r10], #1
//!         strb r1, [r10], #1
//!         bx   lr
//! ")?;
//! let policy = SharePolicy::new().with_function(&program, "copy")?;
//! let hardened = harden_program(&program, &policy, &HardenConfig::default())?;
//! assert_eq!(hardened.report.mem_scrubs, 1); // one scrub between the stores
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harden;
mod lanes;
mod policy;
mod relocate;

pub use harden::{harden_program, HardenConfig, HardenReport, Hardened};
pub use lanes::pin_lanes;
pub use policy::SharePolicy;
pub use relocate::SchedError;
