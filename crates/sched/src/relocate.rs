//! Program relocation: rebuild an image after inserting instructions,
//! keeping branches, the entry point, symbols and source lines correct.

use std::fmt;

use sca_isa::{decode, Insn, InsnKind, IsaError, Program};

/// Why a scheduling pass refused a program.
#[derive(Debug)]
pub enum SchedError {
    /// The word at `addr` does not decode: the image mixes code and
    /// data, which an inserting rewriter cannot relocate safely.
    NotCode(u32),
    /// A branch at `addr` targets outside the image.
    BranchOutOfImage(u32),
    /// A named symbol does not exist.
    UnknownSymbol(String),
    /// The post-pass verification found two share ops still closer than
    /// the configured distance in the scheduler's own output.
    ResidualHazard {
        /// Address of the earlier share op (in the original image).
        addr_a: u32,
        /// Address of the later share op.
        addr_b: u32,
        /// The checker's description of the violation.
        witness: String,
    },
    /// Re-encoding the rewritten program failed.
    Isa(IsaError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NotCode(addr) => {
                write!(f, "word at {addr:#x} is data, not an instruction")
            }
            SchedError::BranchOutOfImage(addr) => {
                write!(f, "branch at {addr:#x} targets outside the image")
            }
            SchedError::UnknownSymbol(name) => write!(f, "no symbol named '{name}'"),
            SchedError::ResidualHazard {
                addr_a,
                addr_b,
                witness,
            } => write!(
                f,
                "hardened output failed verification: {addr_a:#x} .. {addr_b:#x}: {witness}"
            ),
            SchedError::Isa(e) => write!(f, "re-encoding failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<IsaError> for SchedError {
    fn from(e: IsaError) -> SchedError {
        SchedError::Isa(e)
    }
}

/// Decodes every word of a code-only image.
pub(crate) fn decode_image(program: &Program) -> Result<Vec<Insn>, SchedError> {
    program
        .words()
        .iter()
        .enumerate()
        .map(|(i, &word)| {
            decode(word).map_err(|_| SchedError::NotCode(program.base() + 4 * i as u32))
        })
        .collect()
}

/// Rebuilds a program from the original and a per-instruction list of
/// insertions (`inserts[i]` goes immediately *before* original
/// instruction `i`). Branch offsets are recomputed so that a branch to
/// an instruction with insertions lands on the *first inserted
/// instruction*, not past it: insertions are architecture-neutral
/// scrubs, and entering through them keeps the scheduler's distance
/// guarantee intact on taken-branch paths (most importantly, loop
/// back-edges re-execute the scrubs ahead of the loop head). The entry
/// point, symbols and source lines are mapped across to the original
/// instructions.
pub(crate) fn rebuild(
    program: &Program,
    insns: &[Insn],
    inserts: &[Vec<Insn>],
) -> Result<Program, SchedError> {
    debug_assert_eq!(insns.len(), inserts.len());
    let n = insns.len();

    // new_index[i] = output position of original instruction i (after
    // its insertions); block_start[i] = position of its first inserted
    // instruction (= new_index[i] when nothing was inserted). Entry n
    // marks one past the final instruction for end-targeting branches.
    let mut new_index = Vec::with_capacity(n + 1);
    let mut block_start = Vec::with_capacity(n + 1);
    let mut out: Vec<Insn> = Vec::with_capacity(n);
    for (insn, before) in insns.iter().zip(inserts) {
        block_start.push(out.len());
        out.extend_from_slice(before);
        new_index.push(out.len());
        out.push(*insn);
    }
    block_start.push(out.len());
    new_index.push(out.len());

    // Fix branch offsets (offsets are in instructions, relative to the
    // instruction after the branch).
    for (i, insn) in insns.iter().enumerate() {
        if let InsnKind::Branch { link, offset } = insn.kind {
            let target = i as i64 + 1 + i64::from(offset);
            if !(0..=n as i64).contains(&target) {
                return Err(SchedError::BranchOutOfImage(program.base() + 4 * i as u32));
            }
            let new_i = new_index[i] as i64;
            let new_target = block_start[target as usize] as i64;
            let new_offset = new_target - (new_i + 1);
            out[new_index[i]] = Insn {
                cond: insn.cond,
                kind: InsnKind::Branch {
                    link,
                    offset: new_offset as i32,
                },
            };
        }
    }

    let base = program.base();
    let mut rebuilt = Program::from_insns(base, &out)?;
    let map_addr = |addr: u32| -> Option<u32> {
        if addr < base || !addr.is_multiple_of(4) {
            return None;
        }
        let index = ((addr - base) / 4) as usize;
        (index <= n).then(|| base + 4 * new_index[index] as u32)
    };
    rebuilt.set_entry(map_addr(program.entry()).unwrap_or(base));
    for (name, addr) in program.symbols() {
        if let Some(new_addr) = map_addr(addr) {
            rebuilt.insert_symbol(name.to_owned(), new_addr);
        }
    }
    for (i, &new_i) in new_index.iter().take(n).enumerate() {
        let old_addr = base + 4 * i as u32;
        if let Some(line) = program.source_line(old_addr) {
            rebuilt.insert_source_line(base + 4 * new_i as u32, line);
        }
    }
    Ok(rebuilt)
}
