//! The lane-pinning rewriter: operand swaps that move shares onto
//! different operand-bus lanes.
//!
//! On the modeled core, a data-processing instruction drives its first
//! source (`rn`) over operand bus 0 and its register second operand
//! over bus 1 (when single-issued; a dual-issued younger instruction's
//! lanes are offset past its elder's). Two adjacent instructions that
//! both read a share as `rn` therefore put the two shares on the *same*
//! bus in consecutive cycles — the bus transition is `HD(share0,
//! share1)`, which for Boolean shares equals the Hamming weight of the
//! secret. Swapping the commutative operands of the younger instruction
//! moves its share to the other lane; the transition disappears without
//! changing a single architectural value — the paper's Section 4.2
//! operand-swap effect, applied in the safe direction.

use sca_isa::{DpOp, Insn, InsnKind, Operand2, Program, RegSet};

use crate::relocate::{decode_image, rebuild};
use crate::{SchedError, SharePolicy};

/// Operand position a share occupies in a data-processing instruction,
/// if any: 0 for `rn`, 1 for a plain register `op2`. `secret` is the
/// policy's register set in effect at the instruction's address
/// (global plus scoped).
fn share_lane(insn: &Insn, secret: RegSet) -> Option<u8> {
    let InsnKind::Dp { rn, op2, .. } = &insn.kind else {
        return None;
    };
    if let Some(rn) = rn {
        if secret.contains(*rn) {
            return Some(0);
        }
    }
    if let Operand2::Reg(rm) = op2 {
        if secret.contains(*rm) {
            return Some(if rn.is_some() { 1 } else { 0 });
        }
    }
    None
}

/// Swaps `rn` and a plain-register `op2` of a commutative operation.
fn swap_operands(insn: &Insn) -> Option<Insn> {
    let InsnKind::Dp {
        op,
        set_flags,
        rd,
        rn: Some(rn),
        op2: Operand2::Reg(rm),
    } = insn.kind
    else {
        return None;
    };
    if !matches!(op, DpOp::And | DpOp::Eor | DpOp::Orr | DpOp::Add) {
        return None;
    }
    Some(Insn {
        cond: insn.cond,
        kind: InsnKind::Dp {
            op,
            set_flags,
            rd,
            rn: Some(rm),
            op2: Operand2::Reg(rn),
        },
    })
}

/// Rewrites adjacent share-reading pairs so the shares ride different
/// operand-bus lanes, swapping commutative operands of the younger
/// instruction where both occupy the same lane. Returns the relocated
/// program and the number of swaps applied.
///
/// # Errors
///
/// [`SchedError::NotCode`] for images mixing data into the code, and
/// re-encoding failures.
pub fn pin_lanes(program: &Program, policy: &SharePolicy) -> Result<(Program, usize), SchedError> {
    let mut insns = decode_image(program)?;
    let mut swaps = 0usize;
    for i in 1..insns.len() {
        let older_regs = policy.secret_regs_at(program.base() + 4 * (i as u32 - 1));
        let younger_regs = policy.secret_regs_at(program.base() + 4 * i as u32);
        let Some(older_lane) = share_lane(&insns[i - 1], older_regs) else {
            continue;
        };
        let Some(younger_lane) = share_lane(&insns[i], younger_regs) else {
            continue;
        };
        if older_lane != younger_lane {
            continue;
        }
        if let Some(swapped) = swap_operands(&insns[i]) {
            if share_lane(&swapped, younger_regs) != Some(younger_lane) {
                insns[i] = swapped;
                swaps += 1;
            }
        }
    }
    let inserts = vec![Vec::new(); insns.len()];
    Ok((rebuild(program, &insns, &inserts)?, swaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::{assemble, Reg};

    #[test]
    fn swaps_same_lane_share_pairs() {
        let program = assemble(
            "
        nop
        eor r2, r0, r4
        eor r3, r1, r5
        nop
        halt
        ",
        )
        .unwrap();
        let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
        let (pinned, swaps) = pin_lanes(&program, &policy).unwrap();
        assert_eq!(swaps, 1);
        assert_eq!(
            pinned.insn_at(8).unwrap(),
            Insn::eor(Reg::R3, Reg::R5, Reg::R1),
            "the younger share moves to lane 1"
        );
        // The older instruction is untouched.
        assert_eq!(
            pinned.insn_at(4).unwrap(),
            Insn::eor(Reg::R2, Reg::R0, Reg::R4)
        );
    }

    #[test]
    fn scoped_secret_regs_drive_the_pinner_too() {
        let program = assemble(
            "
a:      nop
b:      eor r2, r0, r4
        eor r3, r1, r5
c:      halt
        ",
        )
        .unwrap();
        // Same shares, but marked only inside [b, c): the pinner must
        // still swap the younger eor there...
        let scoped = SharePolicy::new()
            .with_scoped_secret_regs(&program, "b", "c", [Reg::R0, Reg::R1])
            .unwrap();
        let (_, swaps) = pin_lanes(&program, &scoped).unwrap();
        assert_eq!(swaps, 1);
        // ...and must not act when the span excludes the pair.
        let elsewhere = SharePolicy::new()
            .with_scoped_secret_regs(&program, "a", "b", [Reg::R0, Reg::R1])
            .unwrap();
        let (_, swaps) = pin_lanes(&program, &elsewhere).unwrap();
        assert_eq!(swaps, 0);
    }

    #[test]
    fn different_lanes_are_left_alone() {
        let program = assemble(
            "
        eor r2, r0, r4
        eor r3, r5, r1
        halt
        ",
        )
        .unwrap();
        let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
        let (_, swaps) = pin_lanes(&program, &policy).unwrap();
        assert_eq!(swaps, 0);
    }

    #[test]
    fn non_commutative_ops_are_not_swapped() {
        let program = assemble(
            "
        sub r2, r0, r4
        sub r3, r1, r4
        halt
        ",
        )
        .unwrap();
        let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
        let (pinned, swaps) = pin_lanes(&program, &policy).unwrap();
        assert_eq!(swaps, 0);
        assert_eq!(
            pinned.insn_at(4).unwrap(),
            Insn::sub(Reg::R3, Reg::R1, Reg::R4)
        );
    }
}
