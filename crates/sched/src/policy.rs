//! Which instructions carry shares of a masked secret.

use sca_isa::{Insn, Program, Reg, RegSet};

use crate::SchedError;

/// Marks the share-carrying instructions of a program.
///
/// Two orthogonal markers are supported:
///
/// * **code ranges** — half-open `[start, end)` address ranges (usually
///   whole functions, via [`SharePolicy::with_function`]): every memory
///   operation inside a marked range is treated as moving share data
///   through the LSU;
/// * **secret registers** — any instruction *reading* one of these
///   registers is treated as driving a share over the operand buses.
///   Registers can be marked globally ([`SharePolicy::with_secret_regs`])
///   or *scoped to a range* ([`SharePolicy::with_scoped_secret_regs`]),
///   for registers that only carry shares inside one function — e.g.
///   the ALU `mov` pair shuttling SubBytes outputs between the table
///   loads and the state stores of the masked AES, whose registers are
///   public scratch everywhere else.
#[derive(Clone, Debug, Default)]
pub struct SharePolicy {
    ranges: Vec<(u32, u32)>,
    secret_regs: RegSet,
    scoped_regs: Vec<((u32, u32), RegSet)>,
}

impl SharePolicy {
    /// An empty policy (marks nothing).
    pub fn new() -> SharePolicy {
        SharePolicy::default()
    }

    /// Marks the half-open address range `[start, end)`.
    #[must_use]
    pub fn with_range(mut self, start: u32, end: u32) -> SharePolicy {
        self.ranges.push((start, end));
        self
    }

    /// Marks the function starting at symbol `name`: its range runs to
    /// the next symbol at a higher address, or to the image end.
    ///
    /// Beware internal labels: a loop label inside the function ends the
    /// range here — use [`SharePolicy::with_span`] with an explicit end
    /// symbol for functions that have them.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownSymbol`] when the program has no such label.
    pub fn with_function(self, program: &Program, name: &str) -> Result<SharePolicy, SchedError> {
        let start = program
            .symbol(name)
            .ok_or_else(|| SchedError::UnknownSymbol(name.to_owned()))?;
        let end = program
            .symbols()
            .map(|(_, addr)| addr)
            .filter(|&addr| addr > start)
            .min()
            .unwrap_or(program.base() + program.len_bytes());
        Ok(self.with_range(start, end))
    }

    /// Marks the half-open range from symbol `start` to symbol `end` —
    /// the whole-function marker for functions with internal labels
    /// (e.g. `[subbytes, shiftrows)` in the masked AES).
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownSymbol`] when either label is missing.
    pub fn with_span(
        self,
        program: &Program,
        start: &str,
        end: &str,
    ) -> Result<SharePolicy, SchedError> {
        let lookup = |name: &str| {
            program
                .symbol(name)
                .ok_or_else(|| SchedError::UnknownSymbol(name.to_owned()))
        };
        let (start, end) = (lookup(start)?, lookup(end)?);
        Ok(self.with_range(start, end))
    }

    /// Marks registers whose readers carry shares.
    #[must_use]
    pub fn with_secret_regs(mut self, regs: impl IntoIterator<Item = Reg>) -> SharePolicy {
        self.secret_regs.extend(regs);
        self
    }

    /// Marks registers whose readers carry shares *only inside* the
    /// half-open `[start, end)` symbol span — the scrub scope for
    /// share-shuttling ALU instructions (register moves between table
    /// load and state store) whose registers are ordinary scratch in
    /// the rest of the program.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownSymbol`] when either label is missing.
    pub fn with_scoped_secret_regs(
        mut self,
        program: &Program,
        start: &str,
        end: &str,
        regs: impl IntoIterator<Item = Reg>,
    ) -> Result<SharePolicy, SchedError> {
        let lookup = |name: &str| {
            program
                .symbol(name)
                .ok_or_else(|| SchedError::UnknownSymbol(name.to_owned()))
        };
        let span = (lookup(start)?, lookup(end)?);
        let mut set = RegSet::default();
        set.extend(regs);
        self.scoped_regs.push((span, set));
        Ok(self)
    }

    /// Whether `addr` lies in a marked range.
    pub fn covers(&self, addr: u32) -> bool {
        self.ranges
            .iter()
            .any(|&(start, end)| (start..end).contains(&addr))
    }

    /// Whether the instruction at `addr` moves share data through the
    /// LSU (any memory operation inside a marked range).
    pub fn is_share_mem(&self, addr: u32, insn: &Insn) -> bool {
        insn.is_mem() && self.covers(addr)
    }

    /// Whether the instruction reads a share over the operand buses
    /// (reads a globally marked secret register).
    pub fn reads_shares(&self, insn: &Insn) -> bool {
        insn.reads().intersects(self.secret_regs)
    }

    /// Whether the instruction at `addr` reads a share over the operand
    /// buses — the address-aware variant the scheduler uses: global
    /// secret registers anywhere, scoped secret registers inside their
    /// spans.
    pub fn reads_shares_at(&self, addr: u32, insn: &Insn) -> bool {
        insn.reads().intersects(self.secret_regs_at(addr))
    }

    /// The secret registers in effect at `addr`: the global set plus
    /// every scoped set whose span covers the address.
    pub fn secret_regs_at(&self, addr: u32) -> RegSet {
        self.scoped_regs
            .iter()
            .filter(|((start, end), _)| (*start..*end).contains(&addr))
            .fold(self.secret_regs, |acc, (_, regs)| acc.union(*regs))
    }

    /// The globally marked secret registers (scoped sets excluded; see
    /// [`SharePolicy::secret_regs_at`]).
    pub fn secret_regs(&self) -> RegSet {
        self.secret_regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::assemble;

    #[test]
    fn function_ranges_span_to_the_next_symbol() {
        let program = assemble(
            "
first:  nop
        nop
second: nop
        halt
        ",
        )
        .unwrap();
        let policy = SharePolicy::new().with_function(&program, "first").unwrap();
        assert!(policy.covers(0));
        assert!(policy.covers(4));
        assert!(!policy.covers(8), "range ends at the next symbol");
        assert!(SharePolicy::new().with_function(&program, "nope").is_err());
        let span = SharePolicy::new()
            .with_span(&program, "first", "second")
            .unwrap();
        assert!(span.covers(4) && !span.covers(8));
        assert!(SharePolicy::new()
            .with_span(&program, "first", "nope")
            .is_err());
    }

    #[test]
    fn scoped_secret_regs_only_apply_inside_their_span() {
        let program = assemble(
            "
a:      mov r2, r1
b:      mov r2, r1
c:      halt
        ",
        )
        .unwrap();
        let policy = SharePolicy::new()
            .with_scoped_secret_regs(&program, "b", "c", [Reg::R1])
            .unwrap();
        let insn = Insn::mov(Reg::R2, Reg::R1);
        assert!(!policy.reads_shares_at(0, &insn), "outside the span");
        assert!(policy.reads_shares_at(4, &insn), "inside the span");
        assert!(
            !policy.reads_shares_at(4, &Insn::mov(Reg::R2, Reg::R4)),
            "unmarked register"
        );
        assert!(!policy.reads_shares(&insn), "global marker unaffected");
        assert!(SharePolicy::new()
            .with_scoped_secret_regs(&program, "b", "nope", [Reg::R1])
            .is_err());
    }

    #[test]
    fn secret_register_reads_are_flagged() {
        let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
        assert!(policy.reads_shares(&Insn::eor(Reg::R2, Reg::R0, Reg::R4)));
        assert!(policy.reads_shares(&Insn::mov(Reg::R2, Reg::R1)));
        assert!(!policy.reads_shares(&Insn::mov(Reg::R2, Reg::R4)));
        assert!(
            !policy.reads_shares(&Insn::mov(Reg::R0, 1u32)),
            "writes don't count"
        );
    }
}
